//! # nexuspp — reproduction of the Nexus++ hardware task manager
//!
//! Umbrella crate for the reproduction of *"Hardware-Based Task Dependency
//! Resolution for the StarSs Programming Model"* (Dallou & Juurlink, ICPP
//! Workshops 2012). It re-exports the workspace crates under stable module
//! names so applications can depend on a single crate:
//!
//! * [`desim`] — discrete-event simulation kernel (SystemC substitute),
//! * [`hw`] — memory/bus/SRAM timing models and storage budgets,
//! * [`trace`] — task descriptor and trace data model,
//! * [`workloads`] — the paper's benchmark generators,
//! * [`core`] — the Nexus++ task pool, dependence table and resolution
//!   protocol (the paper's primary contribution),
//! * [`taskmachine`] — the full-system "Task Machine" simulator,
//! * [`runtime`] — a real threaded StarSs-like runtime built on the same
//!   resolution semantics,
//! * [`baseline`] — the original-Nexus limits model and a software-RTS
//!   timing model.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use nexuspp_baseline as baseline;
pub use nexuspp_core as core;
pub use nexuspp_desim as desim;
pub use nexuspp_hw as hw;
pub use nexuspp_runtime as runtime;
pub use nexuspp_taskmachine as taskmachine;
pub use nexuspp_trace as trace;
pub use nexuspp_workloads as workloads;
