//! # nexuspp — reproduction of the Nexus++ hardware task manager
//!
//! Umbrella crate for the reproduction of *"Hardware-Based Task Dependency
//! Resolution for the StarSs Programming Model"* (Dallou & Juurlink, ICPP
//! Workshops 2012). It re-exports the workspace crates under stable module
//! names so applications can depend on a single crate:
//!
//! * [`desim`] — discrete-event simulation kernel (SystemC substitute),
//! * [`hw`] — memory/bus/SRAM timing models and storage budgets,
//! * [`trace`] — task descriptor and trace data model,
//! * [`workloads`] — the paper's benchmark generators,
//! * [`core`] — the Nexus++ task pool, dependence table and resolution
//!   protocol (the paper's primary contribution), plus the unified
//!   submission surface ([`core::TaskBuilder`], [`core::SubmitError`]),
//! * [`frontend`] — the resource-versioning frontend: tasks declare
//!   named resources (`reads`/`writes`/`read_writes`), every write
//!   mints a logical version, and lowering renames versions onto
//!   distinct addresses so WAR/WAW false dependencies vanish before
//!   the hardware ever sees them,
//! * [`incr`] — the incremental re-execution layer: an editable,
//!   memoized task program ([`incr::IncrementalProgram`]) over the
//!   frontend — apply edits, and a Pearce–Kelly dynamic topological
//!   order plus a content-hash memo store re-run only the invalidated
//!   cone on any backend,
//! * [`shard`] — sharded resolution: N address-partitioned engines
//!   composed into one logically-equivalent resolver, with a batched
//!   submission front-end, a per-shard-locked concurrent dispatcher,
//!   and an optional finite per-shard capacity (stall/retry on full
//!   shards, like the real hardware tables),
//! * [`taskmachine`] — the full-system "Task Machine" simulator, plus the
//!   multi-Maestro sharded variant,
//! * [`obs`] — the observability layer: lifecycle event tracing with
//!   lock-free bounded rings, a metrics registry over every layer's
//!   counters, Chrome-trace export and critical-path analysis,
//! * [`sched`] — the ready-task scheduling layer: per-worker
//!   work-stealing deques with a lock-free injector (default) and the
//!   global mutex-queue baseline, behind one `SchedulerKind` knob,
//! * [`runtime`] — a real threaded StarSs-like runtime built on the same
//!   resolution semantics (single-engine and sharded), scheduling
//!   through [`sched`],
//! * [`service`] — the runtime as a persistent facility: a streaming,
//!   multi-tenant ingress ([`service::ResolverService`]) with bounded
//!   per-tenant lanes, admission budgets, live per-tenant metrics, and
//!   two-phase graceful shutdown,
//! * [`baseline`] — the original-Nexus limits model and a software-RTS
//!   timing model.
//!
//! See `README.md` for the workspace layout and verify commands.
//!
//! ## Quickstart
//!
//! Declare work by **named resources** and let the frontend do the
//! addressing: each write mints a new logical version, lowering infers
//! the true dependency edges and renames versions onto distinct
//! physical addresses, and the lowered stream runs on any backend —
//! here the real threaded sharded runtime:
//!
//! ```
//! use nexuspp::frontend::{Lowering, Program};
//! use nexuspp::runtime::ShardedRuntime;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let mut p = Program::new();
//! p.resource("frame");
//! // Three refinement passes over "frame" — each mints a new version —
//! // then a stats task reading the final version.
//! for pass in 0..3u64 {
//!     p.task(0x100 + pass).read_writes("frame").submit().unwrap();
//! }
//! p.task(0x200).reads("frame").writes("stats").submit().unwrap();
//!
//! let lowered = p.lower(Lowering::Renamed).unwrap();
//! assert_eq!(lowered.edges.len(), 3, "true RAW edges only — no WAW/WAR");
//!
//! let rt = ShardedRuntime::new(2, 2);
//! let ran = Arc::new(AtomicU64::new(0));
//! for sub in lowered.tasks.iter().cloned() {
//!     let ran = Arc::clone(&ran);
//!     rt.spawn_lowered(sub, move || {
//!         ran.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! rt.barrier();
//! assert_eq!(ran.load(Ordering::Relaxed), 4);
//!
//! // Addressing by hand instead? `TaskBuilder` is the blessed way to
//! // construct a submission; every layer accepts one and reports the
//! // same `SubmitError` surface.
//! use nexuspp::core::{DependencyEngine, NexusConfig, TaskBuilder};
//!
//! let mut engine = DependencyEngine::new(&NexusConfig::unbounded());
//! let producer = TaskBuilder::new(0x300).tag(1).writes(0x1000, 64).build();
//! let consumer = TaskBuilder::new(0x301).tag(2).reads(0x1000, 64).build();
//! let (_, ready) = engine.try_submit(producer).unwrap();
//! assert!(ready, "no dependencies yet");
//! let (_, ready) = engine.try_submit(consumer).unwrap();
//! assert!(!ready, "the RAW dependence holds the consumer back");
//! ```
//!
//! The paper's evaluation flow end to end: generate a StarSs-style
//! workload, let the simulated Nexus++ hardware discover its dependency
//! graph, and measure the speedup more worker cores buy. Then run a real
//! task graph — same resolution semantics, real threads — on the runtime.
//!
//! ```
//! use nexuspp::runtime::Runtime;
//! use nexuspp::taskmachine::{simulate_trace, MachineConfig};
//! use nexuspp::workloads::{GridPattern, GridSpec};
//!
//! // A small H.264-style wavefront: every macroblock-decode task reads
//! // its left and upper neighbours, so parallelism ramps up diagonally.
//! let spec = GridSpec {
//!     rows: 12,
//!     cols: 8,
//!     ..GridSpec::default()
//! };
//! let trace = spec.generate(GridPattern::Wavefront);
//! assert_eq!(trace.len(), 12 * 8);
//!
//! // Cycle-level simulation of the Table IV machine, 1 vs 8 workers.
//! let serial = simulate_trace(MachineConfig::with_workers(1), &trace).unwrap();
//! let parallel = simulate_trace(MachineConfig::with_workers(8), &trace).unwrap();
//! assert_eq!(serial.tasks, trace.len() as u64);
//! assert!(parallel.makespan < serial.makespan, "wavefront must scale");
//!
//! // The same dependency semantics executing real closures on threads:
//! // a two-stage pipeline wired purely by input/output declarations.
//! let rt = Runtime::new(2);
//! let src = rt.region(vec![1u64; 64]);
//! let mid = rt.region(vec![0u64; 64]);
//! let sum = rt.region(vec![0u64]);
//! {
//!     let (src, mid) = (src.clone(), mid.clone());
//!     rt.task().input(&src).output(&mid).spawn(move |t| {
//!         let s = t.read(&src);
//!         let mut m = t.write(&mid);
//!         for (out, inp) in m.iter_mut().zip(s.iter()) {
//!             *out = inp * 3;
//!         }
//!     });
//! }
//! {
//!     let (mid, sum) = (mid.clone(), sum.clone());
//!     rt.task().input(&mid).output(&sum).spawn(move |t| {
//!         t.write(&sum)[0] = t.read(&mid).iter().sum();
//!     });
//! }
//! rt.barrier();
//! assert_eq!(rt.with_data(&sum, |v| v[0]), 3 * 64);
//!
//! // Finite hardware tables, as a knob: a sharded runtime whose shards
//! // each hold at most 2 resident tasks. Overflowing submissions stall
//! // (the paper's master-core stall) and resume on finish reports; the
//! // per-shard counters must balance once quiescent.
//! use nexuspp::runtime::{ShardCapacity, ShardedRuntime};
//!
//! let srt = ShardedRuntime::with_capacity(2, 2, ShardCapacity::Bounded(2));
//! let cell = srt.region(vec![0u64]);
//! for _ in 0..32 {
//!     let cell2 = cell.clone();
//!     srt.task().inout(&cell).spawn(move |t| t.write(&cell2)[0] += 1);
//! }
//! srt.barrier();
//! assert_eq!(srt.with_data(&cell, |v| v[0]), 32);
//! for shard in srt.capacity_counts() {
//!     assert_eq!(shard.stalls_observed, shard.retries_resolved);
//! }
//!
//! // The resolver as a persistent, multi-tenant facility: streaming
//! // ingress with per-tenant admission budgets and two-phase shutdown.
//! use nexuspp::core::TaskBuilder;
//! use nexuspp::service::{ResolverService, ServiceConfig, ServiceTask, TenantId};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let svc = ResolverService::start(
//!     ServiceConfig::new(2, 2)
//!         .tenant(TenantId(1), 8)
//!         .tenant(TenantId(2), 8),
//! );
//! let ran = Arc::new(AtomicU64::new(0));
//! for tenant in 1..=2u32 {
//!     let h = svc.handle(TenantId(tenant)).unwrap();
//!     for i in 0..16u64 {
//!         let sub = TaskBuilder::new(0x300)
//!             .tag(i)
//!             .read_writes(((tenant as u64) << 32) | (i % 4), 8)
//!             .build();
//!         let ran2 = Arc::clone(&ran);
//!         h.submit_blocking(ServiceTask::new(sub, move || {
//!             ran2.fetch_add(1, Ordering::AcqRel);
//!         }))
//!         .expect("service accepting");
//!     }
//! }
//! let report = svc.shutdown(); // seal, drain, quiesce, join
//! assert!(report.graceful);
//! assert_eq!(ran.load(Ordering::Acquire), 32);
//! assert_eq!(svc.metrics_snapshot().get("tenant1", "executed"), Some(16));
//! ```

pub use nexuspp_baseline as baseline;
pub use nexuspp_core as core;
pub use nexuspp_desim as desim;
pub use nexuspp_frontend as frontend;
pub use nexuspp_hw as hw;
pub use nexuspp_incr as incr;
pub use nexuspp_obs as obs;
pub use nexuspp_runtime as runtime;
pub use nexuspp_sched as sched;
pub use nexuspp_service as service;
pub use nexuspp_shard as shard;
pub use nexuspp_taskmachine as taskmachine;
pub use nexuspp_trace as trace;
pub use nexuspp_workloads as workloads;
