//! Offline stand-in for the `criterion` crate (this workspace builds
//! without network access — see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, throughput annotation) with a simple best-of-N timer on
//! `std::time::Instant`. No statistics, plots, or saved baselines — CI
//! compiles benches with `cargo bench --no-run`; running them locally
//! prints wall-clock estimates good enough for coarse regression spotting.
//!
//! One extension beyond printing: when `CRITERION_SUMMARY_JSON` names a
//! file, `criterion_main!` writes a machine-readable summary of every
//! result after the groups run (see [`write_summary`]) — the hook the
//! repro harness uses to persist benchmark trajectories in CI.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One finished benchmark, as recorded for the JSON summary.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    name: String,
    best_ns: u128,
    iters: u64,
    throughput: Option<Throughput>,
}

fn records() -> &'static Mutex<Vec<Record>> {
    static RECORDS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// If the `CRITERION_SUMMARY_JSON` environment variable names a path,
/// write every benchmark result recorded so far there as JSON
/// (`{"benchmarks": [{"group", "name", "best_ns", "iters",
/// "throughput"}...]}`). Called automatically by `criterion_main!`
/// after all groups finish; a no-op when the variable is unset.
pub fn write_summary() {
    let Ok(path) = std::env::var("CRITERION_SUMMARY_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let recs = records().lock().expect("summary records poisoned");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in recs.iter().enumerate() {
        let throughput = match r.throughput {
            Some(Throughput::Elements(n)) => format!("{{\"elements\": {n}}}"),
            Some(Throughput::Bytes(n)) => format!("{{\"bytes\": {n}}}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"best_ns\": {}, \"iters\": {}, \"throughput\": {}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.name),
            r.best_ns,
            r.iters,
            throughput,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("summary: wrote {} records to {path}", recs.len()),
        Err(e) => eprintln!("summary: failed to write {path}: {e}"),
    }
}

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch sizing hints, accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (batched in criterion proper).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stand-in runs a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time `f`'s routine and print the best observed sample.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut best: Option<Duration> = None;
        let mut iters_of_best = 1u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters == 0 {
                continue;
            }
            let per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
            if best.is_none_or(|cur| per_iter < cur) {
                best = Some(per_iter);
                iters_of_best = b.iters;
            }
        }
        let best = best.unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if best > Duration::ZERO => {
                format!("  {:.1} Kelem/s", n as f64 / best.as_secs_f64() / 1e3)
            }
            Some(Throughput::Bytes(n)) if best > Duration::ZERO => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / best.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("  {name}: best {best:?}/iter over {iters_of_best} iters{rate}");
        records()
            .lock()
            .expect("summary records poisoned")
            .push(Record {
                group: self.name.clone(),
                name: name.to_string(),
                best_ns: best.as_nanos(),
                iters: iters_of_best,
                throughput: self.throughput,
            });
        self
    }

    /// End the group (criterion finalizes reports here; the stand-in only
    /// keeps the call site compiling).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing context.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Hand timing to the routine: `routine(iters)` performs `iters`
    /// iterations and returns the measured duration. This is how a
    /// bench times an *internal* quantity (e.g. a counter of
    /// nanoseconds spent in one phase) instead of wall clock around
    /// the whole call — the only way a phase-level win can show on a
    /// host where total wall time is pinned by other work.
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        const ITERS: u64 = 3;
        self.elapsed += routine(ITERS);
        self.iters += ITERS;
    }

    /// Time `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const ITERS: u64 = 3;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += ITERS;
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, criterion-style. After every
/// group runs, the machine-readable summary sink fires (see
/// [`write_summary`]; no-op unless `CRITERION_SUMMARY_JSON` is set).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routines() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2);
            g.throughput(Throughput::Elements(4));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_function("batched", |b| {
                b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert!(ran >= 2);
    }

    #[test]
    fn summary_sink_writes_json_when_env_set() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("sink");
            g.sample_size(1);
            g.throughput(Throughput::Elements(8));
            g.bench_function("noop", |b| b.iter(|| 1u64));
            g.finish();
        }
        let path = std::env::temp_dir().join("nexuspp_criterion_summary_test.json");
        std::env::set_var("CRITERION_SUMMARY_JSON", &path);
        write_summary();
        std::env::remove_var("CRITERION_SUMMARY_JSON");
        let text = std::fs::read_to_string(&path).expect("summary written");
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"group\": \"sink\""));
        assert!(text.contains("\"name\": \"noop\""));
        assert!(text.contains("{\"elements\": 8}"));
        assert!(text.trim_end().ends_with('}'));
    }
}
