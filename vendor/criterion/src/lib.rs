//! Offline stand-in for the `criterion` crate (this workspace builds
//! without network access — see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, throughput annotation) with a simple best-of-N timer on
//! `std::time::Instant`. No statistics, plots, or saved baselines — CI
//! compiles benches with `cargo bench --no-run`; running them locally
//! prints wall-clock estimates good enough for coarse regression spotting.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Batch sizing hints, accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (batched in criterion proper).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stand-in runs a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time `f`'s routine and print the best observed sample.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut best: Option<Duration> = None;
        let mut iters_of_best = 1u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters == 0 {
                continue;
            }
            let per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
            if best.is_none_or(|cur| per_iter < cur) {
                best = Some(per_iter);
                iters_of_best = b.iters;
            }
        }
        let best = best.unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if best > Duration::ZERO => {
                format!("  {:.1} Kelem/s", n as f64 / best.as_secs_f64() / 1e3)
            }
            Some(Throughput::Bytes(n)) if best > Duration::ZERO => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / best.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("  {name}: best {best:?}/iter over {iters_of_best} iters{rate}");
        self
    }

    /// End the group (criterion finalizes reports here; the stand-in only
    /// keeps the call site compiling).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing context.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Time `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const ITERS: u64 = 3;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += ITERS;
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routines() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2);
            g.throughput(Throughput::Elements(4));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_function("batched", |b| {
                b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert!(ran >= 2);
    }
}
