//! Offline stand-in for the `proptest` crate (this workspace builds
//! without network access — see `vendor/README.md`).
//!
//! Supports the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`], [`prop_compose!`] and [`prop_oneof!`] macros,
//! [`strategy::Strategy`] with `prop_map`/`boxed`, integer-range and
//! regex-literal string strategies, [`arbitrary::any`],
//! [`collection::vec`], `bool::ANY`, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from proptest proper in one deliberate way: cases are
//! sampled from a fixed deterministic seed sequence and **failing inputs
//! are not shrunk** — the failing case index is printed instead. That
//! trades minimal counterexamples for zero dependencies and perfectly
//! reproducible CI runs.

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    /// Run configuration (the `ProptestConfig` of proptest proper).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Small deterministic PRNG (splitmix64) seeding every test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        pub fn deterministic(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`. `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike proptest proper there is no value tree: `sample` draws a
    /// value directly and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.sample(rng))
        }
    }

    trait DynSample<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynSample<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Type-erased strategy (output of [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn DynSample<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A strategy choosing uniformly among `arms`.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }

            impl crate::arbitrary::Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+);)+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// String literals act as regex-like generators (`"[a-z0-9]{1,8}"`).
    /// The supported pattern language is the subset the workspace uses:
    /// character classes with ranges, `\PC` (any non-control char), escaped
    /// literals, and `{m}`/`{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::pattern::sample_pattern(self, rng)
        }
    }
}

pub mod pattern {
    //! Tiny regex-literal sampler backing `impl Strategy for &str`.

    use crate::test_runner::TestRng;

    enum Atom {
        /// Inclusive char ranges, e.g. `[a-z0-9_]`.
        Class(Vec<(char, char)>),
        /// `\PC`: any non-control character.
        NonControl,
        /// A literal character.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut items: Vec<char> = Vec::new();
                    for d in chars.by_ref() {
                        if d == ']' {
                            break;
                        }
                        items.push(d);
                    }
                    let mut i = 0;
                    while i < items.len() {
                        if i + 2 < items.len() && items[i + 1] == '-' {
                            ranges.push((items[i], items[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((items[i], items[i]));
                            i += 1;
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        let cat = chars.next();
                        assert_eq!(cat, Some('C'), "only \\PC is supported");
                        Atom::NonControl
                    }
                    Some(other) => Atom::Literal(other),
                    None => Atom::Literal('\\'),
                },
                other => Atom::Literal(other),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} lower bound"),
                        hi.trim().parse().expect("bad {m,n} upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {m} count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let size = u64::from(*hi as u32 - *lo as u32 + 1);
                    if pick < size {
                        return char::from_u32(*lo as u32 + pick as u32)
                            .expect("class range must stay within valid chars");
                    }
                    pick -= size;
                }
                unreachable!("pick < total")
            }
            Atom::NonControl => {
                // Mostly printable ASCII, with a sprinkle of wider Unicode
                // (all outside the Cc category, as \PC demands).
                const EXOTIC: [char; 8] = ['é', 'ß', 'λ', 'Ω', '中', '文', '—', '🙂'];
                if rng.below(10) < 9 {
                    char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).expect("printable ascii")
                } else {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below(u64::from(piece.max - piece.min + 1)) as u32;
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T` (output of [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values (output of [`vec()`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    pub mod prop {
        //! The `prop::` module alias proptest's prelude provides.
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Assert a condition inside a property (no shrinking: panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Discard the current case when its assumption does not hold. The
/// stand-in counts a discarded case as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define a named strategy as a function (proptest's `prop_compose!`).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($p:ident: $pty:ty),* $(,)?)
     ($($arg:pat in $strat:expr),+ $(,)?)
     -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($p: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Define property tests: each `fn` runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    0x5EED_0000_0000_0000 ^ u64::from(case),
                );
                let values = $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ($($arg,)+) = values;
                        $body
                    }),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest stand-in: property `{}` failed on case #{} \
                         (deterministic seed; no shrinking)",
                        stringify!($name),
                        case,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn pattern_sampler_matches_shape() {
        let mut rng = crate::test_runner::TestRng::deterministic(2);
        for _ in 0..200 {
            let s = "[a-z0-9]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = "\\PC{0,16}".sample(&mut rng);
            assert!(t.chars().count() <= 16);
            assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::deterministic(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    prop_compose! {
        fn point(scale: u32)(x in 0u32..10, y in 0u32..10) -> (u32, u32) {
            (x * scale, y * scale)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn composed_strategy_scales(p in point(3), flag in prop::bool::ANY) {
            prop_assert!(p.0 % 3 == 0 && p.1 % 3 == 0);
            prop_assert_ne!(u8::from(flag), 2);
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(any::<u32>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }
    }
}
