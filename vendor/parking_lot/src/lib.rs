//! Offline stand-in for the `parking_lot` crate (this workspace builds
//! without network access — see `vendor/README.md`).
//!
//! Provides [`Mutex`], [`MutexGuard`], [`RwLock`] and [`Condvar`] with the
//! `parking_lot` API shape — `lock()` returns a guard directly (no
//! `Result`), and `Condvar::wait` takes `&mut MutexGuard` — implemented on
//! top of `std::sync`. Poisoning is translated away: a poisoned std lock is
//! re-entered, matching `parking_lot`'s no-poisoning semantics.

use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (std-backed, `parking_lot`-shaped).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // The `Option` exists so `Condvar::wait` can temporarily take
            // ownership of the std guard (std's wait consumes it).
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already waiting");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses, releasing the guard's
    /// lock while waiting. Returns whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard already waiting");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock (std-backed, `parking_lot`-shaped).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
