//! Offline stand-in for the `crossbeam` crate (this workspace builds
//! without network access — see `vendor/README.md`).
//!
//! Only the surface the workspace uses is provided:
//!
//! * [`channel`] — multi-producer **multi-consumer** `unbounded`/`bounded`
//!   channels (`std::sync::mpsc` receivers are not cloneable, so this is a
//!   small Mutex+Condvar queue instead of a wrapper),
//! * [`queue`] — the non-blocking [`queue::SegQueue`], a Michael–Scott
//!   style linked queue with genuinely lock-free producers (one atomic
//!   swap per push), used by the sharded dispatcher's deferred-finish
//!   rings and the work-stealing scheduler's injectors, and
//!   [`queue::PushList`], a Treiber/Vyukov-style MPSC push/drain list
//!   (lock-free push, whole-chain drain) backing the dispatcher's
//!   per-shard wake lists,
//! * [`deque`] — Chase–Lev work-stealing deques with the
//!   `crossbeam-deque` API shape ([`deque::Worker`], [`deque::Stealer`],
//!   [`deque::Injector`], [`deque::Steal`]), backing the
//!   `nexuspp-sched` ready-task scheduler.

pub mod queue {
    //! Concurrent queues with the `crossbeam-queue` API shape.
    //!
    //! [`SegQueue`] is a Michael–Scott style linked FIFO queue tuned for
    //! the in-tree usage pattern (many producers, consumers that are
    //! either exclusive by construction or rare):
    //!
    //! * `push` is **lock-free**: one `AtomicPtr::swap` on the tail plus
    //!   one release store to link the node — producers never block each
    //!   other and never take a lock. This is the property the sharded
    //!   dispatcher's deferred-finish rings rely on to post release
    //!   records without touching the shard lock.
    //! * `pop` uses Vyukov-style single-consumer traversal guarded by an
    //!   internal spinlock so the *API* stays safely MPMC. Consumers that
    //!   are already exclusive (the shard drain runs under the shard
    //!   lock) never contend on it; concurrent consumers serialize over a
    //!   critical section of a few instructions.
    //! * `len`/`is_empty` read a counter that is incremented *before* a
    //!   node is published, so a completed `push` is never invisible —
    //!   the conservative direction the dispatcher's drain-skip check
    //!   needs.

    use std::cell::UnsafeCell;
    use std::ptr;
    use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};

    struct Node<T> {
        next: AtomicPtr<Node<T>>,
        /// `None` only on the stub node at the head of the chain.
        val: Option<T>,
    }

    /// An unbounded MPMC FIFO queue with non-blocking `push`/`pop`.
    pub struct SegQueue<T> {
        /// Consumer cursor (the current stub node). Only dereferenced by
        /// the holder of `pop_lock` (or `&mut self`).
        head: UnsafeCell<*mut Node<T>>,
        /// Producer side: the most recently published node.
        tail: AtomicPtr<Node<T>>,
        /// Serializes consumers; producers never touch it.
        pop_lock: AtomicBool,
        /// Incremented before publication, decremented after consumption:
        /// an upper bound that never under-counts completed pushes.
        len: AtomicUsize,
    }

    // The raw pointers are owned by the queue; elements only require `Send`
    // (same bounds as the real crate).
    unsafe impl<T: Send> Send for SegQueue<T> {}
    unsafe impl<T: Send> Sync for SegQueue<T> {}

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            let stub = Box::into_raw(Box::new(Node {
                next: AtomicPtr::new(ptr::null_mut()),
                val: None,
            }));
            SegQueue {
                head: UnsafeCell::new(stub),
                tail: AtomicPtr::new(stub),
                pop_lock: AtomicBool::new(false),
                len: AtomicUsize::new(0),
            }
        }

        /// Enqueue an element. Never blocks and never takes a lock: one
        /// counter increment, one tail swap, one link store.
        pub fn push(&self, value: T) {
            let node = Box::into_raw(Box::new(Node {
                next: AtomicPtr::new(ptr::null_mut()),
                val: Some(value),
            }));
            // Count before publishing so `is_empty` can never miss a
            // completed push.
            self.len.fetch_add(1, Ordering::SeqCst);
            let prev = self.tail.swap(node, Ordering::SeqCst);
            // `prev` cannot be freed before this store: consumers stop at
            // a node whose `next` is null, so they can never advance past
            // (and thus never free) `prev` until it is linked.
            unsafe { (*prev).next.store(node, Ordering::SeqCst) };
        }

        /// Dequeue the oldest element, `None` if the queue is empty at the
        /// time of the check (a concurrent half-published push counts as
        /// not yet present, as in the real crate's linearization).
        pub fn pop(&self) -> Option<T> {
            if self.len.load(Ordering::SeqCst) == 0 {
                return None;
            }
            let mut spins = 0u32;
            while self.pop_lock.swap(true, Ordering::Acquire) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            // SAFETY: `pop_lock` grants exclusive consumer access to
            // `head` and to the stub node it points at.
            let result = unsafe {
                let head = *self.head.get();
                let next = (*head).next.load(Ordering::SeqCst);
                if next.is_null() {
                    None
                } else {
                    let v = (*next).val.take();
                    debug_assert!(v.is_some(), "non-stub node must carry a value");
                    *self.head.get() = next;
                    drop(Box::from_raw(head));
                    self.len.fetch_sub(1, Ordering::SeqCst);
                    v
                }
            };
            self.pop_lock.store(false, Ordering::Release);
            result
        }

        /// True if the queue held no elements at the time of the check
        /// (racy by nature, as in the real crate) — but never true while
        /// a completed `push` remains unconsumed.
        pub fn is_empty(&self) -> bool {
            self.len.load(Ordering::SeqCst) == 0
        }

        /// Number of queued elements at the time of the check.
        pub fn len(&self) -> usize {
            self.len.load(Ordering::SeqCst)
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> std::fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SegQueue")
                .field("len", &self.len())
                .finish()
        }
    }

    impl<T> Drop for SegQueue<T> {
        fn drop(&mut self) {
            // Exclusive access: walk the chain freeing every node (the
            // stub's `val` is `None`; live elements drop with their node).
            unsafe {
                let mut p = *self.head.get();
                while !p.is_null() {
                    let next = (*p).next.load(Ordering::Relaxed);
                    drop(Box::from_raw(p));
                    p = next;
                }
            }
        }
    }

    struct ListNode<T> {
        /// Plain pointer: only written before publication (push links the
        /// node to the observed head *before* the CAS) and only read by
        /// the drainer, which owns the whole detached chain exclusively.
        next: *mut ListNode<T>,
        val: T,
    }

    /// A multi-producer **push/drain** list (Treiber push, Vyukov-style
    /// whole-chain consumption): producers prepend nodes with a lock-free
    /// CAS; a consumer detaches the *entire* chain with one atomic swap
    /// and iterates it in push order.
    ///
    /// This is the shape wake/kick-off delivery wants — records are posted
    /// from many finishers and consumed in batches by whichever thread
    /// currently owns the drain — and it makes memory reclamation trivial:
    /// a drained chain is reachable only by its drainer (the swap removed
    /// every shared path to it), so nodes are freed without epochs,
    /// hazard pointers, or ABA concerns. `push` never touches detached
    /// nodes (it only ever links to the *current* head), so the classic
    /// Treiber-stack ABA hazard — which needs a concurrent *pop-one*
    /// reusing an address — cannot arise with drain-everything consumers.
    ///
    /// Ordering guarantees:
    ///
    /// * [`drain`](PushList::drain) yields records in **global push
    ///   order** (the linearization order of the publishing CASes) —
    ///   in particular, per-producer FIFO.
    /// * `push`/`drain`/`is_empty` are `SeqCst`, so a push that completed
    ///   before a failed drain-ownership handoff is always visible to the
    ///   owner's re-check (the lost-wake guard the dispatcher's CAS-owner
    ///   protocol relies on).
    /// * [`len`](PushList::len)/[`is_empty`](PushList::is_empty) never
    ///   under-count completed pushes (counted before publication,
    ///   uncounted only at drain).
    pub struct PushList<T> {
        head: AtomicPtr<ListNode<T>>,
        /// Incremented before publication, decremented as a drained chain
        /// is walked: an upper bound that never misses a completed push.
        len: AtomicUsize,
    }

    unsafe impl<T: Send> Send for PushList<T> {}
    unsafe impl<T: Send> Sync for PushList<T> {}

    impl<T> PushList<T> {
        /// An empty list.
        pub fn new() -> Self {
            PushList {
                head: AtomicPtr::new(ptr::null_mut()),
                len: AtomicUsize::new(0),
            }
        }

        /// Prepend an element. Lock-free: a CAS loop on the head pointer
        /// that only ever retries when another producer published first.
        pub fn push(&self, value: T) {
            // Count before publishing so `is_empty` can never miss a
            // completed push.
            self.len.fetch_add(1, Ordering::SeqCst);
            let node = Box::into_raw(Box::new(ListNode {
                next: ptr::null_mut(),
                val: value,
            }));
            let mut head = self.head.load(Ordering::SeqCst);
            loop {
                unsafe { (*node).next = head };
                match self
                    .head
                    .compare_exchange(head, node, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => return,
                    Err(h) => head = h,
                }
            }
        }

        /// Detach every element pushed so far (one atomic swap) and
        /// return them in push order. The returned iterator owns the
        /// chain exclusively; elements not iterated drop with it.
        ///
        /// Concurrent pushes that land after the swap stay on the list
        /// for the next drain. Multiple concurrent drainers are safe
        /// (each takes a disjoint chain), but callers that need *all*
        /// records in one place — like the dispatcher's wake delivery —
        /// should serialize drains through an ownership flag.
        pub fn drain(&self) -> PushListDrain<'_, T> {
            let mut chain = self.head.swap(ptr::null_mut(), Ordering::SeqCst);
            // Reverse the LIFO chain in place: the detached nodes are
            // exclusively ours, so plain pointer writes suffice.
            let mut prev: *mut ListNode<T> = ptr::null_mut();
            let mut taken = 0usize;
            while !chain.is_null() {
                let next = unsafe { (*chain).next };
                unsafe { (*chain).next = prev };
                prev = chain;
                chain = next;
                taken += 1;
            }
            if taken > 0 {
                self.len.fetch_sub(taken, Ordering::SeqCst);
            }
            PushListDrain {
                next: prev,
                _list: std::marker::PhantomData,
            }
        }

        /// True if the list held no elements at the time of the check —
        /// never true while a completed `push` remains undrained.
        pub fn is_empty(&self) -> bool {
            self.len.load(Ordering::SeqCst) == 0
        }

        /// Observed number of queued elements (an upper bound while
        /// producers race; exact at quiescence).
        pub fn len(&self) -> usize {
            self.len.load(Ordering::SeqCst)
        }
    }

    impl<T> Default for PushList<T> {
        fn default() -> Self {
            PushList::new()
        }
    }

    impl<T> std::fmt::Debug for PushList<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("PushList")
                .field("len", &self.len())
                .finish()
        }
    }

    impl<T> Drop for PushList<T> {
        fn drop(&mut self) {
            // Exclusive access: detach and drop whatever was never
            // drained (parked wake records at shutdown).
            drop(self.drain());
        }
    }

    /// Owning iterator over one detached [`PushList`] chain, yielding in
    /// push order. Dropping it drops the remaining elements.
    pub struct PushListDrain<'a, T> {
        next: *mut ListNode<T>,
        /// Ties the drain's lifetime to the list purely as API hygiene
        /// (the chain itself is already exclusively owned).
        _list: std::marker::PhantomData<&'a PushList<T>>,
    }

    unsafe impl<T: Send> Send for PushListDrain<'_, T> {}

    impl<T> Iterator for PushListDrain<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            if self.next.is_null() {
                return None;
            }
            let node = unsafe { Box::from_raw(self.next) };
            self.next = node.next;
            Some(node.val)
        }
    }

    impl<T> Drop for PushListDrain<'_, T> {
        fn drop(&mut self) {
            while self.next().is_some() {}
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_len() {
            let q = SegQueue::new();
            assert!(q.is_empty());
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn concurrent_producers_drain_completely() {
            let q = std::sync::Arc::new(SegQueue::new());
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = std::sync::Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..100u64 {
                            q.push(t * 1000 + i);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 400);
        }

        #[test]
        fn concurrent_producers_and_consumers_conserve_elements() {
            let q = std::sync::Arc::new(SegQueue::new());
            let popped = std::sync::Arc::new(AtomicUsize::new(0));
            const PRODUCERS: usize = 3;
            const CONSUMERS: usize = 3;
            const PER_PRODUCER: usize = 2000;
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|t| {
                    let q = std::sync::Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..PER_PRODUCER {
                            q.push(t * PER_PRODUCER + i);
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let q = std::sync::Arc::clone(&q);
                    let popped = std::sync::Arc::clone(&popped);
                    std::thread::spawn(move || {
                        while popped.load(Ordering::SeqCst) < PRODUCERS * PER_PRODUCER {
                            if q.pop().is_some() {
                                popped.fetch_add(1, Ordering::SeqCst);
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    })
                })
                .collect();
            for h in producers {
                h.join().unwrap();
            }
            for h in consumers {
                h.join().unwrap();
            }
            assert_eq!(popped.load(Ordering::SeqCst), PRODUCERS * PER_PRODUCER);
            assert!(q.is_empty());
        }

        #[test]
        fn drops_unconsumed_elements() {
            // Leak check by proxy: Arc strong counts drop back to 1.
            let tracker = std::sync::Arc::new(());
            {
                let q = SegQueue::new();
                for _ in 0..10 {
                    q.push(std::sync::Arc::clone(&tracker));
                }
                assert_eq!(std::sync::Arc::strong_count(&tracker), 11);
                let _ = q.pop();
            }
            assert_eq!(std::sync::Arc::strong_count(&tracker), 1);
        }

        #[test]
        fn push_list_drains_in_push_order() {
            let l = PushList::new();
            assert!(l.is_empty());
            l.push(1);
            l.push(2);
            l.push(3);
            assert_eq!(l.len(), 3);
            assert_eq!(l.drain().collect::<Vec<_>>(), vec![1, 2, 3]);
            assert!(l.is_empty());
            assert_eq!(l.drain().next(), None);
            // The list is reusable after a drain.
            l.push(4);
            assert_eq!(l.drain().collect::<Vec<_>>(), vec![4]);
        }

        #[test]
        fn push_list_concurrent_producers_lose_nothing_and_keep_producer_order() {
            const PRODUCERS: u64 = 4;
            const PER_PRODUCER: u64 = 5000;
            let l = std::sync::Arc::new(PushList::new());
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|t| {
                    let l = std::sync::Arc::clone(&l);
                    std::thread::spawn(move || {
                        for i in 0..PER_PRODUCER {
                            l.push((t, i));
                        }
                    })
                })
                .collect();
            // A concurrent drainer churns while producers run.
            let mut got: Vec<(u64, u64)> = Vec::new();
            while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
                got.extend(l.drain());
            }
            for h in handles {
                h.join().unwrap();
            }
            got.extend(l.drain());
            assert_eq!(got.len() as u64, PRODUCERS * PER_PRODUCER);
            // Per-producer FIFO survives interleaved drains.
            let mut next = vec![0u64; PRODUCERS as usize];
            for (t, i) in got {
                assert_eq!(i, next[t as usize], "producer {t} out of order");
                next[t as usize] = i + 1;
            }
        }

        #[test]
        fn push_list_drops_undrained_elements() {
            let tracker = std::sync::Arc::new(());
            {
                let l = PushList::new();
                for _ in 0..10 {
                    l.push(std::sync::Arc::clone(&tracker));
                }
                assert_eq!(std::sync::Arc::strong_count(&tracker), 11);
                // A half-consumed drain drops the rest of its chain …
                let mut d = l.drain();
                let _ = d.next();
                drop(d);
                // … and the list drop covers records pushed after it.
                l.push(std::sync::Arc::clone(&tracker));
            }
            assert_eq!(std::sync::Arc::strong_count(&tracker), 1);
        }
    }
}

pub mod deque {
    //! Chase–Lev work-stealing deques with the `crossbeam-deque` API
    //! shape.
    //!
    //! [`Worker`] is the single-owner end: LIFO `push`/`pop` touch only
    //! the bottom index — the owner's hot path is a handful of atomic
    //! operations and **never takes a lock**. [`Stealer`] handles
    //! (cloneable, shareable) take from the top (FIFO order) and race
    //! each other — and the owner's last-element pop — through a CAS on
    //! `top`, per Chase & Lev, *Dynamic Circular Work-Stealing Deque*
    //! (SPAA'05), with the memory orderings of Lê et al., *Correct and
    //! Efficient Work-Stealing for Weak Memory Models* (PPoPP'13).
    //!
    //! [`Injector`] is the shared FIFO entry point (a lock-free-push
    //! [`SegQueue`](crate::queue::SegQueue) behind the `Steal` API).
    //!
    //! Implementation notes for this stand-in:
    //!
    //! * The ring buffer grows geometrically and old buffers are
    //!   *retired*, not freed, until the deque itself drops — stealers
    //!   may still be reading a superseded buffer, and retirement makes
    //!   that read always-safe without epoch reclamation (the real crate
    //!   uses `crossbeam-epoch`). Peak retired memory is bounded by 2× the
    //!   largest buffer.
    //! * A steal reads the slot *before* validating ownership with the
    //!   CAS on `top`; a failed CAS forgets the read value without
    //!   dropping it. Values are only returned (and dropped) by the one
    //!   winner of index `t`.

    use std::cell::UnsafeCell;
    use std::marker::PhantomData;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex};

    const MIN_CAP: usize = 64;

    struct Buffer<T> {
        /// Power of two.
        cap: usize,
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    }

    impl<T> Buffer<T> {
        fn alloc(cap: usize) -> *mut Buffer<T> {
            debug_assert!(cap.is_power_of_two());
            let slots = (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Box::into_raw(Box::new(Buffer { cap, slots }))
        }

        unsafe fn write(&self, index: isize, value: T) {
            let slot = self.slots[index as usize & (self.cap - 1)].get();
            (*slot).write(value);
        }

        /// Bitwise read of the slot for `index`. May race with an owner
        /// overwrite when the caller has lost index ownership — callers
        /// must validate with the CAS on `top` before using (or dropping)
        /// the value, and `mem::forget` it on failure.
        unsafe fn read(&self, index: isize) -> T {
            let slot = self.slots[index as usize & (self.cap - 1)].get();
            (*slot).assume_init_read()
        }
    }

    struct Inner<T> {
        top: AtomicIsize,
        bottom: AtomicIsize,
        buf: AtomicPtr<Buffer<T>>,
        /// Superseded buffers, kept alive until the deque drops.
        retired: Mutex<Vec<*mut Buffer<T>>>,
    }

    unsafe impl<T: Send> Send for Inner<T> {}
    unsafe impl<T: Send> Sync for Inner<T> {}

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let buf = *self.buf.get_mut();
            unsafe {
                for i in t..b {
                    drop((*buf).read(i));
                }
                drop(Box::from_raw(buf));
            }
            for p in self
                .retired
                .get_mut()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                // Retired buffers hold only bitwise copies (`MaybeUninit`
                // slots): freeing the allocation drops no element twice.
                unsafe { drop(Box::from_raw(p)) };
            }
        }
    }

    /// Result of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was observed empty.
        Empty,
        /// Lost a race; retrying may succeed.
        Retry,
        /// Took this element.
        Success(T),
    }

    impl<T> Steal<T> {
        /// The stolen element, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        /// True if the source was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The single-owner end of a deque: LIFO push/pop, lock-free.
    pub struct Worker<T> {
        inner: Arc<Inner<T>>,
        /// Single-owner handle: `Send`, deliberately `!Sync`.
        _not_sync: PhantomData<UnsafeCell<()>>,
    }

    impl<T: Send> Worker<T> {
        /// A new empty deque (owner pops newest-first; stealers take
        /// oldest-first).
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Inner {
                    top: AtomicIsize::new(0),
                    bottom: AtomicIsize::new(0),
                    buf: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
                    retired: Mutex::new(Vec::new()),
                }),
                _not_sync: PhantomData,
            }
        }

        /// A stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Push onto the bottom (owner end).
        pub fn push(&self, value: T) {
            let inner = &*self.inner;
            let b = inner.bottom.load(Ordering::Relaxed);
            let t = inner.top.load(Ordering::Acquire);
            let mut buf = inner.buf.load(Ordering::Relaxed);
            if b - t >= unsafe { (*buf).cap } as isize {
                buf = self.grow(t, b);
            }
            unsafe { (*buf).write(b, value) };
            // SeqCst publication so a parking consumer's sequenced
            // re-check (registration, then queue sweep) cannot miss it.
            inner.bottom.store(b + 1, Ordering::SeqCst);
        }

        /// Pop from the bottom (owner end, LIFO).
        pub fn pop(&self) -> Option<T> {
            let inner = &*self.inner;
            let b = inner.bottom.load(Ordering::Relaxed) - 1;
            let buf = inner.buf.load(Ordering::Relaxed);
            inner.bottom.store(b, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let t = inner.top.load(Ordering::SeqCst);
            if t <= b {
                if t == b {
                    // Last element: race stealers for index b via `top`.
                    let won = inner
                        .top
                        .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok();
                    inner.bottom.store(b + 1, Ordering::SeqCst);
                    if won {
                        Some(unsafe { (*buf).read(b) })
                    } else {
                        None
                    }
                } else {
                    // Interior element: stealers cannot reach index b.
                    Some(unsafe { (*buf).read(b) })
                }
            } else {
                inner.bottom.store(b + 1, Ordering::SeqCst);
                None
            }
        }

        /// True if the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Observed number of elements.
        pub fn len(&self) -> usize {
            let t = self.inner.top.load(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::SeqCst);
            (b - t).max(0) as usize
        }

        /// Double the buffer, copying the live range `[t, b)`. The old
        /// buffer is retired (stealers may still be reading it).
        fn grow(&self, t: isize, b: isize) -> *mut Buffer<T> {
            let inner = &*self.inner;
            let old = inner.buf.load(Ordering::Relaxed);
            let new = Buffer::alloc(unsafe { (*old).cap } * 2);
            unsafe {
                for i in t..b {
                    // Bitwise relocation: the old slot keeps a stale copy
                    // that is never dropped (MaybeUninit).
                    (*new).write(i, (*old).read(i));
                }
            }
            inner.buf.store(new, Ordering::Release);
            inner
                .retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(old);
            new
        }
    }

    /// A shareable handle that takes from the top (FIFO end) of a
    /// [`Worker`]'s deque.
    pub struct Stealer<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T: Send> Stealer<T> {
        /// Attempt to steal the oldest element.
        pub fn steal(&self) -> Steal<T> {
            let inner = &*self.inner;
            let t = inner.top.load(Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let b = inner.bottom.load(Ordering::SeqCst);
            if t < b {
                // Load the buffer only after `bottom`: seeing b > t
                // guarantees (release/acquire through `bottom`) that this
                // load observes a buffer holding index t.
                let buf = inner.buf.load(Ordering::Acquire);
                let v = unsafe { (*buf).read(t) };
                if inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    Steal::Success(v)
                } else {
                    // Lost index t to another thief or the owner: the
                    // bitwise copy is not ours to drop.
                    std::mem::forget(v);
                    Steal::Retry
                }
            } else {
                Steal::Empty
            }
        }

        /// True if the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Observed number of elements.
        pub fn len(&self) -> usize {
            let t = self.inner.top.load(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::SeqCst);
            (b - t).max(0) as usize
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A shared FIFO injection queue with lock-free producers (see
    /// [`SegQueue`](crate::queue::SegQueue)), exposed through the
    /// [`Steal`] API like the real crate's `Injector`.
    pub struct Injector<T> {
        q: crate::queue::SegQueue<T>,
    }

    impl<T: Send> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                q: crate::queue::SegQueue::new(),
            }
        }

        /// Enqueue an element (lock-free; never blocks).
        pub fn push(&self, value: T) {
            self.q.push(value);
        }

        /// Attempt to take the oldest element.
        pub fn steal(&self) -> Steal<T> {
            match self.q.pop() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// True if the injector was observed empty.
        pub fn is_empty(&self) -> bool {
            self.q.is_empty()
        }

        /// Observed number of queued elements.
        pub fn len(&self) -> usize {
            self.q.len()
        }
    }

    impl<T: Send> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicU64;

        #[test]
        fn owner_lifo_stealer_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.len(), 3);
            assert_eq!(s.steal(), Steal::Success(1), "stealer takes oldest");
            assert_eq!(w.pop(), Some(3), "owner takes newest");
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert!(s.steal().is_empty());
        }

        #[test]
        fn growth_preserves_elements() {
            let w = Worker::new_lifo();
            for i in 0..10_000u64 {
                w.push(i);
            }
            let mut got = Vec::new();
            while let Some(v) = w.pop() {
                got.push(v);
            }
            got.reverse();
            assert_eq!(got, (0..10_000).collect::<Vec<_>>());
        }

        #[test]
        fn concurrent_stealers_take_each_element_once() {
            const N: u64 = 50_000;
            const THIEVES: usize = 3;
            let w = Worker::new_lifo();
            let sum = Arc::new(AtomicU64::new(0));
            let taken = Arc::new(AtomicU64::new(0));
            let thieves: Vec<_> = (0..THIEVES)
                .map(|_| {
                    let s = w.stealer();
                    let sum = Arc::clone(&sum);
                    let taken = Arc::clone(&taken);
                    std::thread::spawn(move || loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                sum.fetch_add(v, Ordering::Relaxed);
                                taken.fetch_add(1, Ordering::Relaxed);
                            }
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if taken.load(Ordering::SeqCst) >= N {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    })
                })
                .collect();
            // Owner interleaves pushes with occasional pops.
            let mut owner_sum = 0u64;
            for i in 1..=N {
                w.push(i);
                if i % 64 == 0 {
                    if let Some(v) = w.pop() {
                        owner_sum += v;
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Drain the remainder from the owner side.
            while let Some(v) = w.pop() {
                owner_sum += v;
                taken.fetch_add(1, Ordering::Relaxed);
            }
            for h in thieves {
                h.join().unwrap();
            }
            assert_eq!(taken.load(Ordering::SeqCst), N, "every element taken once");
            assert_eq!(
                sum.load(Ordering::SeqCst) + owner_sum,
                N * (N + 1) / 2,
                "sum conserved: no loss, no duplication"
            );
        }

        #[test]
        fn no_leaks_across_grow_and_steal() {
            let tracker = Arc::new(());
            {
                let w = Worker::new_lifo();
                let s = w.stealer();
                for _ in 0..500 {
                    w.push(Arc::clone(&tracker));
                }
                for _ in 0..100 {
                    let _ = s.steal();
                }
                for _ in 0..100 {
                    let _ = w.pop();
                }
                // 300 live elements drop with the deque.
            }
            assert_eq!(Arc::strong_count(&tracker), 1);
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.len(), 2);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert!(inj.steal().is_empty());
        }
    }
}

pub mod channel {
    //! MPMC channels with the `crossbeam-channel` API shape.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was queued (senders may still produce one).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]; carries the unsent value
    /// back to the caller.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether this rejection was capacity backpressure (retryable).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "TrySendError::Full(..)",
                TrySendError::Disconnected(_) => "TrySendError::Disconnected(..)",
            })
        }
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// `Some(n)` ⇒ at most `n` queued messages (send-side
        /// backpressure); `None` ⇒ unbounded.
        cap: Option<usize>,
        ready: Condvar,
        /// Senders blocked on a full bounded channel wait here; receivers
        /// notify it as they pop.
        space: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn channel_with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            ready: Condvar::new(),
            space: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with_cap(None)
    }

    /// Create a bounded channel holding at most `cap` queued messages.
    /// [`Sender::send`] blocks while full; [`Sender::try_send`] reports
    /// [`TrySendError::Full`] instead — the backpressure primitive the
    /// service-layer ingress queues rely on. `cap == 0` is rounded up to
    /// 1 (this stand-in has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel_with_cap(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueue a message, waking one waiting receiver. On a full
        /// bounded channel this blocks until a receiver makes room.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self.shared.space.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => {
                        q.push_back(value);
                        drop(q);
                        self.shared.ready.notify_one();
                        return Ok(());
                    }
                }
            }
        }

        /// Enqueue a message without blocking: a full bounded channel
        /// hands the value back as [`TrySendError::Full`].
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Pop a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                drop(q);
                self.shared.space.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = match deadline.checked_duration_since(Instant::now()) {
                    Some(left) if !left.is_zero() => left,
                    _ => return Err(RecvTimeoutError::Timeout),
                };
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(q, left)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver gone: wake every sender blocked on a full
                // bounded channel so it can observe disconnection.
                self.shared.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.recv().unwrap());
            let h2 = std::thread::spawn(move || rx.recv().unwrap());
            tx.send(1u32).unwrap();
            tx.send(2u32).unwrap();
            let mut got = vec![h.join().unwrap(), h2.join().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn try_recv_distinguishes_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn bounded_try_send_reports_full_and_frees_on_recv() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_send_blocks_until_receiver_pops() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap().unwrap();
        }

        #[test]
        fn blocked_sender_observes_receiver_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(rx);
            assert_eq!(h.join().unwrap(), Err(SendError(2)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
