//! Offline stand-in for the `crossbeam` crate (this workspace builds
//! without network access — see `vendor/README.md`).
//!
//! Only the surface the workspace uses is provided: [`channel`] with
//! multi-producer **multi-consumer** `unbounded`/`bounded` channels
//! (`std::sync::mpsc` receivers are not cloneable, so this is a small
//! Mutex+Condvar queue instead of a wrapper), and [`queue`] with the
//! non-blocking [`queue::SegQueue`] used by the sharded dispatcher's
//! deferred-finish rings.

pub mod queue {
    //! Concurrent queues with the `crossbeam-queue` API shape.
    //!
    //! The real `SegQueue` is a lock-free segmented queue; this stand-in
    //! is a `Mutex<VecDeque>` with the same non-blocking API. Push/pop
    //! never wait for capacity or elements (there is no condvar), so
    //! callers written against the real crate behave identically — only
    //! the scalability of the queue itself differs, which is acceptable
    //! for the in-tree uses (short per-shard rings drained under the
    //! shard lock anyway).

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC queue with non-blocking `push`/`pop`.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueue an element. Never blocks.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Dequeue the oldest element, `None` if the queue is empty.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// True if the queue held no elements at the time of the check
        /// (racy by nature, as in the real crate).
        pub fn is_empty(&self) -> bool {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        /// Number of queued elements at the time of the check.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_len() {
            let q = SegQueue::new();
            assert!(q.is_empty());
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn concurrent_producers_drain_completely() {
            let q = std::sync::Arc::new(SegQueue::new());
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = std::sync::Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..100u64 {
                            q.push(t * 1000 + i);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 400);
        }
    }
}

pub mod channel {
    //! MPMC channels with the `crossbeam-channel` API shape.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create a bounded channel. The capacity is accepted for API
    /// compatibility; this stand-in never applies send-side backpressure
    /// (a strict superset of the bounded behaviour for the in-tree uses,
    /// which only ever send a bounded number of messages).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueue a message, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.recv().unwrap());
            let h2 = std::thread::spawn(move || rx.recv().unwrap());
            tx.send(1u32).unwrap();
            tx.send(2u32).unwrap();
            let mut got = vec![h.join().unwrap(), h2.join().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
