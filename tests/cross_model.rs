//! Consistency between the independent models: the hardware simulation,
//! the ideal scheduler, the software-RTS model and the threaded runtime
//! must tell one coherent story.

use nexuspp::baseline::ideal::ideal_makespan_overlapped;
use nexuspp::baseline::{ideal_makespan, simulate_software_rts, SoftwareRtsConfig};
use nexuspp::desim::SimTime;
use nexuspp::hw::MemoryConfig;
use nexuspp::taskmachine::{simulate_trace, MachineConfig, SimError};
use nexuspp::trace::{format, MemCost, Param, TaskRecord, Trace};
use nexuspp::workloads::{GridPattern, GridSpec};

/// The overlapped ideal scheduler lower-bounds the hardware model's
/// makespan on every workload: perfect prefetching hides all memory time,
/// so no machine configuration can beat it.
#[test]
fn ideal_lower_bounds_machine() {
    for pat in GridPattern::all() {
        let trace = GridSpec::small(24, 16).generate(pat);
        for cores in [1usize, 4, 16] {
            let mut src = trace.clone().into_source();
            let bound = ideal_makespan_overlapped(&mut src, cores);
            let r = simulate_trace(MachineConfig::with_workers(cores).contention_free(), &trace)
                .unwrap();
            assert!(
                r.makespan >= bound,
                "{} at {cores} cores: machine {} < overlapped ideal {}",
                pat.name(),
                r.makespan,
                bound
            );
            // And the overhead is bounded: within 3× of the exec-only
            // bound for these coarse-grained tasks (dependency chains
            // expose the un-hideable wake + fetch latency).
            assert!(
                r.makespan < bound * 3,
                "{} at {cores} cores: overhead blew up ({} vs {})",
                pat.name(),
                r.makespan,
                bound
            );
        }
    }
}

/// Hardware task management beats the software RTS wherever the software
/// master is the bottleneck (the reason Nexus/Nexus++ exist).
#[test]
fn hardware_beats_software_rts() {
    let trace = GridSpec::default().generate(GridPattern::Independent);
    let cfg = SoftwareRtsConfig::default();
    let mem = MemoryConfig::default();
    for cores in [16usize, 64] {
        let mut src = trace.clone().into_source();
        let sw = simulate_software_rts(&mut src, cores, &cfg, &mem);
        let hw = simulate_trace(MachineConfig::with_workers(cores), &trace)
            .unwrap()
            .makespan;
        assert!(
            sw > hw * 2,
            "at {cores} cores the software RTS ({sw}) must trail hardware ({hw})"
        );
    }
}

/// A serial dependency chain bounds every model identically: makespan ≥
/// Σ exec along the chain, regardless of core count.
#[test]
fn chain_critical_path_respected_everywhere() {
    let n = 40u64;
    let exec = SimTime::from_us(2);
    let tasks: Vec<TaskRecord> = (0..n)
        .map(|i| {
            let mut p = vec![Param::output(0x1000 + i * 64, 8)];
            if i > 0 {
                p.push(Param::input(0x1000 + (i - 1) * 64, 8));
            }
            TaskRecord {
                id: i,
                fptr: 1,
                params: p,
                exec,
                read: MemCost::None,
                write: MemCost::None,
            }
        })
        .collect();
    let trace = Trace::from_tasks("chain", tasks);
    let bound = exec * n;

    let r = simulate_trace(MachineConfig::with_workers(8), &trace).unwrap();
    assert!(r.makespan >= bound);

    let mut src = trace.clone().into_source();
    assert!(ideal_makespan(&mut src, 8, &MemoryConfig::default()) >= bound);

    let mut src = trace.clone().into_source();
    assert!(
        simulate_software_rts(
            &mut src,
            8,
            &SoftwareRtsConfig::default(),
            &MemoryConfig::default()
        ) >= bound
    );
}

/// Traces survive serialization and simulate identically afterwards.
#[test]
fn trace_roundtrip_preserves_simulation() {
    let trace = GridSpec::small(12, 10).generate(GridPattern::Wavefront);
    let text = format::trace_to_string(&trace);
    let back = format::trace_from_str(&text).unwrap();
    assert_eq!(trace, back);
    let a = simulate_trace(MachineConfig::with_workers(4), &trace).unwrap();
    let b = simulate_trace(MachineConfig::with_workers(4), &back).unwrap();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
}

/// Full determinism across repeated runs of every model.
#[test]
fn everything_is_deterministic() {
    let trace = GridSpec::default().generate(GridPattern::Wavefront);
    let m1 = simulate_trace(MachineConfig::with_workers(32), &trace).unwrap();
    let m2 = simulate_trace(MachineConfig::with_workers(32), &trace).unwrap();
    assert_eq!(m1.makespan, m2.makespan);
    assert_eq!(m1.table.inserts, m2.table.inserts);

    let mem = MemoryConfig::default();
    let mut s1 = trace.clone().into_source();
    let mut s2 = trace.clone().into_source();
    assert_eq!(
        ideal_makespan(&mut s1, 32, &mem),
        ideal_makespan(&mut s2, 32, &mem)
    );
}

/// The error path is part of the contract: an impossible task is reported,
/// not silently mangled.
#[test]
fn oversized_task_reported_not_hung() {
    use nexuspp::core::NexusConfig;
    let params: Vec<Param> = (0..64).map(|i| Param::output(0x9000 + i * 64, 8)).collect();
    let trace = Trace::from_tasks(
        "huge",
        vec![TaskRecord {
            id: 0,
            fptr: 1,
            params,
            exec: SimTime::from_us(1),
            read: MemCost::None,
            write: MemCost::None,
        }],
    );
    let mut cfg = MachineConfig::with_workers(2);
    cfg.nexus = NexusConfig {
        task_pool_entries: 4,
        ..NexusConfig::default()
    };
    match simulate_trace(cfg, &trace) {
        Err(SimError::TaskTooLarge {
            needed, capacity, ..
        }) => {
            assert!(needed > capacity);
        }
        other => panic!("expected TaskTooLarge, got {other:?}"),
    }
}

/// Dummy-task descriptors flow through the whole machine: a >8-parameter
/// workload completes on the default configuration and allocates chained
/// descriptors.
#[test]
fn dummy_tasks_through_the_machine() {
    let trace = nexuspp::workloads::stress::wide_params(64, 20, 2_000);
    let r = simulate_trace(MachineConfig::with_workers(4), &trace).unwrap();
    assert_eq!(r.tasks, 64);
    assert_eq!(r.pool.dummy_tds_allocated, 2 * 64, "20 params → 3 TDs each");
}
