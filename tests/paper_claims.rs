//! Cross-crate integration tests asserting the paper's claims as
//! reproducible properties. These are the "did we actually reproduce the
//! paper?" tests; EXPERIMENTS.md records the same numbers narratively.

use nexuspp::baseline::classic::classic_check_trace;
use nexuspp::baseline::ClassicLimits;
use nexuspp::hw::storage::{StorageBudget, StorageParams, TASK_SUPERSCALAR_BYTES};
use nexuspp::taskmachine::{simulate, simulate_trace, MachineConfig};
use nexuspp::workloads::{GaussianSpec, GridPattern, GridSpec};

/// §V headline: 54× / 143× / 221× within a ±40% band, with the right
/// ordering between the three configurations.
#[test]
fn headline_speedups_reproduce() {
    let trace = GridSpec::default().generate(GridPattern::Independent);
    let base = simulate_trace(MachineConfig::with_workers(1), &trace).unwrap();
    let s = |cfg: MachineConfig| {
        let r = simulate_trace(cfg, &trace).unwrap();
        base.makespan / r.makespan
    };
    let contended64 = s(MachineConfig::with_workers(64));
    let cf256 = s(MachineConfig::with_workers(256).contention_free());
    let noprep256 = s(MachineConfig::with_workers(256).contention_free().no_prep());

    assert!(
        (contended64 / 54.0 - 1.0).abs() < 0.4,
        "64-core contended speedup {contended64} vs paper 54"
    );
    assert!(
        (cf256 / 143.0 - 1.0).abs() < 0.4,
        "256-core contention-free speedup {cf256} vs paper 143"
    );
    assert!(
        (noprep256 / 221.0 - 1.0).abs() < 0.4,
        "no-prep speedup {noprep256} vs paper 221"
    );
    // Orderings the paper's argument depends on.
    assert!(cf256 > contended64 * 2.0, "contention must cap the curve");
    assert!(noprep256 > cf256 * 1.2, "task prep must limit the plateau");
}

/// §V: "double buffering increases the scalability of the system".
#[test]
fn double_buffering_wins() {
    let trace = GridSpec::default().generate(GridPattern::Wavefront);
    let mut single = MachineConfig::with_workers(16);
    single.buffering_depth = 1;
    let mut double = MachineConfig::with_workers(16);
    double.buffering_depth = 2;
    let r1 = simulate_trace(single, &trace).unwrap();
    let r2 = simulate_trace(double, &trace).unwrap();
    assert!(
        r1.makespan / r2.makespan > 1.2,
        "double buffering should hide the 7.5 µs memory time: {} vs {}",
        r1.makespan,
        r2.makespan
    );
}

/// Figure 7's qualitative content: horizontal ≪ vertical; the wavefront
/// is ramp-limited; independent scales furthest.
#[test]
fn figure7_shape() {
    let spec = GridSpec::default();
    let speedup_at = |pat: GridPattern, cores: usize| {
        let trace = spec.generate(pat);
        let base = simulate_trace(MachineConfig::with_workers(1), &trace).unwrap();
        let r = simulate_trace(MachineConfig::with_workers(cores), &trace).unwrap();
        base.makespan / r.makespan
    };
    let horizontal = speedup_at(GridPattern::Horizontal, 64);
    let vertical = speedup_at(GridPattern::Vertical, 64);
    let wavefront = speedup_at(GridPattern::Wavefront, 64);
    let independent = speedup_at(GridPattern::Independent, 64);

    assert!(
        vertical > horizontal * 2.0,
        "vertical ({vertical}) must dominate horizontal ({horizontal})"
    );
    assert!(
        horizontal < 20.0,
        "horizontal is window-limited: {horizontal}"
    );
    assert!(
        vertical > 30.0,
        "vertical scales well to 64 cores: {vertical}"
    );
    assert!(
        independent > wavefront,
        "the wavefront is ramp-limited vs independent"
    );
    // The ramp bound: 8160 / 306 ≈ 26.7 caps the wavefront.
    assert!(
        wavefront < 27.0,
        "wavefront cannot beat its avg parallelism"
    );
}

/// Figure 8's qualitative content: larger matrices scale further; small
/// ones saturate immediately (paper: 2.3× at 4 cores for n = 250).
#[test]
fn figure8_shape() {
    let speedup = |n: u32, cores: usize| {
        let spec = GaussianSpec::new(n);
        let mut src = spec.source();
        let base = simulate(MachineConfig::with_workers(1), &mut src).unwrap();
        let mut src = spec.source();
        let r = simulate(MachineConfig::with_workers(cores), &mut src).unwrap();
        base.makespan / r.makespan
    };
    let s250_4 = speedup(250, 4);
    let s250_64 = speedup(250, 64);
    let s1000_64 = speedup(1000, 64);
    assert!(
        (1.5..5.0).contains(&s250_4),
        "n=250 at 4 cores ≈ paper's 2.3×, got {s250_4}"
    );
    assert!(
        s250_64 < s250_4 * 1.5,
        "n=250 must saturate at few cores: {s250_4} → {s250_64}"
    );
    assert!(
        s1000_64 > s250_64 * 2.0,
        "bigger matrices scale further: {s1000_64} vs {s250_64}"
    );
}

/// §V storage: all tables and FIFO lists ≤ 210 KB; ≥ an order of
/// magnitude below Task Superscalar's 6.5 MB.
#[test]
fn storage_budget_claim() {
    let b = StorageBudget::compute(&StorageParams::default());
    assert!(b.total() <= 210 * 1024, "budget {} B", b.total());
    assert!(b.total() * 10 < TASK_SUPERSCALAR_BYTES);
}

/// §I/§V: Gaussian elimination cannot run on classic Nexus but runs on
/// Nexus++ — end to end through the Task Machine.
#[test]
fn gaussian_runs_on_nexuspp_not_on_classic() {
    // n = 500: the pivot-column fan-out reaches n−2 simultaneous waiters
    // when workers lag the master, far beyond any fixed kick-off list.
    let spec = GaussianSpec::new(500);
    // Classic rejects (kick-off fan-out exceeds any fixed list).
    let verdict = classic_check_trace(&spec.trace(), ClassicLimits::default(), 1024, 9);
    assert!(!verdict.supported);
    assert!(verdict.max_waiters_seen > 8);
    // Nexus++ executes it, absorbing the overflow with dummy entries.
    let mut src = spec.source();
    let r = simulate(MachineConfig::with_workers(8), &mut src).unwrap();
    assert_eq!(r.tasks, spec.task_count());
    assert!(
        r.table.ext_allocs > 100,
        "kick-off overflow must have required dummy entries (got {})",
        r.table.ext_allocs
    );
    assert_eq!(
        r.table.promotions, r.table.ext_allocs,
        "every dummy entry must eventually drain"
    );
    assert!(
        r.table.max_waiters_live > 100,
        "the fan-out should reach hundreds of waiters (got {})",
        r.table.max_waiters_live
    );
}

/// Table II, end to end: generated task counts equal the closed form and
/// the paper's numbers.
#[test]
fn table2_counts() {
    use nexuspp::trace::TraceSource;
    for (n, expect) in [(250u32, 31_374u64), (500, 125_249)] {
        let spec = GaussianSpec::new(n);
        assert_eq!(spec.task_count(), expect);
        let mut src = spec.source();
        let mut counted = 0;
        while src.next_task().is_some() {
            counted += 1;
        }
        assert_eq!(counted, expect);
    }
}

/// Figure 6's qualitative content: a 512-entry Task Pool already carries
/// 256 double-buffered cores; an undersized Dependence Table collapses.
#[test]
fn figure6_shape() {
    use nexuspp::core::NexusConfig;
    let trace = GridSpec::default().generate(GridPattern::Independent);
    let machine = |tp: usize, dt: usize| {
        let mut cfg = MachineConfig::with_workers(256).contention_free();
        cfg.nexus = NexusConfig {
            task_pool_entries: tp,
            dep_table_entries: dt,
            ..NexusConfig::default()
        };
        cfg
    };
    let base = simulate_trace(machine(8192, 8192), &trace).unwrap();
    let tp512 = simulate_trace(machine(512, 8192), &trace).unwrap();
    let tp128 = simulate_trace(machine(128, 8192), &trace).unwrap();
    let dt256 = simulate_trace(machine(8192, 256), &trace).unwrap();

    // TP = 512 ≈ full speed (cores × depth); TP = 128 clearly worse.
    let slow512 = tp512.makespan / base.makespan;
    assert!(slow512 < 1.10, "TP=512 should suffice: {slow512}");
    assert!(
        tp128.makespan > tp512.makespan,
        "TP=128 must throttle the window"
    );
    // A 256-entry DT cannot hold the live working set at full speed.
    assert!(
        dt256.makespan > base.makespan * 2,
        "DT=256 must collapse throughput: {} vs {}",
        dt256.makespan,
        base.makespan
    );
    assert!(dt256.check_deps.stalls > 0);
}
