//! Live-subscriber stress: a subscriber drains the stream *while*
//! producer threads are still emitting, across all lanes, with rings
//! small enough to wrap many times mid-run.
//!
//! The properties under test are the ones the online layer promises:
//!
//! * the live event sequence equals what a quiescent drain would have
//!   produced — nothing lost, nothing duplicated, nothing reordered —
//!   because published `seq`s are dense (allocated only after a ring
//!   slot is claimed) and the stream's watermark releases them in
//!   order;
//! * per-producer emission order survives the cross-lane merge
//!   (causality), even when the lane rings wrapped;
//! * drops are attributed: `recorded + dropped == emitted`, and a
//!   subscriber that out-sleeps the history window gets a nonzero
//!   `missed()` count instead of silently skewed data.

use nexuspp_obs::{Event, EventKind, EventStream, Recorder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const PRODUCERS: u64 = 4;
const PER_PRODUCER: u64 = 4_000;

/// Spawn `PRODUCERS` threads, each emitting `PER_PRODUCER` events with
/// a per-producer monotone payload, pinned to distinct recorder lanes.
fn spawn_producers(rec: &Arc<Recorder>) -> Vec<std::thread::JoinHandle<()>> {
    (0..PRODUCERS)
        .map(|p| {
            let rec = Arc::clone(rec);
            std::thread::spawn(move || {
                Recorder::set_thread_worker(p as u32);
                for i in 0..PER_PRODUCER {
                    // Payload encodes (producer, emission index) so the
                    // merged stream can be checked for causal order.
                    rec.emit(EventKind::WakePosted, p * 1_000_000 + i, p as u32);
                }
            })
        })
        .collect()
}

/// Seqs dense from 0, strictly increasing, and per-producer payloads
/// monotone (drops may leave gaps, never reorderings).
fn check_merged(events: &[Event], recorded: u64) {
    assert_eq!(
        events.len() as u64,
        recorded,
        "every recorded event delivered once"
    );
    for (i, w) in events.windows(2).enumerate() {
        assert!(
            w[0].seq < w[1].seq,
            "seq order violated at {i}: {} then {}",
            w[0].seq,
            w[1].seq
        );
    }
    if let (Some(first), Some(last)) = (events.first(), events.last()) {
        assert_eq!(first.seq, 0, "published seq space starts at 0");
        assert_eq!(
            last.seq,
            recorded - 1,
            "published seq space is dense (drops consume no seq)"
        );
    }
    let mut last_idx = [None::<u64>; PRODUCERS as usize];
    for e in events {
        let p = (e.task / 1_000_000) as usize;
        let i = e.task % 1_000_000;
        if let Some(prev) = last_idx[p] {
            assert!(prev < i, "producer {p} reordered: {prev} then {i}");
        }
        last_idx[p] = Some(i);
    }
}

#[test]
fn live_subscriber_equals_quiescent_drain_without_drops() {
    // Rings sized for the workload: zero drops, so the live sequence
    // must be byte-for-byte what a single quiescent drain would show.
    let rec = Arc::new(Recorder::with_capacity(PRODUCERS as usize, 1 << 15));
    let stream = EventStream::new(Arc::clone(&rec));
    let mut sub = stream.subscribe();

    let done = Arc::new(AtomicBool::new(false));
    let producers = spawn_producers(&rec);

    let mut live: Vec<Event> = Vec::new();
    let mut polls_with_data = 0u32;
    while !done.load(Ordering::Acquire) {
        let batch = sub.poll();
        if !batch.is_empty() {
            polls_with_data += 1;
        }
        live.extend(batch);
        if producers.iter().all(|h| h.is_finished()) {
            done.store(true, Ordering::Release);
        }
        std::thread::yield_now();
    }
    for h in producers {
        h.join().unwrap();
    }
    // Final quiescent poll picks up anything emitted after the last
    // live poll.
    live.extend(sub.poll());

    assert_eq!(rec.dropped(), 0, "rings were sized for the workload");
    assert_eq!(rec.recorded(), PRODUCERS * PER_PRODUCER);
    check_merged(&live, rec.recorded());
    assert_eq!(sub.missed(), 0, "history never outran this subscriber");
    assert!(
        polls_with_data >= 1,
        "the subscriber must have observed data (sanity: this was a live race)"
    );
}

#[test]
fn wraparound_with_drops_still_delivers_every_recorded_event() {
    // Tiny rings + bursty emission: lanes wrap constantly and some
    // pushes are rejected. The recorded subset must still come out
    // dense, ordered, and causally consistent.
    let rec = Arc::new(Recorder::with_capacity(PRODUCERS as usize, 64));
    let stream = EventStream::new(Arc::clone(&rec));
    let mut sub = stream.subscribe();

    let producers = spawn_producers(&rec);
    let mut live: Vec<Event> = Vec::new();
    loop {
        live.extend(sub.poll());
        if producers.iter().all(|h| h.is_finished()) {
            break;
        }
        // Poll slowly enough that 64-slot lanes overflow.
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    for h in producers {
        h.join().unwrap();
    }
    live.extend(sub.poll());

    assert_eq!(
        rec.recorded() + rec.dropped(),
        PRODUCERS * PER_PRODUCER,
        "accounting: every emission either recorded or counted dropped"
    );
    assert!(
        rec.dropped() > 0,
        "the configuration must actually exercise ring overflow"
    );
    check_merged(&live, rec.recorded());
    assert_eq!(sub.missed(), 0, "default history holds the whole run");
}

#[test]
fn slow_subscriber_gets_lag_attributed_while_fast_one_sees_everything() {
    let rec = Arc::new(Recorder::with_capacity(2, 1 << 15));
    // History much smaller than the run: a subscriber that never polls
    // mid-run must fall off the back and see it in `missed()`.
    let stream = EventStream::with_history(Arc::clone(&rec), 128);
    let mut fast = stream.subscribe();
    let mut slow = stream.subscribe();

    let producers = spawn_producers(&rec);
    let mut fast_events: Vec<Event> = Vec::new();
    loop {
        fast_events.extend(fast.poll());
        if producers.iter().all(|h| h.is_finished()) {
            break;
        }
        std::thread::yield_now();
    }
    for h in producers {
        h.join().unwrap();
    }
    fast_events.extend(fast.poll());

    let slow_events = slow.poll();
    let total = rec.recorded();
    assert!(total > 128, "run must exceed the history window");
    assert!(
        slow.missed() > 0,
        "a subscriber that out-slept the history window must see nonzero missed()"
    );
    assert_eq!(
        slow.missed() + slow_events.len() as u64,
        total,
        "missed + delivered covers the whole recorded stream"
    );
    // The slow subscriber's tail is still ordered and gap-attributed,
    // and it ends at the same watermark as the fast one's view.
    for w in slow_events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
    assert_eq!(
        slow_events.last().map(|e| e.seq),
        fast_events.last().map(|e| e.seq),
        "both subscribers converge on the same released watermark"
    );
    // The fast poller may or may not have lagged on a 1-CPU host; its
    // invariant is the same coverage equation, not zero lag.
    assert_eq!(fast.missed() + fast_events.len() as u64, total);
}
