//! Integration tests over the recorder's public surface: stream
//! ordering, ring wraparound accounting, and the disabled no-op path.

use nexuspp_obs::{Event, EventKind, Recorder, NO_SHARD, NO_TASK};
use std::sync::Arc;

/// Emissions that are causally ordered (here: same thread) must come out
/// of `drain` with strictly increasing `seq`, in emission order, even
/// when they were spread across per-thread lanes by other threads'
/// concurrent traffic.
#[test]
fn drained_stream_is_seq_sorted_and_causally_ordered() {
    let rec = Arc::new(Recorder::new(4));
    let noise: Vec<_> = (0..3)
        .map(|t| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    rec.emit(EventKind::WakePosted, 10_000 + t * 1000 + i, 0);
                }
            })
        })
        .collect();
    // The observed task: a full lifecycle emitted from this thread.
    let kinds = [
        EventKind::Submitted,
        EventKind::DepCheckStart,
        EventKind::DepCheckDone,
        EventKind::Ready,
        EventKind::ExecStart,
        EventKind::ExecDone,
        EventKind::Finished,
    ];
    for k in kinds {
        rec.emit(k, 7, 0);
    }
    for t in noise {
        t.join().unwrap();
    }
    let events = rec.drain();
    assert_eq!(rec.dropped(), 0);
    assert_eq!(events.len() as u64, rec.recorded());
    // Global: strictly increasing seq.
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "drain must sort by seq");
    }
    // Per-task: the lifecycle events appear in emission order.
    let task7: Vec<&Event> = events.iter().filter(|e| e.task == 7).collect();
    assert_eq!(task7.len(), kinds.len());
    for (e, k) in task7.iter().zip(kinds) {
        assert_eq!(e.kind, k);
    }
    // Timestamps are monotone along the causal chain.
    for w in task7.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns);
    }
}

/// When a lane ring wraps, pushes are rejected (never overwritten) and
/// the accounting invariant `recorded + dropped == emitted` holds; the
/// drained stream is exactly the accepted prefix.
#[test]
fn wraparound_drop_accounting() {
    // One lane of capacity 16, single thread: the first 16 emissions
    // land, the rest drop.
    let rec = Recorder::with_capacity(1, 16);
    for i in 0..100u64 {
        rec.emit(EventKind::Submitted, i, NO_SHARD);
    }
    assert_eq!(rec.recorded(), 16);
    assert_eq!(rec.dropped(), 84);
    let events = rec.drain();
    assert_eq!(events.len(), 16);
    // The survivors are the oldest emissions, intact — a full ring
    // rejects new pushes rather than overwriting history.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.task, i as u64);
    }
    // Draining frees the slots: the ring records again.
    rec.emit(EventKind::Finished, 999, 0);
    assert_eq!(rec.recorded(), 17);
    let more = rec.drain();
    assert_eq!(more.len(), 1);
    assert_eq!(more[0].task, 999);
}

/// The disabled recorder records nothing and reports zeros.
#[test]
fn disabled_recorder_is_inert() {
    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());
    for i in 0..1000u64 {
        rec.emit(EventKind::ExecStart, i, 0);
        rec.emit_edge(EventKind::Ready, i, NO_TASK, 0);
    }
    assert_eq!(rec.recorded(), 0);
    assert_eq!(rec.dropped(), 0);
    assert!(rec.drain().is_empty());
}

/// Worker ids stamped via the thread-local surface in events emitted on
/// that thread.
#[test]
fn thread_worker_id_is_stamped() {
    let rec = Arc::new(Recorder::new(2));
    let r2 = Arc::clone(&rec);
    std::thread::spawn(move || {
        Recorder::set_thread_worker(3);
        r2.emit(EventKind::ExecStart, 1, 0);
    })
    .join()
    .unwrap();
    rec.emit(EventKind::Submitted, 2, 0);
    let events = rec.drain();
    let exec = events.iter().find(|e| e.task == 1).unwrap();
    assert_eq!(exec.worker, 3);
}
