//! Online event streaming: incremental drains while producers emit.
//!
//! An [`EventStream`] wraps a shared [`Recorder`] and re-exposes its
//! event flow as an *ordered, resumable* stream. The recorder's own
//! `drain()` hands back whatever happens to be published, sorted — fine
//! at quiescence, but a live consumer polling mid-run would see gaps
//! (a lane's pop stalls at a slot another producer has claimed but not
//! yet published) and would have no way to know whether a missing
//! sequence number is *late* or *lost*. The stream resolves that with
//! two pieces of bookkeeping:
//!
//! - **A sequence watermark.** Because the recorder allocates the
//!   global sequence number inside the ring's slot claim, a dropped
//!   event never consumes one: the published sequence space is dense.
//!   The stream buffers out-of-order arrivals in a heap and releases
//!   exactly the contiguous run starting at its watermark — a missing
//!   number is always *late*, never lost, so strict `seq` order can be
//!   guaranteed without timeouts or generation tags.
//! - **A per-subscriber cursor.** Released events land in a bounded
//!   history window; each [`Subscriber`] remembers how far it has
//!   read. A subscriber that polls too rarely and falls out of the
//!   window doesn't corrupt anyone else's view — its next poll skips
//!   ahead and the skipped count is attributed to that subscriber's
//!   [`missed`](Subscriber::missed) counter, mirroring how the rings
//!   attribute producer-side drops.
//!
//! Producers are never blocked or slowed by any of this: the stream
//! only ever touches the consumer side of the rings (under the
//! recorder's existing drain mutex) and its own mutex, which no
//! emitting thread takes.
//!
//! The stream is the recorder's sole consumer from its first poll
//! onwards — it takes over `drain()`. Mixing direct `Recorder::drain`
//! calls with a live stream on the same recorder splits events
//! between the two consumers.

use crate::event::Event;
use crate::recorder::Recorder;
use crate::sync::lock_unpoisoned;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Arc, Mutex};

/// Default number of released events kept for lagging subscribers.
pub const DEFAULT_HISTORY: usize = 1 << 16;

/// Heap entry ordered by sequence number alone.
struct BySeq(Event);

impl PartialEq for BySeq {
    fn eq(&self, other: &BySeq) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for BySeq {}
impl PartialOrd for BySeq {
    fn partial_cmp(&self, other: &BySeq) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BySeq {
    fn cmp(&self, other: &BySeq) -> std::cmp::Ordering {
        self.0.seq.cmp(&other.0.seq)
    }
}

struct SubSlot {
    /// Next global release index this subscriber will read.
    cursor: u64,
    /// Released events this subscriber skipped because it lagged out
    /// of the history window.
    missed: u64,
}

struct StreamState {
    /// Out-of-order arrivals waiting for the watermark to reach them.
    pending: BinaryHeap<Reverse<BySeq>>,
    /// The next sequence number eligible for release.
    next_seq: u64,
    /// Released events, oldest first; index 0 is release number
    /// `released - history.len()`.
    history: VecDeque<Event>,
    history_cap: usize,
    /// Total events released into the history window, ever.
    released: u64,
    subs: Vec<Option<SubSlot>>,
}

/// A seq-ordered, multi-subscriber view over a [`Recorder`]'s lanes.
///
/// Cloning is cheap (the state is shared); independent consumers
/// should instead call [`subscribe`](EventStream::subscribe) so each
/// gets its own cursor.
#[derive(Clone)]
pub struct EventStream {
    rec: Arc<Recorder>,
    state: Arc<Mutex<StreamState>>,
}

/// A point-in-time summary of a stream's progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events released in strict sequence order so far.
    pub released: u64,
    /// Out-of-order arrivals buffered, waiting for earlier sequence
    /// numbers still in flight.
    pub pending: u64,
    /// Events the recorder's rings accepted (includes not-yet-drained).
    pub recorded: u64,
    /// Events the recorder's rings rejected (full lane).
    pub dropped: u64,
    /// Released events currently held for lagging subscribers.
    pub history_len: u64,
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("EventStream")
            .field("released", &s.released)
            .field("pending", &s.pending)
            .finish()
    }
}

impl EventStream {
    /// A stream over `rec` keeping [`DEFAULT_HISTORY`] released events
    /// for lagging subscribers.
    pub fn new(rec: Arc<Recorder>) -> EventStream {
        EventStream::with_history(rec, DEFAULT_HISTORY)
    }

    /// A stream with an explicit history window (minimum 1). A tiny
    /// window exercises the lag-attribution path.
    pub fn with_history(rec: Arc<Recorder>, history: usize) -> EventStream {
        EventStream {
            rec,
            state: Arc::new(Mutex::new(StreamState {
                pending: BinaryHeap::new(),
                next_seq: 0,
                history: VecDeque::new(),
                history_cap: history.max(1),
                released: 0,
                subs: Vec::new(),
            })),
        }
    }

    /// The recorder this stream consumes.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.rec
    }

    /// Register a new subscriber, positioned at the current release
    /// point (it will see only events released after this call).
    pub fn subscribe(&self) -> Subscriber {
        let mut st = lock_unpoisoned(&self.state);
        let cursor = st.released;
        let id = st.subs.iter().position(Option::is_none).unwrap_or_else(|| {
            st.subs.push(None);
            st.subs.len() - 1
        });
        st.subs[id] = Some(SubSlot { cursor, missed: 0 });
        Subscriber {
            stream: self.clone(),
            id,
        }
    }

    /// Drain the rings once and advance the watermark, releasing every
    /// newly contiguous event into the history window. Returns the
    /// number of events released by this call.
    pub fn pump(&self) -> usize {
        let batch = self.rec.drain();
        let mut st = lock_unpoisoned(&self.state);
        for ev in batch {
            st.pending.push(Reverse(BySeq(ev)));
        }
        let mut released = 0usize;
        while let Some(Reverse(BySeq(top))) = st.pending.peek() {
            if top.seq != st.next_seq {
                debug_assert!(
                    top.seq > st.next_seq,
                    "seq {} released twice (watermark {})",
                    top.seq,
                    st.next_seq
                );
                break;
            }
            let Reverse(BySeq(ev)) = st.pending.pop().unwrap();
            st.history.push_back(ev);
            st.next_seq += 1;
            st.released += 1;
            released += 1;
            while st.history.len() > st.history_cap {
                st.history.pop_front();
            }
        }
        released
    }

    /// Current stream progress (does not pump).
    pub fn stats(&self) -> StreamStats {
        let st = lock_unpoisoned(&self.state);
        StreamStats {
            released: st.released,
            pending: st.pending.len() as u64,
            recorded: self.rec.recorded(),
            dropped: self.rec.dropped(),
            history_len: st.history.len() as u64,
        }
    }
}

/// One consumer's cursor into an [`EventStream`].
///
/// Dropping a subscriber releases its slot; the stream and other
/// subscribers are unaffected.
pub struct Subscriber {
    stream: EventStream,
    id: usize,
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("id", &self.id)
            .field("missed", &self.missed())
            .finish()
    }
}

impl Subscriber {
    /// Pump the stream, then return every event released since this
    /// subscriber's last poll, in strict sequence order. If the
    /// subscriber lagged out of the history window, the skipped events
    /// are added to [`missed`](Subscriber::missed) and the poll
    /// resumes from the oldest retained event.
    pub fn poll(&mut self) -> Vec<Event> {
        self.stream.pump();
        let mut st = lock_unpoisoned(&self.stream.state);
        let history_start = st.released - st.history.len() as u64;
        let released = st.released;
        let slot = st.subs[self.id].as_mut().expect("live subscriber slot");
        if slot.cursor < history_start {
            slot.missed += history_start - slot.cursor;
            slot.cursor = history_start;
        }
        let offset = (slot.cursor - history_start) as usize;
        slot.cursor = released;
        let out: Vec<Event> = st.history.iter().skip(offset).copied().collect();
        out
    }

    /// Released events this subscriber never saw because it polled too
    /// rarely for the stream's history window.
    pub fn missed(&self) -> u64 {
        let st = lock_unpoisoned(&self.stream.state);
        st.subs[self.id].as_ref().map_or(0, |s| s.missed)
    }

    /// The stream this subscriber reads from.
    pub fn stream(&self) -> &EventStream {
        &self.stream
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        if let Ok(mut st) = self.stream.state.lock() {
            st.subs[self.id] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NO_SHARD};

    #[test]
    fn single_subscriber_sees_everything_in_order() {
        let rec = Arc::new(Recorder::with_capacity(2, 64));
        let stream = EventStream::new(Arc::clone(&rec));
        let mut sub = stream.subscribe();
        for t in 0..10 {
            rec.emit(EventKind::Submitted, t, NO_SHARD);
        }
        let a = sub.poll();
        for t in 10..20 {
            rec.emit(EventKind::Submitted, t, NO_SHARD);
        }
        let b = sub.poll();
        let all: Vec<u64> = a.iter().chain(b.iter()).map(|e| e.seq).collect();
        assert_eq!(all, (0..20).collect::<Vec<u64>>());
        assert_eq!(sub.missed(), 0);
        assert!(sub.poll().is_empty());
    }

    #[test]
    fn two_subscribers_have_independent_cursors() {
        let rec = Arc::new(Recorder::with_capacity(2, 64));
        let stream = EventStream::new(Arc::clone(&rec));
        let mut fast = stream.subscribe();
        let mut slow = stream.subscribe();
        for t in 0..5 {
            rec.emit(EventKind::Ready, t, NO_SHARD);
        }
        assert_eq!(fast.poll().len(), 5);
        for t in 5..8 {
            rec.emit(EventKind::Ready, t, NO_SHARD);
        }
        assert_eq!(fast.poll().len(), 3);
        // The slow subscriber still gets the full run.
        assert_eq!(slow.poll().len(), 8);
    }

    #[test]
    fn lagging_subscriber_gets_missed_attribution() {
        let rec = Arc::new(Recorder::with_capacity(1, 1024));
        let stream = EventStream::with_history(Arc::clone(&rec), 4);
        let mut lagger = stream.subscribe();
        for t in 0..20 {
            rec.emit(EventKind::Ready, t, NO_SHARD);
        }
        stream.pump();
        let got = lagger.poll();
        // Only the window survives; the rest is attributed, not silent.
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].seq, 16);
        assert_eq!(lagger.missed(), 16);
        assert_eq!(got.len() as u64 + lagger.missed(), 20);
    }

    #[test]
    fn late_subscriber_starts_at_the_release_point() {
        let rec = Arc::new(Recorder::with_capacity(1, 64));
        let stream = EventStream::new(Arc::clone(&rec));
        for t in 0..6 {
            rec.emit(EventKind::Ready, t, NO_SHARD);
        }
        stream.pump();
        let mut late = stream.subscribe();
        assert!(late.poll().is_empty());
        rec.emit(EventKind::Ready, 6, NO_SHARD);
        let got = late.poll();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 6);
    }

    #[test]
    fn dropped_events_do_not_stall_the_watermark() {
        // One tiny lane: pushes past capacity are dropped. With
        // seq-after-claim the drops consume no sequence numbers, so
        // the stream still releases a dense prefix.
        let rec = Arc::new(Recorder::with_capacity(1, 8));
        let stream = EventStream::new(Arc::clone(&rec));
        let mut sub = stream.subscribe();
        for t in 0..50 {
            rec.emit(EventKind::Ready, t, NO_SHARD);
        }
        let first = sub.poll();
        assert_eq!(first.len(), 8);
        assert_eq!(
            first.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..8).collect::<Vec<u64>>()
        );
        assert_eq!(rec.dropped(), 42);
        // The ring drained: new emissions flow and stay contiguous.
        for t in 50..55 {
            rec.emit(EventKind::Ready, t, NO_SHARD);
        }
        let second = sub.poll();
        assert_eq!(
            second.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (8..13).collect::<Vec<u64>>()
        );
        let stats = stream.stats();
        assert_eq!(stats.released, 13);
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.recorded, 13);
    }

    #[test]
    fn subscriber_drop_frees_its_slot() {
        let rec = Arc::new(Recorder::with_capacity(1, 64));
        let stream = EventStream::new(Arc::clone(&rec));
        let a = stream.subscribe();
        drop(a);
        let b = stream.subscribe();
        // Slot is recycled, not leaked.
        assert_eq!(b.id, 0);
    }
}
