//! The live task-graph tracker: a queryable state machine fed by the
//! event stream.
//!
//! TEMANEJO-style introspection (arXiv:1112.4604) watches a StarSs run
//! as a graph whose nodes change color while the run is in flight.
//! [`GraphTracker`] is that view for this runtime: it consumes
//! lifecycle events *online* (typically from a
//! [`Subscriber`](crate::Subscriber), via the background
//! [`Collector`](crate::Collector)) and maintains, incrementally:
//!
//! - each task's current [`TaskState`] and the live population count
//!   per state,
//! - the realized wake-edge set `(waker, woken)` as it is discovered,
//! - per-shard in-flight and per-worker running counts,
//! - online [`LogHistogram`]s for the four stage latencies
//!   (submit→ready, ready→start, start→done, done→finish),
//! - an **illegal-transition detector**: the per-task emission order
//!   the differential tests assert offline becomes a runtime
//!   invariant checked on every event.
//!
//! The transition table mirrors the emission sites exactly. `Stalled`
//! covers both blocking flavors — a capacity park before the
//! dependence check (leaves via `Resumed`) and the wait for
//! dependences after `DepCheckDone` (leaves via `Ready`); instantly
//! ready tasks pass through it in the same event. `Stalled`/`Resumed`
//! events with `task == NO_TASK` are idle *worker* parks and feed the
//! idle-worker gauge instead of any task's state.
//!
//! ```text
//!  Submitted ──DepCheckStart──► Checking ──DepCheckDone──► Stalled
//!    ▲  │Stalled(capacity)                                   │Ready
//!    │  ▼                                                    ▼
//!    └─Stalled ◄──Resumed                                  Ready ⟲ WakePosted /
//!                                                            │      WakeDelivered /
//!                                                  ExecStart │      Stolen
//!                                                            ▼
//!                              Finished ◄──Finished── Retiring ◄──ExecDone── Running
//! ```
//!
//! A violation (an event whose kind is not legal from the task's
//! current state) is counted, the first few are kept with context,
//! and the task is *resynced* to the event's natural destination
//! state so one anomaly doesn't cascade into a violation per
//! subsequent event. Note that ring drops manufacture apparent
//! violations (the tracker can't see an event that was never
//! recorded) — check [`Recorder::dropped`](crate::Recorder::dropped)
//! before reading violations as runtime bugs.

use crate::event::{Event, EventKind, NO_TASK, NO_WORKER};
use crate::hist::LogHistogram;
use std::collections::{BTreeMap, BTreeSet};

/// Where a task currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskState {
    /// Accepted by the runtime; dependence check not started.
    Submitted,
    /// Dependence check in progress.
    Checking,
    /// Blocked: parked on shard capacity, or waiting for dependences.
    Stalled,
    /// Dependences satisfied; queued (or being woken/stolen).
    Ready,
    /// A worker is executing the body.
    Running,
    /// Body returned; dependence tables not yet updated.
    Retiring,
    /// Fully retired.
    Finished,
}

impl TaskState {
    /// Every state, in lifecycle order.
    pub const ALL: [TaskState; 7] = [
        TaskState::Submitted,
        TaskState::Checking,
        TaskState::Stalled,
        TaskState::Ready,
        TaskState::Running,
        TaskState::Retiring,
        TaskState::Finished,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskState::Submitted => "Submitted",
            TaskState::Checking => "Checking",
            TaskState::Stalled => "Stalled",
            TaskState::Ready => "Ready",
            TaskState::Running => "Running",
            TaskState::Retiring => "Retiring",
            TaskState::Finished => "Finished",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One illegal transition the tracker observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Sequence number of the offending event.
    pub seq: u64,
    /// The task involved.
    pub task: u64,
    /// The event kind that was not legal.
    pub kind: EventKind,
    /// The state the task was in (`None` = never seen before).
    pub from: Option<TaskState>,
}

/// How many violations are kept with full context (the count in
/// [`TrackerSnapshot::violations`] is never capped).
pub const MAX_KEPT_VIOLATIONS: usize = 32;

/// "This stage timestamp was never observed" (its event was dropped
/// or the tracker attached mid-run) — the stage sample is skipped
/// rather than computed against a bogus origin.
const TS_UNSET: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct TaskInfo {
    state: TaskState,
    shard: u32,
    worker: u32,
    submitted_ts: u64,
    ready_ts: u64,
    start_ts: u64,
    done_ts: u64,
}

/// Mean and histogram quantiles for one lifecycle stage, derived
/// online (quantiles are log-bucket bounds — see [`LogHistogram`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Completed samples.
    pub count: u64,
    /// Mean nanoseconds.
    pub mean_ns: f64,
    /// Median (bucket-bound resolution).
    pub p50_ns: u64,
    /// 90th percentile (bucket-bound resolution).
    pub p90_ns: u64,
    /// 99th percentile (bucket-bound resolution).
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

impl StageStats {
    fn from_hist(h: &LogHistogram) -> StageStats {
        StageStats {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.p50(),
            p90_ns: h.p90(),
            p99_ns: h.p99(),
            max_ns: h.max(),
        }
    }
}

/// A cheap point-in-time copy of the tracker's aggregates, safe to
/// render while the collector keeps applying events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackerSnapshot {
    /// Events applied so far.
    pub events_applied: u64,
    /// Distinct tasks seen.
    pub tasks_seen: u64,
    /// Live population per state, indexed like [`TaskState::ALL`].
    pub state_counts: [u64; 7],
    /// Realized wake edges discovered so far.
    pub edges: u64,
    /// Total illegal transitions observed.
    pub violations: u64,
    /// Workers currently parked idle.
    pub idle_parked: u64,
    /// Total idle park episodes.
    pub idle_park_episodes: u64,
    /// `(shard, tasks in flight)` for every shard seen (the
    /// [`NO_SHARD`](crate::NO_SHARD) row aggregates shardless events).
    pub per_shard_inflight: Vec<(u32, u64)>,
    /// `(worker, tasks running)` for every worker seen executing.
    pub per_worker_running: Vec<(u32, u64)>,
    /// Submission until the dependence count hit zero.
    pub submit_to_ready: StageStats,
    /// Ready until a worker picked the task up.
    pub ready_to_start: StageStats,
    /// Body execution time.
    pub start_to_done: StageStats,
    /// Body return until the dependence tables retired the task.
    pub done_to_finish: StageStats,
}

impl TrackerSnapshot {
    /// Live population of one state.
    pub fn count(&self, s: TaskState) -> u64 {
        self.state_counts[s.index()]
    }

    /// Tasks in intermediate states (submitted but not finished).
    pub fn in_flight(&self) -> u64 {
        self.tasks_seen - self.count(TaskState::Finished)
    }
}

/// The live task-graph state machine. See the module docs for the
/// transition table.
#[derive(Default)]
pub struct GraphTracker {
    tasks: BTreeMap<u64, TaskInfo>,
    state_counts: [u64; 7],
    edges: BTreeSet<(u64, u64)>,
    violations: u64,
    kept_violations: Vec<Violation>,
    idle_parked: u64,
    idle_park_episodes: u64,
    per_shard_inflight: BTreeMap<u32, u64>,
    per_worker_running: BTreeMap<u32, u64>,
    submit_to_ready: LogHistogram,
    ready_to_start: LogHistogram,
    start_to_done: LogHistogram,
    done_to_finish: LogHistogram,
    events_applied: u64,
}

impl std::fmt::Debug for GraphTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphTracker")
            .field("tasks", &self.tasks.len())
            .field("events_applied", &self.events_applied)
            .field("violations", &self.violations)
            .finish()
    }
}

/// The destination state for a legal application of `kind` — also the
/// resync target after a violation.
fn destination(kind: EventKind) -> TaskState {
    match kind {
        EventKind::Submitted | EventKind::Resumed => TaskState::Submitted,
        EventKind::DepCheckStart => TaskState::Checking,
        EventKind::DepCheckDone | EventKind::Stalled => TaskState::Stalled,
        EventKind::Ready | EventKind::WakePosted | EventKind::WakeDelivered | EventKind::Stolen => {
            TaskState::Ready
        }
        EventKind::ExecStart => TaskState::Running,
        EventKind::ExecDone => TaskState::Retiring,
        EventKind::Finished => TaskState::Finished,
    }
}

/// Is `kind` legal from `from`? (`None` = task never seen.)
fn legal(from: Option<TaskState>, kind: EventKind) -> bool {
    use EventKind as K;
    use TaskState as S;
    matches!(
        (from, kind),
        (None, K::Submitted)
            | (Some(S::Submitted), K::Stalled | K::DepCheckStart)
            | (Some(S::Stalled), K::Resumed | K::Ready)
            | (Some(S::Checking), K::DepCheckDone)
            | (
                Some(S::Ready),
                K::WakePosted | K::WakeDelivered | K::Stolen | K::ExecStart
            )
            | (Some(S::Running), K::ExecDone)
            | (Some(S::Retiring), K::Finished)
    )
}

impl GraphTracker {
    /// An empty tracker.
    pub fn new() -> GraphTracker {
        GraphTracker::default()
    }

    /// Apply one event.
    pub fn apply(&mut self, e: &Event) {
        self.events_applied += 1;
        if e.task == NO_TASK {
            // Idle worker parks (and any other taskless events).
            match e.kind {
                EventKind::Stalled => {
                    self.idle_parked += 1;
                    self.idle_park_episodes += 1;
                }
                EventKind::Resumed => self.idle_parked = self.idle_parked.saturating_sub(1),
                _ => {}
            }
            return;
        }
        if e.kind == EventKind::Ready && e.aux != NO_TASK {
            self.edges.insert((e.aux, e.task));
        }
        let prev = self.tasks.get(&e.task).copied();
        if !legal(prev.map(|t| t.state), e.kind) {
            self.violations += 1;
            if self.kept_violations.len() < MAX_KEPT_VIOLATIONS {
                self.kept_violations.push(Violation {
                    seq: e.seq,
                    task: e.task,
                    kind: e.kind,
                    from: prev.map(|t| t.state),
                });
            }
        }
        let dest = destination(e.kind);
        let mut info = prev.unwrap_or(TaskInfo {
            state: dest,
            shard: e.shard,
            worker: NO_WORKER,
            submitted_ts: TS_UNSET,
            ready_ts: TS_UNSET,
            start_ts: TS_UNSET,
            done_ts: TS_UNSET,
        });
        match prev {
            Some(t) => self.state_counts[t.state.index()] -= 1,
            None => {
                // First sighting: this shard owns the task's in-flight
                // accounting until it finishes.
                info.shard = e.shard;
                *self.per_shard_inflight.entry(e.shard).or_insert(0) += 1;
            }
        }
        info.state = dest;
        self.state_counts[dest.index()] += 1;
        match e.kind {
            EventKind::Submitted => info.submitted_ts = e.ts_ns,
            EventKind::Ready => {
                info.ready_ts = e.ts_ns;
                if info.submitted_ts != TS_UNSET {
                    self.submit_to_ready
                        .record(e.ts_ns.saturating_sub(info.submitted_ts));
                }
            }
            EventKind::ExecStart => {
                info.start_ts = e.ts_ns;
                if e.worker != NO_WORKER {
                    info.worker = e.worker;
                    *self.per_worker_running.entry(e.worker).or_insert(0) += 1;
                }
                if info.ready_ts != TS_UNSET {
                    self.ready_to_start
                        .record(e.ts_ns.saturating_sub(info.ready_ts));
                }
            }
            EventKind::ExecDone => {
                info.done_ts = e.ts_ns;
                if info.worker != NO_WORKER {
                    if let Some(c) = self.per_worker_running.get_mut(&info.worker) {
                        *c = c.saturating_sub(1);
                    }
                }
                if info.start_ts != TS_UNSET {
                    self.start_to_done
                        .record(e.ts_ns.saturating_sub(info.start_ts));
                }
            }
            EventKind::Finished => {
                if let Some(c) = self.per_shard_inflight.get_mut(&info.shard) {
                    *c = c.saturating_sub(1);
                }
                if info.done_ts != TS_UNSET {
                    self.done_to_finish
                        .record(e.ts_ns.saturating_sub(info.done_ts));
                }
            }
            _ => {}
        }
        self.tasks.insert(e.task, info);
    }

    /// Apply a batch (a [`Subscriber::poll`](crate::Subscriber::poll)
    /// result).
    pub fn apply_batch(&mut self, events: &[Event]) {
        for e in events {
            self.apply(e);
        }
    }

    /// The current state of one task, if it has been seen.
    pub fn state_of(&self, task: u64) -> Option<TaskState> {
        self.tasks.get(&task).map(|t| t.state)
    }

    /// Live population of one state.
    pub fn count(&self, s: TaskState) -> u64 {
        self.state_counts[s.index()]
    }

    /// The realized wake edges discovered so far, `(waker, woken)`.
    pub fn edges(&self) -> &BTreeSet<(u64, u64)> {
        &self.edges
    }

    /// Total illegal transitions observed.
    pub fn violation_count(&self) -> u64 {
        self.violations
    }

    /// The first [`MAX_KEPT_VIOLATIONS`] violations, with context.
    pub fn violations(&self) -> &[Violation] {
        &self.kept_violations
    }

    /// Cheap copy of every aggregate for rendering.
    pub fn snapshot(&self) -> TrackerSnapshot {
        TrackerSnapshot {
            events_applied: self.events_applied,
            tasks_seen: self.tasks.len() as u64,
            state_counts: self.state_counts,
            edges: self.edges.len() as u64,
            violations: self.violations,
            idle_parked: self.idle_parked,
            idle_park_episodes: self.idle_park_episodes,
            per_shard_inflight: self
                .per_shard_inflight
                .iter()
                .map(|(&s, &c)| (s, c))
                .collect(),
            per_worker_running: self
                .per_worker_running
                .iter()
                .map(|(&w, &c)| (w, c))
                .collect(),
            submit_to_ready: StageStats::from_hist(&self.submit_to_ready),
            ready_to_start: StageStats::from_hist(&self.ready_to_start),
            start_to_done: StageStats::from_hist(&self.start_to_done),
            done_to_finish: StageStats::from_hist(&self.done_to_finish),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_SHARD;

    fn ev(seq: u64, kind: EventKind, task: u64, aux: u64, ts_ns: u64) -> Event {
        Event {
            seq,
            kind,
            task,
            aux,
            shard: 0,
            worker: 1,
            ts_ns,
        }
    }

    fn full_life(task: u64, waker: u64, base: u64) -> Vec<Event> {
        vec![
            ev(base, EventKind::Submitted, task, NO_TASK, base * 10),
            ev(base + 1, EventKind::DepCheckStart, task, NO_TASK, 0),
            ev(base + 2, EventKind::DepCheckDone, task, NO_TASK, 0),
            ev(base + 3, EventKind::Ready, task, waker, base * 10 + 5),
            ev(base + 4, EventKind::ExecStart, task, NO_TASK, base * 10 + 9),
            ev(base + 5, EventKind::ExecDone, task, NO_TASK, base * 10 + 29),
            ev(base + 6, EventKind::Finished, task, NO_TASK, base * 10 + 30),
        ]
    }

    #[test]
    fn clean_lifecycle_has_no_violations() {
        let mut t = GraphTracker::new();
        t.apply_batch(&full_life(1, NO_TASK, 0));
        t.apply_batch(&full_life(2, 1, 100));
        assert_eq!(t.violation_count(), 0);
        assert_eq!(t.count(TaskState::Finished), 2);
        assert_eq!(t.state_of(1), Some(TaskState::Finished));
        assert_eq!(t.edges().iter().copied().collect::<Vec<_>>(), vec![(1, 2)]);
        let s = t.snapshot();
        assert_eq!(s.tasks_seen, 2);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.start_to_done.count, 2);
        assert_eq!(s.start_to_done.max_ns, 20);
    }

    #[test]
    fn intermediate_states_are_live() {
        let mut t = GraphTracker::new();
        let life = full_life(7, NO_TASK, 0);
        t.apply_batch(&life[..5]); // through ExecStart
        assert_eq!(t.state_of(7), Some(TaskState::Running));
        assert_eq!(t.count(TaskState::Running), 1);
        assert_eq!(t.snapshot().in_flight(), 1);
        t.apply_batch(&life[5..]);
        assert_eq!(t.count(TaskState::Running), 0);
        assert_eq!(t.count(TaskState::Finished), 1);
    }

    #[test]
    fn capacity_stall_round_trips() {
        let mut t = GraphTracker::new();
        t.apply(&ev(0, EventKind::Submitted, 1, NO_TASK, 0));
        t.apply(&ev(1, EventKind::Stalled, 1, NO_TASK, 5));
        assert_eq!(t.state_of(1), Some(TaskState::Stalled));
        t.apply(&ev(2, EventKind::Resumed, 1, NO_TASK, 9));
        assert_eq!(t.state_of(1), Some(TaskState::Submitted));
        assert_eq!(t.violation_count(), 0);
    }

    #[test]
    fn wake_and_steal_keep_ready() {
        let mut t = GraphTracker::new();
        t.apply(&ev(0, EventKind::Submitted, 1, NO_TASK, 0));
        t.apply(&ev(1, EventKind::DepCheckStart, 1, NO_TASK, 0));
        t.apply(&ev(2, EventKind::DepCheckDone, 1, NO_TASK, 0));
        t.apply(&ev(3, EventKind::Ready, 1, 9, 0));
        t.apply(&ev(4, EventKind::WakePosted, 1, 9, 0));
        t.apply(&ev(5, EventKind::WakeDelivered, 1, NO_TASK, 0));
        t.apply(&ev(6, EventKind::Stolen, 1, NO_TASK, 0));
        assert_eq!(t.state_of(1), Some(TaskState::Ready));
        assert_eq!(t.violation_count(), 0);
        assert!(t.edges().contains(&(9, 1)));
    }

    #[test]
    fn illegal_transition_is_detected_and_resynced() {
        let mut t = GraphTracker::new();
        // ExecStart with no prior history: illegal, then resynced.
        t.apply(&ev(0, EventKind::ExecStart, 5, NO_TASK, 0));
        assert_eq!(t.violation_count(), 1);
        assert_eq!(t.state_of(5), Some(TaskState::Running));
        let v = t.violations()[0];
        assert_eq!(v.task, 5);
        assert_eq!(v.kind, EventKind::ExecStart);
        assert_eq!(v.from, None);
        // After resync the rest of the life is legal again.
        t.apply(&ev(1, EventKind::ExecDone, 5, NO_TASK, 0));
        t.apply(&ev(2, EventKind::Finished, 5, NO_TASK, 0));
        assert_eq!(t.violation_count(), 1);
    }

    #[test]
    fn idle_parks_feed_the_worker_gauge_not_tasks() {
        let mut t = GraphTracker::new();
        let park = Event {
            seq: 0,
            kind: EventKind::Stalled,
            task: NO_TASK,
            aux: NO_TASK,
            shard: NO_SHARD,
            worker: 3,
            ts_ns: 0,
        };
        t.apply(&park);
        assert_eq!(t.snapshot().idle_parked, 1);
        assert_eq!(t.snapshot().tasks_seen, 0);
        let resume = Event {
            kind: EventKind::Resumed,
            seq: 1,
            ..park
        };
        t.apply(&resume);
        assert_eq!(t.snapshot().idle_parked, 0);
        assert_eq!(t.snapshot().idle_park_episodes, 1);
        assert_eq!(t.violation_count(), 0);
    }

    #[test]
    fn per_worker_and_per_shard_gauges_track_live_population() {
        let mut t = GraphTracker::new();
        t.apply(&ev(0, EventKind::Submitted, 1, NO_TASK, 0));
        t.apply(&ev(1, EventKind::DepCheckStart, 1, NO_TASK, 0));
        t.apply(&ev(2, EventKind::DepCheckDone, 1, NO_TASK, 0));
        t.apply(&ev(3, EventKind::Ready, 1, NO_TASK, 0));
        t.apply(&ev(4, EventKind::ExecStart, 1, NO_TASK, 0));
        let s = t.snapshot();
        assert_eq!(s.per_shard_inflight, vec![(0, 1)]);
        assert_eq!(s.per_worker_running, vec![(1, 1)]);
        t.apply(&ev(5, EventKind::ExecDone, 1, NO_TASK, 0));
        t.apply(&ev(6, EventKind::Finished, 1, NO_TASK, 0));
        let s = t.snapshot();
        assert_eq!(s.per_shard_inflight, vec![(0, 0)]);
        assert_eq!(s.per_worker_running, vec![(1, 0)]);
    }
}
