//! Text dashboard rendering for `repro -- watch`.
//!
//! Pure functions from online-observability state
//! ([`TrackerSnapshot`], sampler rates, [`StreamStats`]) to a text
//! frame — no I/O, no timers, so the renderer is unit-testable and the
//! driver (in `nexuspp-bench`) owns all terminal concerns (ANSI clear
//! vs. plain append, frame pacing, duration bounds).

use crate::stream::StreamStats;
use crate::tracker::{StageStats, TaskState, TrackerSnapshot};

/// Human-scale nanoseconds: `532ns`, `1.4us`, `12.0ms`, `3.1s`.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.1}s", ns as f64 / 1e9),
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.2}M/s", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k/s", r / 1e3)
    } else {
        format!("{r:.0}/s")
    }
}

fn stage_row(out: &mut String, name: &str, s: &StageStats) {
    out.push_str(&format!(
        "  {name:<15} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
        s.count,
        fmt_ns(s.p50_ns),
        fmt_ns(s.p90_ns),
        fmt_ns(s.p99_ns),
        fmt_ns(s.max_ns),
    ));
}

/// Render one dashboard frame.
///
/// `frame` is a running frame counter, `rates` the sampler's
/// [`rates`](crate::Sampler::rates) output (empty slice before two
/// samples exist).
pub fn render_dashboard(
    frame: u64,
    snap: &TrackerSnapshot,
    rates: &[(String, f64)],
    stats: &StreamStats,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== nexus++ live == frame {frame} | events {} released, {} pending, {} dropped\n",
        stats.released, stats.pending, stats.dropped
    ));
    out.push_str(&format!(
        "   tasks {} seen, {} in flight | wake edges {} | idle workers {} | violations {}\n",
        snap.tasks_seen,
        snap.in_flight(),
        snap.edges,
        snap.idle_parked,
        snap.violations,
    ));

    out.push_str("  state       live\n");
    for s in TaskState::ALL {
        out.push_str(&format!("  {:<10} {:>6}\n", s.name(), snap.count(s)));
    }

    out.push_str("  stage             count       p50       p90       p99       max\n");
    stage_row(&mut out, "submit->ready", &snap.submit_to_ready);
    stage_row(&mut out, "ready->start", &snap.ready_to_start);
    stage_row(&mut out, "start->done", &snap.start_to_done);
    stage_row(&mut out, "done->finish", &snap.done_to_finish);

    if !snap.per_shard_inflight.is_empty() {
        out.push_str("  shard in-flight:");
        for (s, c) in &snap.per_shard_inflight {
            if *s == crate::event::NO_SHARD {
                out.push_str(&format!(" -:{c}"));
            } else {
                out.push_str(&format!(" {s}:{c}"));
            }
        }
        out.push('\n');
    }
    if !snap.per_worker_running.is_empty() {
        out.push_str("  worker running: ");
        for (w, c) in &snap.per_worker_running {
            out.push_str(&format!(" {w}:{c}"));
        }
        out.push('\n');
    }

    // Rates: show the busiest counters first, drop the zeros.
    let mut busy: Vec<&(String, f64)> = rates.iter().filter(|(_, r)| *r > 0.0).collect();
    busy.sort_by(|a, b| b.1.total_cmp(&a.1));
    if !busy.is_empty() {
        out.push_str("  rates:");
        for (name, r) in busy.iter().take(6) {
            out.push_str(&format!(" {name} {}", fmt_rate(*r)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_000_000), "2.0ms");
        assert_eq!(fmt_ns(3_100_000_000), "3.1s");
    }

    #[test]
    fn dashboard_renders_every_state_and_stage() {
        let mut state_counts = [0u64; 7];
        state_counts[TaskState::Running as usize] = 3;
        let snap = TrackerSnapshot {
            tasks_seen: 10,
            state_counts,
            per_shard_inflight: vec![(0, 2), (crate::event::NO_SHARD, 1)],
            per_worker_running: vec![(0, 1), (1, 2)],
            ..TrackerSnapshot::default()
        };
        let rates = vec![
            ("tasks.completed".to_string(), 1234.0),
            ("idle.zero".to_string(), 0.0),
        ];
        let stats = StreamStats {
            released: 50,
            pending: 2,
            recorded: 52,
            dropped: 0,
            history_len: 50,
        };
        let frame = render_dashboard(7, &snap, &rates, &stats);
        for s in TaskState::ALL {
            assert!(frame.contains(s.name()), "missing {}", s.name());
        }
        for stage in [
            "submit->ready",
            "ready->start",
            "start->done",
            "done->finish",
        ] {
            assert!(frame.contains(stage), "missing {stage}");
        }
        assert!(frame.contains("frame 7"));
        assert!(frame.contains("50 released"));
        assert!(frame.contains("tasks.completed 1.2k/s"));
        assert!(!frame.contains("idle.zero"));
        assert!(frame.contains(" -:1"), "NO_SHARD row renders as '-'");
    }
}
