//! The background [`Collector`]: one thread that keeps the online view
//! current while a run is in flight.
//!
//! The streaming pieces are all pull-based — someone has to pump the
//! [`EventStream`], feed the [`GraphTracker`], and tick the
//! [`Sampler`]. The collector is that someone: a single background
//! thread polling on a fixed interval, so the runtimes' hot paths keep
//! their PR 7 guarantees untouched (producers only ever CAS into their
//! lanes; the collector only ever takes the consumer side). Runtimes
//! attach via `Runtime::with_observer`/`ShardedRuntime::with_observer`,
//! which hands the collector's recorder to every layer and registers
//! the runtime's metrics for sampling.
//!
//! Shutdown is a handshake, not a guess: [`finish`](Collector::finish)
//! raises the stop flag, the thread performs one *final* poll after
//! seeing it (so everything emitted before `finish` was called is
//! applied — the differential tests rely on this being a complete
//! quiescent drain), and the joined thread's tracker is handed back
//! by value in the [`CollectorReport`].

use crate::recorder::Recorder;
use crate::registry::MetricsRegistry;
use crate::sampler::Sampler;
use crate::stream::{EventStream, StreamStats, DEFAULT_HISTORY};
use crate::sync::{into_inner_unpoisoned, lock_unpoisoned};
use crate::tracker::{GraphTracker, TrackerSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tuning knobs for [`Collector::spawn`].
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Poll/sample interval.
    pub interval: Duration,
    /// Event-stream history window (see
    /// [`EventStream::with_history`]).
    pub history: usize,
    /// Metrics snapshots retained by the sampler.
    pub samples: usize,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            interval: Duration::from_millis(2),
            history: DEFAULT_HISTORY,
            samples: 256,
        }
    }
}

struct Inner {
    tracker: Mutex<GraphTracker>,
    sampler: Mutex<Option<Sampler>>,
    missed: AtomicU64,
    stop: Mutex<bool>,
    cv: Condvar,
}

impl Inner {
    fn empty() -> Inner {
        Inner {
            tracker: Mutex::new(GraphTracker::new()),
            sampler: Mutex::new(None),
            missed: AtomicU64::new(0),
            stop: Mutex::new(true),
            cv: Condvar::new(),
        }
    }
}

/// What the collector hands back at [`Collector::finish`].
pub struct CollectorReport {
    /// The tracker, final state applied, moved out of the thread.
    pub tracker: GraphTracker,
    /// The sampler, if a registry was attached.
    pub sampler: Option<Sampler>,
    /// Final stream progress.
    pub stream: StreamStats,
    /// Events the collector's subscriber lagged past (0 unless the
    /// history window was overrun between polls).
    pub missed: u64,
}

/// A handle to the background collection thread.
pub struct Collector {
    stream: EventStream,
    inner: Arc<Inner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("stream", &self.stream)
            .finish()
    }
}

impl Collector {
    /// Spawn the collection thread over `rec` with default tuning.
    pub fn new(rec: Arc<Recorder>) -> Collector {
        Collector::spawn(rec, CollectorConfig::default())
    }

    /// Spawn the collection thread over `rec`.
    pub fn spawn(rec: Arc<Recorder>, cfg: CollectorConfig) -> Collector {
        let stream = EventStream::with_history(rec, cfg.history);
        let inner = Arc::new(Inner {
            stop: Mutex::new(false),
            ..Inner::empty()
        });
        let thread_inner = Arc::clone(&inner);
        let mut sub = stream.subscribe();
        let interval = cfg.interval;
        let handle = std::thread::Builder::new()
            .name("obs-collector".into())
            .spawn(move || loop {
                let stopping = {
                    let stop = lock_unpoisoned(&thread_inner.stop);
                    if *stop {
                        true
                    } else {
                        // Interval pacing with prompt shutdown: the
                        // finish() notify cuts the wait short.
                        let (stop, _) = thread_inner
                            .cv
                            .wait_timeout(stop, interval)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *stop
                    }
                };
                let batch = sub.poll();
                lock_unpoisoned(&thread_inner.tracker).apply_batch(&batch);
                thread_inner.missed.store(sub.missed(), Ordering::Relaxed);
                if let Some(s) = lock_unpoisoned(&thread_inner.sampler).as_mut() {
                    s.tick();
                }
                if stopping {
                    // The stop flag was observed *before* this poll, so
                    // the batch above already covered everything
                    // emitted before finish() — quiescent drain done.
                    return;
                }
            })
            .expect("spawn obs-collector thread");
        Collector {
            stream,
            inner,
            handle: Some(handle),
        }
    }

    /// The recorder runtimes should emit into.
    pub fn recorder(&self) -> Arc<Recorder> {
        Arc::clone(self.stream.recorder())
    }

    /// The stream the collector consumes (for stats; subscribing a
    /// second consumer is fine — cursors are independent).
    pub fn stream(&self) -> &EventStream {
        &self.stream
    }

    /// Start sampling `reg` on the collector's interval (replaces any
    /// previously attached registry). Called by `with_observer` once
    /// the runtime's counters exist.
    pub fn attach_registry(&self, reg: Arc<MetricsRegistry>) {
        let cap = {
            let cur = lock_unpoisoned(&self.inner.sampler);
            cur.as_ref().map(|s| s.len().max(2)).unwrap_or(256)
        };
        *lock_unpoisoned(&self.inner.sampler) = Some(Sampler::new(reg, cap));
    }

    /// A point-in-time copy of the live tracker aggregates.
    pub fn tracker(&self) -> TrackerSnapshot {
        lock_unpoisoned(&self.inner.tracker).snapshot()
    }

    /// Run `f` against the live sampler, if a registry is attached.
    pub fn with_sampler<R>(&self, f: impl FnOnce(&Sampler) -> R) -> Option<R> {
        lock_unpoisoned(&self.inner.sampler).as_ref().map(f)
    }

    /// Current stream progress.
    pub fn stats(&self) -> StreamStats {
        self.stream.stats()
    }

    /// Stop the thread, apply everything emitted so far, and hand the
    /// final state back. Call after the runtime has quiesced (joined)
    /// for a complete view.
    pub fn finish(mut self) -> CollectorReport {
        self.stop_and_join();
        // Swap the shared state out (Collector has a Drop impl, so
        // fields can't be moved directly); the joined thread already
        // dropped the only other owner.
        let inner = std::mem::replace(&mut self.inner, Arc::new(Inner::empty()));
        let inner = Arc::try_unwrap(inner)
            .unwrap_or_else(|_| panic!("collector Inner has exactly two owners"));
        CollectorReport {
            tracker: into_inner_unpoisoned(inner.tracker),
            sampler: into_inner_unpoisoned(inner.sampler),
            stream: self.stream.stats(),
            missed: inner.missed.into_inner(),
        }
    }

    fn stop_and_join(&mut self) {
        if let Some(h) = self.handle.take() {
            *lock_unpoisoned(&self.inner.stop) = true;
            self.inner.cv.notify_all();
            let _ = h.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NO_SHARD};

    #[test]
    fn collector_applies_everything_emitted_before_finish() {
        let rec = Arc::new(Recorder::with_capacity(2, 1 << 12));
        let col = Collector::spawn(
            Arc::clone(&rec),
            CollectorConfig {
                interval: Duration::from_millis(1),
                ..CollectorConfig::default()
            },
        );
        for t in 0..200u64 {
            rec.emit(EventKind::Submitted, t, NO_SHARD);
            rec.emit(EventKind::DepCheckStart, t, NO_SHARD);
            rec.emit(EventKind::DepCheckDone, t, NO_SHARD);
            rec.emit(EventKind::Ready, t, NO_SHARD);
        }
        let report = col.finish();
        let snap = report.tracker.snapshot();
        assert_eq!(snap.tasks_seen, 200);
        assert_eq!(snap.events_applied, 800);
        assert_eq!(snap.count(crate::TaskState::Ready), 200);
        assert_eq!(report.tracker.violation_count(), 0);
        assert_eq!(report.stream.released, 800);
        assert_eq!(report.missed, 0);
    }

    #[test]
    fn live_snapshots_progress_mid_run() {
        let rec = Arc::new(Recorder::with_capacity(2, 1 << 12));
        let col = Collector::spawn(
            Arc::clone(&rec),
            CollectorConfig {
                interval: Duration::from_millis(1),
                ..CollectorConfig::default()
            },
        );
        rec.emit(EventKind::Submitted, 1, NO_SHARD);
        // The collector should pick this up without finish().
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if col.tracker().tasks_seen == 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "collector never polled"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(col); // Drop without finish must not hang.
    }

    #[test]
    fn attached_registry_is_sampled() {
        let col = Collector::spawn(
            Arc::new(Recorder::disabled()),
            CollectorConfig {
                interval: Duration::from_millis(1),
                ..CollectorConfig::default()
            },
        );
        let reg = Arc::new(MetricsRegistry::new());
        reg.register("g", || vec![("n".to_string(), 4)]);
        col.attach_registry(reg);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let len = col.with_sampler(|s| s.len()).unwrap_or(0);
            if len >= 2 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "sampler never ticked");
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = col.finish();
        let sampler = report.sampler.expect("registry attached");
        assert_eq!(sampler.latest().unwrap().snap.get("g", "n"), Some(4));
    }

    #[test]
    fn collector_thread_panic_does_not_cascade_into_finish() {
        // Inject a panic *on the collector thread itself*: a metrics
        // source that panics during a sampler tick unwinds while the
        // sampler lock is held, poisoning it and killing the thread.
        // Historically every later touch — finish() moving state out,
        // or Drop's stop/join — re-panicked on the poisoned locks
        // (a panic in Drop aborts the process). All of it must now
        // survive and hand back everything applied before the panic.
        let rec = Arc::new(Recorder::with_capacity(1, 1 << 10));
        let col = Collector::spawn(
            Arc::clone(&rec),
            CollectorConfig {
                interval: Duration::from_millis(1),
                ..CollectorConfig::default()
            },
        );
        rec.emit(crate::EventKind::Submitted, 1, crate::NO_SHARD);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while col.tracker().tasks_seen < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "collector never polled"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let reg = Arc::new(MetricsRegistry::new());
        reg.register("bomb", || panic!("injected tick panic"));
        col.attach_registry(reg);
        // Wait for the thread to die on its next tick (join via the
        // public API only: stats() keeps working off-thread).
        std::thread::sleep(Duration::from_millis(20));
        let report = col.finish();
        assert_eq!(report.tracker.snapshot().tasks_seen, 1);
        assert_eq!(report.stream.released, 1);
    }

    #[test]
    fn finish_without_events_is_clean() {
        let col = Collector::new(Arc::new(Recorder::with_capacity(1, 64)));
        let report = col.finish();
        assert_eq!(report.tracker.snapshot().events_applied, 0);
        assert_eq!(report.stream.released, 0);
        assert!(report.sampler.is_none());
        assert!(report.tracker.violations().is_empty());
    }
}
