//! Metrics time series: periodic [`MetricsRegistry`] snapshots with
//! delta/rate derivation and JSONL export.
//!
//! The registry answers "what are the counters *now*"; the [`Sampler`]
//! turns that into a bounded history of timestamped snapshots so a
//! live consumer can ask the questions a single snapshot can't —
//! how fast are tasks finishing, is wake traffic accelerating, did
//! steals spike. The ring is bounded (oldest snapshots are evicted and
//! counted, mirroring the event rings' drop accounting), so a
//! long-lived service can sample forever in constant memory.
//!
//! Rates are derived between the two most recent snapshots: counters
//! here are monotonically increasing totals, so
//! `(new - old) / Δt` is the instantaneous rate per second. A counter
//! that moved backwards (a source was re-registered) yields a zero
//! rather than a negative rate.
//!
//! [`to_jsonl`](Sampler::to_jsonl) renders the retained window one
//! JSON object per line — the grep/`jq`-friendly export the watch
//! dashboard writes with `--csv`, validated by
//! [`validate_json`](crate::validate_json) per line in tests.

use crate::registry::{MetricsRegistry, MetricsSnapshot};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// One timestamped registry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledSnapshot {
    /// Nanoseconds since the sampler's construction.
    pub ts_ns: u64,
    /// The counters at that instant.
    pub snap: MetricsSnapshot,
}

/// A bounded time series of [`MetricsRegistry`] snapshots.
pub struct Sampler {
    reg: Arc<MetricsRegistry>,
    epoch: Instant,
    window: VecDeque<SampledSnapshot>,
    capacity: usize,
    evicted: u64,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("samples", &self.window.len())
            .field("evicted", &self.evicted)
            .finish()
    }
}

impl Sampler {
    /// A sampler over `reg` retaining the most recent `capacity`
    /// snapshots (minimum 2, so rates are always derivable).
    pub fn new(reg: Arc<MetricsRegistry>, capacity: usize) -> Sampler {
        Sampler {
            reg,
            epoch: Instant::now(),
            window: VecDeque::new(),
            capacity: capacity.max(2),
            evicted: 0,
        }
    }

    /// Take one snapshot now. Returns a reference to it.
    pub fn tick(&mut self) -> &SampledSnapshot {
        let s = SampledSnapshot {
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            snap: self.reg.snapshot(),
        };
        if self.window.len() == self.capacity {
            self.window.pop_front();
            self.evicted += 1;
        }
        self.window.push_back(s);
        self.window.back().expect("just pushed")
    }

    /// Retained snapshots, oldest first.
    pub fn window(&self) -> impl Iterator<Item = &SampledSnapshot> {
        self.window.iter()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no snapshot has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Snapshots evicted from the bounded window so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&SampledSnapshot> {
        self.window.back()
    }

    /// Per-counter rates (`group.counter`, events/second) between the
    /// two most recent snapshots. Empty with fewer than two snapshots
    /// or a zero time delta; counters that moved backwards rate 0.
    pub fn rates(&self) -> Vec<(String, f64)> {
        let n = self.window.len();
        if n < 2 {
            return Vec::new();
        }
        let (old, new) = (&self.window[n - 2], &self.window[n - 1]);
        let dt = new.ts_ns.saturating_sub(old.ts_ns) as f64 / 1e9;
        if dt <= 0.0 {
            return Vec::new();
        }
        new.snap
            .iter()
            .map(|(g, c, v)| {
                let prev = old.snap.get(g, c).unwrap_or(0);
                (format!("{g}.{c}"), v.saturating_sub(prev) as f64 / dt)
            })
            .collect()
    }

    /// Render the retained window as JSONL: one
    /// `{"ts_ns": …, "groups": {"g": {"c": v}}}` object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.window {
            out.push_str(&jsonl_line(s));
            out.push('\n');
        }
        out
    }
}

/// One snapshot as a single-line JSON object (no trailing newline).
pub fn jsonl_line(s: &SampledSnapshot) -> String {
    let mut line = format!("{{\"ts_ns\": {}, \"groups\": {{", s.ts_ns);
    for (gi, g) in s.snap.groups.iter().enumerate() {
        if gi > 0 {
            line.push_str(", ");
        }
        line.push_str(&format!("\"{}\": {{", escape(&g.name)));
        for (ci, (c, v)) in g.counters.iter().enumerate() {
            if ci > 0 {
                line.push_str(", ");
            }
            line.push_str(&format!("\"{}\": {}", escape(c), v));
        }
        line.push('}');
    }
    line.push_str("}}");
    line
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_json;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counting_registry() -> (Arc<MetricsRegistry>, Arc<AtomicU64>) {
        let reg = Arc::new(MetricsRegistry::new());
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        reg.register("tasks", move || {
            vec![("done".to_string(), n2.load(Ordering::Relaxed))]
        });
        (reg, n)
    }

    #[test]
    fn window_is_bounded_and_evictions_counted() {
        let (reg, _n) = counting_registry();
        let mut s = Sampler::new(reg, 3);
        for _ in 0..10 {
            s.tick();
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 7);
        assert!(s
            .window()
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn rates_reflect_counter_deltas() {
        let (reg, n) = counting_registry();
        let mut s = Sampler::new(reg, 8);
        assert!(s.rates().is_empty());
        s.tick();
        assert!(s.rates().is_empty());
        n.store(500, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(5));
        s.tick();
        let rates = s.rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, "tasks.done");
        assert!(rates[0].1 > 0.0, "rate = {}", rates[0].1);
        // 500 counts over >= 5ms: at most 100k/s.
        assert!(rates[0].1 <= 100_000.0, "rate = {}", rates[0].1);
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let (reg, n) = counting_registry();
        reg.register("odd \"names\"", || vec![("a\\b".to_string(), 7)]);
        let mut s = Sampler::new(reg, 4);
        n.store(3, Ordering::Relaxed);
        s.tick();
        s.tick();
        let out = s.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_json(line).expect(line);
            assert!(line.contains("\"tasks\""));
            assert!(line.contains("\"done\": 3"));
        }
    }
}
