//! # nexuspp-obs — runtime-wide observability
//!
//! The paper evaluates Nexus++ by watching every station of a task's
//! life — submission, dependence check, kick-off, execution, finish —
//! and this crate gives the reproduction the same view over its real
//! threaded runtimes, both post-mortem and *online*. It has four
//! parts:
//!
//! 1. **Lifecycle events** ([`Event`], [`EventKind`]): twelve
//!    transition kinds (`Submitted`, `DepCheckStart/Done`,
//!    `Stalled/Resumed`, `Ready`, `Stolen`, `ExecStart/ExecDone`,
//!    `WakePosted/WakeDelivered`, `Finished`), each stamped with task
//!    tag, shard, worker, a monotonic timestamp, and a global sequence
//!    number. The runtimes, the sharded dispatcher, and the scheduler
//!    all emit into one [`Recorder`]: per-lane lock-free bounded rings
//!    (claim-by-CAS, publish-by-sequence-store — the same
//!    count-then-publish discipline as the dispatcher's `PushList`)
//!    drained by a collector, with a [`Recorder::disabled`] path that
//!    returns before reading the clock so production runs pay one
//!    branch.
//! 2. **A [`MetricsRegistry`]**: the layers' existing counters
//!    (`SchedCounts`, `WakeCounts`, capacity stall/retry/stall-time)
//!    unified behind one [`MetricsSnapshot`] type.
//! 3. **Analysis and export**: per-task [`timelines`] and
//!    [`latency_breakdown`] (submit→ready→start→finish), the
//!    [`observed_critical_path`] over realized wake edges, and a
//!    Chrome-trace JSON export ([`chrome_trace`]) for
//!    `chrome://tracing`.
//! 4. **Online introspection**: an [`EventStream`] with cursor-based
//!    [`Subscriber`]s drains the rings *while producers still emit*
//!    (seq-ordered release, per-subscriber lag attribution); a
//!    background [`Collector`] thread — attached via the runtimes'
//!    `with_observer` constructors — feeds a live [`GraphTracker`]
//!    (per-task state machine, wake edges, illegal-transition
//!    detector, [`LogHistogram`]-backed stage quantiles) and a metrics
//!    [`Sampler`] (bounded time series of [`MetricsSnapshot`]s with
//!    rate derivation and JSONL export); [`render_dashboard`] turns a
//!    [`TrackerSnapshot`] into the `repro -- watch` text UI.
//!
//! Event flow:
//!
//! ```text
//!  submitter ──┐                         ┌── Recorder lane 0 (ring)
//!  worker 0 ───┤  emit(): CAS-claim slot ├── Recorder lane 1 (ring)
//!  worker 1 ───┤  + seq.fetch_add        ├── …
//!  …           │  + release-publish      │
//!              └── (full ring: dropped++)┘
//!        offline: drain() at quiescence, sort by seq → analyze/export
//!        online:  EventStream::pump() → seq watermark → Subscribers
//!                 └─ Collector thread → GraphTracker + Sampler
//! ```
//!
//! The accounting invariant the wraparound tests hold the rings to:
//! `recorded() + dropped()` equals the number of `emit` calls, always —
//! and because `seq` is allocated only *after* a slot claim succeeds,
//! the published sequence space is dense, so the stream can release in
//! strict `seq` order without stalling on gaps that will never fill.
//! The differential tests in `nexuspp-runtime` go further: at
//! quiescence, event-derived totals must equal every legacy counter
//! (`obs_differential.rs`), and the live tracker's final state must
//! equal a quiescent replay of the same stream
//! (`stream_differential.rs`).

#![deny(missing_docs)]

mod analyze;
mod collector;
mod event;
mod export;
mod hist;
mod recorder;
mod registry;
mod ring;
mod sampler;
mod stream;
mod sync;
mod tracker;
mod watch;

pub use analyze::{
    latency_breakdown, observed_critical_path, timelines, LatencyBreakdown, LatencyStats,
    ObservedCriticalPath, TaskTimeline,
};
pub use collector::{Collector, CollectorConfig, CollectorReport};
pub use event::{Event, EventKind, NO_SHARD, NO_TASK, NO_WORKER};
pub use export::{chrome_trace, validate_json};
pub use hist::LogHistogram;
pub use recorder::{Recorder, DEFAULT_LANE_CAPACITY};
pub use registry::{Counter, CounterGroup, MetricsGroup, MetricsRegistry, MetricsSnapshot};
pub use sampler::{jsonl_line, SampledSnapshot, Sampler};
pub use stream::{EventStream, StreamStats, Subscriber, DEFAULT_HISTORY};
pub use tracker::{
    GraphTracker, StageStats, TaskState, TrackerSnapshot, Violation, MAX_KEPT_VIOLATIONS,
};
pub use watch::{fmt_ns, render_dashboard};
