//! # nexuspp-obs — runtime-wide observability
//!
//! The paper evaluates Nexus++ by watching every station of a task's
//! life — submission, dependence check, kick-off, execution, finish —
//! and this crate gives the reproduction the same view over its real
//! threaded runtimes. It has three parts:
//!
//! 1. **Lifecycle events** ([`Event`], [`EventKind`]): twelve
//!    transition kinds (`Submitted`, `DepCheckStart/Done`,
//!    `Stalled/Resumed`, `Ready`, `Stolen`, `ExecStart/ExecDone`,
//!    `WakePosted/WakeDelivered`, `Finished`), each stamped with task
//!    tag, shard, worker, a monotonic timestamp, and a global sequence
//!    number. The runtimes, the sharded dispatcher, and the scheduler
//!    all emit into one [`Recorder`]: per-lane lock-free bounded rings
//!    (claim-by-CAS, publish-by-sequence-store — the same
//!    count-then-publish discipline as the dispatcher's `PushList`)
//!    drained by a collector, with a [`Recorder::disabled`] path that
//!    returns before reading the clock so production runs pay one
//!    branch.
//! 2. **A [`MetricsRegistry`]**: the layers' existing counters
//!    (`SchedCounts`, `WakeCounts`, capacity stall/retry/stall-time)
//!    unified behind one [`MetricsSnapshot`] type.
//! 3. **Analysis and export**: per-task [`timelines`] and
//!    [`latency_breakdown`] (submit→ready→start→finish), the
//!    [`observed_critical_path`] over realized wake edges, and a
//!    Chrome-trace JSON export ([`chrome_trace`]) for
//!    `chrome://tracing`.
//!
//! Event flow:
//!
//! ```text
//!  submitter ──┐                         ┌── Recorder lane 0 (ring)
//!  worker 0 ───┤  emit(): seq.fetch_add  ├── Recorder lane 1 (ring)
//!  worker 1 ───┤  + CAS-claim slot       ├── …
//!  …           │  + release-publish      │
//!              └── (full ring: dropped++)┘
//!                                collector: drain() under one mutex,
//!                                sort by seq → analyze / export
//! ```
//!
//! The accounting invariant the wraparound tests hold the rings to:
//! `recorded() + dropped()` equals the number of `emit` calls, always.
//! The differential tests in `nexuspp-runtime` go further: at
//! quiescence, event-derived totals must equal every legacy counter.

#![deny(missing_docs)]

mod analyze;
mod event;
mod export;
mod recorder;
mod registry;
mod ring;

pub use analyze::{
    latency_breakdown, observed_critical_path, timelines, LatencyBreakdown, LatencyStats,
    ObservedCriticalPath, TaskTimeline,
};
pub use event::{Event, EventKind, NO_SHARD, NO_TASK, NO_WORKER};
pub use export::{chrome_trace, validate_json};
pub use recorder::{Recorder, DEFAULT_LANE_CAPACITY};
pub use registry::{MetricsGroup, MetricsRegistry, MetricsSnapshot};
