//! The [`Recorder`]: the one object the runtimes talk to.
//!
//! An enabled recorder owns a small array of [`EventRing`] *lanes*.
//! Each emitting thread is assigned a lane once (a thread-local seed
//! modulo the lane count — workers effectively get private lanes,
//! occasional collisions are harmless because the rings accept
//! multiple producers), so the hot path is: read two thread-locals,
//! one `fetch_add` for the global sequence number, one monotonic clock
//! read, one CAS-claim + release-store into the lane. No locks are
//! ever taken by `emit`.
//!
//! The disabled recorder ([`Recorder::disabled`]) carries no lanes at
//! all: `emit` checks one `Option` discriminant and returns — before
//! reading the clock — which is what the ≤ 5 % `wake_stress` overhead
//! gate in `nexuspp-shard` holds it to.
//!
//! Draining is the collector's job and is deliberately cold: a mutex
//! (contended only by concurrent drainers, never by producers)
//! serializes consumers, each lane is popped dry, and the batch is
//! sorted by sequence number.

use crate::event::{Event, EventKind, NO_TASK, NO_WORKER};
use crate::ring::EventRing;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default events buffered per lane before drops begin.
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 15;

static NEXT_LANE_SEED: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Per-thread lane seed, assigned on first emission from a thread.
    static LANE_SEED: usize = NEXT_LANE_SEED.fetch_add(1, Ordering::Relaxed);
    /// The worker index this thread registered as, if any.
    static WORKER: std::cell::Cell<u32> = const { std::cell::Cell::new(NO_WORKER) };
}

struct Inner {
    epoch: Instant,
    seq: AtomicU64,
    lanes: Box<[EventRing]>,
    /// Serializes collectors; producers never touch it.
    drain: Mutex<()>,
}

/// Collects lifecycle [`Event`]s from every runtime layer.
pub struct Recorder {
    inner: Option<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Recorder {
    /// An enabled recorder sized for `workers` worker threads (plus the
    /// submitting thread), [`DEFAULT_LANE_CAPACITY`] events per lane.
    pub fn new(workers: usize) -> Recorder {
        Recorder::with_capacity(workers + 2, DEFAULT_LANE_CAPACITY)
    }

    /// An enabled recorder with an explicit lane count and per-lane
    /// capacity (rounded up to a power of two, minimum 8). Use a tiny
    /// capacity to exercise the drop-accounting path.
    pub fn with_capacity(lanes: usize, capacity: usize) -> Recorder {
        let lanes = lanes.max(1);
        Recorder {
            inner: Some(Inner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                lanes: (0..lanes).map(|_| EventRing::new(capacity)).collect(),
                drain: Mutex::new(()),
            }),
        }
    }

    /// The no-op recorder: `emit` returns before touching the clock.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether events are actually being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register the calling thread as worker `w` — all its subsequent
    /// events carry that worker index. Runtimes call this once at the
    /// top of each worker loop.
    pub fn set_thread_worker(w: u32) {
        WORKER.with(|c| c.set(w));
    }

    /// The worker index the calling thread registered, or
    /// [`NO_WORKER`].
    pub fn current_worker() -> u32 {
        WORKER.with(|c| c.get())
    }

    /// Record an event with no causal companion (`aux = NO_TASK`).
    #[inline]
    pub fn emit(&self, kind: EventKind, task: u64, shard: u32) {
        self.emit_edge(kind, task, NO_TASK, shard);
    }

    /// Record an event carrying a causal companion tag in `aux` (the
    /// waker for `Ready`/`WakePosted`).
    ///
    /// The global sequence number is allocated *inside* the ring's
    /// slot claim: a rejected push (full lane) never consumes a
    /// sequence number, so the published sequence space is dense —
    /// every value in `0..seq` is (or is about to be) visible in some
    /// lane. Live subscribers rely on that to release events in strict
    /// sequence order without stalling forever on a gap left by a
    /// dropped event. Causal ordering is unaffected: both the claim
    /// and the `fetch_add` happen inside `emit_edge`, so any
    /// happens-before edge between two emissions still orders their
    /// sequence numbers.
    #[inline]
    pub fn emit_edge(&self, kind: EventKind, task: u64, aux: u64, shard: u32) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let ts_ns = inner.epoch.elapsed().as_nanos() as u64;
        let worker = WORKER.with(|c| c.get());
        let lane = LANE_SEED.with(|s| *s) % inner.lanes.len();
        inner.lanes[lane].push_with(|| Event {
            seq: inner.seq.fetch_add(1, Ordering::AcqRel),
            kind,
            task,
            aux,
            shard,
            worker,
            ts_ns,
        });
    }

    /// Total events successfully recorded across all lanes.
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lanes.iter().map(|l| l.recorded()).sum())
    }

    /// Total events rejected because a lane was full. At quiescence
    /// `recorded() + dropped()` equals the number of `emit` calls.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lanes.iter().map(|l| l.dropped()).sum())
    }

    /// Drain every lane and return the batch sorted by sequence
    /// number. Concurrent drains are serialized; producers are never
    /// blocked by a drain.
    pub fn drain(&self) -> Vec<Event> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        let _guard = crate::sync::lock_unpoisoned(&inner.drain);
        let mut out = Vec::new();
        for lane in inner.lanes.iter() {
            while let Some(ev) = lane.pop() {
                out.push(ev);
            }
        }
        drop(_guard);
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_SHARD;
    use std::sync::Arc;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        r.emit(EventKind::Submitted, 1, 0);
        assert!(!r.is_enabled());
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.dropped(), 0);
        assert!(r.drain().is_empty());
    }

    #[test]
    fn events_drain_in_seq_order_with_worker_stamp() {
        let r = Recorder::new(2);
        Recorder::set_thread_worker(7);
        for t in 0..10 {
            r.emit(EventKind::Submitted, t, NO_SHARD);
        }
        Recorder::set_thread_worker(NO_WORKER);
        let evs = r.drain();
        assert_eq!(evs.len(), 10);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.task, i as u64);
            assert_eq!(e.worker, 7);
        }
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn concurrent_emission_accounts_for_every_event() {
        let r = Arc::new(Recorder::with_capacity(4, 64));
        let threads = 8;
        let per = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..per {
                        r.emit(EventKind::Ready, t * per + i, NO_SHARD);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let evs = r.drain();
        assert_eq!(evs.len() as u64, r.recorded());
        assert_eq!(r.recorded() + r.dropped(), threads * per);
        assert!(r.dropped() > 0, "tiny rings must have wrapped");
        // seq values are unique.
        let mut seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), evs.len());
    }
}
