//! Bounded lock-free event rings.
//!
//! One [`EventRing`] per recorder lane. The push side follows the same
//! count-then-publish discipline as the dispatcher's `PushList`: a
//! producer *claims* a slot with one CAS on the head cursor, writes the
//! event, and *publishes* it with one release store of the slot's
//! sequence number — no locks, no unbounded loops (a full ring rejects
//! instead of spinning). The pop side is single-consumer (the
//! recorder's collector serializes drains behind a mutex that producers
//! never touch).
//!
//! Rejection is accounted, never silent: every push that finds the
//! ring full increments `dropped`, so at quiescence
//! `recorded + dropped == emitted` exactly — the invariant the
//! wraparound tests assert.

use crate::event::Event;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

struct Slot {
    /// Vyukov-style slot sequencer: equals the claim position when the
    /// slot is free for a producer, position + 1 once published, and
    /// position + capacity after the consumer recycles it.
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<Event>>,
}

/// A bounded MPMC-claim / single-consumer event ring.
pub(crate) struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next position a producer will try to claim.
    head: AtomicU64,
    /// Next position the consumer will read. Only the collector (under
    /// the recorder's drain mutex) advances this.
    tail: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

// Slots are handed between threads purely through the seq protocol.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// `capacity` is rounded up to a power of two, minimum 8.
    pub(crate) fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two() as u64;
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            mask: cap - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Publish one event; `false` (and one `dropped` tick) if full.
    #[cfg(test)]
    pub(crate) fn push(&self, ev: Event) -> bool {
        self.push_with(|| ev)
    }

    /// Publish the event `build` produces; `false` (and one `dropped`
    /// tick) if full. `build` runs only **after** the slot claim
    /// succeeds, so anything it allocates from a shared counter (the
    /// recorder's global sequence number) is allocated exactly for
    /// events that will be published — a rejected push consumes
    /// nothing. That density is what lets a live [`EventStream`] release
    /// events in strict sequence order without stalling on a sequence
    /// number that was allocated and then dropped.
    ///
    /// [`EventStream`]: crate::EventStream
    pub(crate) fn push_with(&self, build: impl FnOnce() -> Event) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.val.get()).write(build()) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        self.recorded.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(now) => pos = now,
                }
            } else if seq < pos {
                // The consumer hasn't recycled this slot: ring full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Take the oldest published event, if any. Caller must be the
    /// sole consumer (the recorder's drain lock guarantees this).
    pub(crate) fn pop(&self) -> Option<Event> {
        let pos = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None;
        }
        let ev = unsafe { (*slot.val.get()).assume_init_read() };
        slot.seq.store(pos + self.mask + 1, Ordering::Release);
        self.tail.store(pos + 1, Ordering::Relaxed);
        Some(ev)
    }

    pub(crate) fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NO_SHARD, NO_TASK, NO_WORKER};
    use std::sync::Arc;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            kind: EventKind::Submitted,
            task: seq,
            aux: NO_TASK,
            shard: NO_SHARD,
            worker: NO_WORKER,
            ts_ns: seq,
        }
    }

    #[test]
    fn fifo_within_capacity() {
        let r = EventRing::new(8);
        for i in 0..8 {
            assert!(r.push(ev(i)));
        }
        for i in 0..8 {
            assert_eq!(r.pop().unwrap().seq, i);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn full_ring_drops_and_accounts() {
        let r = EventRing::new(8);
        for i in 0..100 {
            r.push(ev(i));
        }
        assert_eq!(r.recorded(), 8);
        assert_eq!(r.dropped(), 92);
        let mut drained = 0;
        while r.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained + r.dropped(), 100);
    }

    #[test]
    fn capacity_recycles_after_drain() {
        let r = EventRing::new(8);
        for round in 0..5u64 {
            for i in 0..8 {
                assert!(r.push(ev(round * 8 + i)), "round {round} slot {i}");
            }
            for i in 0..8 {
                assert_eq!(r.pop().unwrap().seq, round * 8 + i);
            }
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn concurrent_pushes_account_exactly() {
        let r = Arc::new(EventRing::new(64));
        let threads = 4;
        let per = 1000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..per {
                        r.push(ev(t * per + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut drained = 0;
        while r.pop().is_some() {
            drained += 1;
        }
        assert_eq!(r.recorded() + r.dropped(), threads * per);
        assert_eq!(drained, r.recorded());
    }
}
