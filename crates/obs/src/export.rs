//! Chrome-trace export (the `chrome://tracing` / Perfetto JSON event
//! format) plus a small JSON well-formedness checker used by the
//! export's own tests and the `repro -- observe` self-check.
//!
//! Execution spans become `"X"` (complete) events — one horizontal bar
//! per task on its worker's row — and every other lifecycle event
//! becomes an `"i"` (instant) marker on the emitting thread's row, so
//! the full task journey is visible on one timeline. Timestamps
//! are exported in microseconds (the format's unit) at nanosecond
//! precision.

use crate::event::{Event, EventKind, NO_TASK, NO_WORKER};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Chrome-trace row (`tid`) for an event: workers keep their index + 1
/// and row 0 collects everything emitted off-worker (the submitting
/// master thread).
fn tid(worker: u32) -> u32 {
    if worker == NO_WORKER {
        0
    } else {
        worker + 1
    }
}

fn push_ts(out: &mut String, ts_ns: u64) {
    // µs with ns precision, without float rounding surprises.
    let _ = write!(out, "{}.{:03}", ts_ns / 1_000, ts_ns % 1_000);
}

/// Render an event batch as a Chrome-trace JSON document. Load the
/// string (saved as a `.json` file) in `chrome://tracing` or
/// <https://ui.perfetto.dev> to inspect the run's timeline.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };

    // Thread-name metadata rows.
    let mut tids: Vec<u32> = events.iter().map(|e| tid(e.worker)).collect();
    tids.push(0);
    tids.sort_unstable();
    tids.dedup();
    for t in tids {
        sep(&mut out);
        let name = if t == 0 {
            "submitter".to_string()
        } else {
            format!("worker {}", t - 1)
        };
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }

    // Execution spans: pair ExecStart/ExecDone per task.
    let mut spans: BTreeMap<u64, (Option<Event>, Option<Event>)> = BTreeMap::new();
    for e in events {
        if e.task == NO_TASK {
            continue;
        }
        match e.kind {
            EventKind::ExecStart => spans.entry(e.task).or_default().0 = Some(*e),
            EventKind::ExecDone => spans.entry(e.task).or_default().1 = Some(*e),
            _ => {}
        }
    }
    for (task, (start, done)) in &spans {
        let (Some(s), Some(d)) = (start, done) else {
            continue;
        };
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"task {task}\",\"cat\":\"exec\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":",
            tid(s.worker)
        );
        push_ts(&mut out, s.ts_ns);
        out.push_str(",\"dur\":");
        push_ts(&mut out, d.ts_ns.saturating_sub(s.ts_ns));
        let _ = write!(out, ",\"args\":{{\"task\":{task}}}}}");
    }

    // Everything else as instant markers.
    for e in events {
        if matches!(e.kind, EventKind::ExecStart | EventKind::ExecDone) {
            continue;
        }
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\
             \"pid\":0,\"tid\":{},\"ts\":",
            e.kind.name(),
            tid(e.worker)
        );
        push_ts(&mut out, e.ts_ns);
        out.push_str(",\"args\":{");
        let mut args_first = true;
        let mut arg = |out: &mut String, k: &str, v: u64| {
            if !args_first {
                out.push(',');
            }
            args_first = false;
            let _ = write!(out, "\"{k}\":{v}");
        };
        if e.task != NO_TASK {
            arg(&mut out, "task", e.task);
        }
        if e.aux != NO_TASK {
            arg(&mut out, "waker", e.aux);
        }
        if e.shard != crate::event::NO_SHARD {
            arg(&mut out, "shard", u64::from(e.shard));
        }
        out.push_str("}}");
    }

    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Check that `s` is one well-formed JSON value (objects, arrays,
/// strings, numbers, booleans, null). Returns the byte offset and a
/// short message on the first violation.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.i))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("control character in string"),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Parser| {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > start
        };
        if !digits(self) {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return self.err("expected exponent digits");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_SHARD;

    fn ev(kind: EventKind, task: u64, worker: u32, ts_ns: u64) -> Event {
        Event {
            seq: ts_ns,
            kind,
            task,
            aux: NO_TASK,
            shard: NO_SHARD,
            worker,
            ts_ns,
        }
    }

    #[test]
    fn trace_is_valid_json_with_spans_and_instants() {
        let events = vec![
            ev(EventKind::Submitted, 1, NO_WORKER, 10),
            ev(EventKind::Ready, 1, NO_WORKER, 20),
            ev(EventKind::ExecStart, 1, 0, 1_500),
            ev(EventKind::ExecDone, 1, 0, 2_750),
            ev(EventKind::Finished, 1, 0, 2_800),
        ];
        let json = chrome_trace(&events);
        validate_json(&json).expect("export must be well-formed JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":1.250"));
        assert!(json.contains("\"Submitted\""));
        assert!(json.contains("worker 0"));
    }

    #[test]
    fn empty_batch_still_validates() {
        validate_json(&chrome_trace(&[])).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "null",
            "-12.5e+3",
            "[1, 2, {\"a\": [true, false]}]",
            "\"esc \\u00e9 \\n ok\"",
            "{}",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "[1] trailing",
            "{'single':1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad} should fail");
        }
    }
}
