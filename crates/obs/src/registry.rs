//! The [`MetricsRegistry`]: one snapshot type over every layer's
//! counters.
//!
//! Each layer already keeps its own counters (`SchedCounts` in the
//! scheduler, `WakeCounts` and capacity stall/retry/stall-time in the
//! dispatcher, submission totals in the runtimes). The registry does
//! not replace them — it holds named *sources* (closures that snapshot
//! a layer's counters on demand) and flattens them into one
//! [`MetricsSnapshot`] that `repro` and the runtimes can render or
//! query uniformly.

use std::sync::Mutex;

type Source = Box<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

/// A registry of named counter groups, snapshotted on demand.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<(String, Source)>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let groups: Vec<String> = self
            .sources
            .lock()
            .unwrap()
            .iter()
            .map(|(g, _)| g.clone())
            .collect();
        f.debug_struct("MetricsRegistry")
            .field("groups", &groups)
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register `group`: `f` is called at every [`snapshot`] to
    /// produce the group's `(counter, value)` pairs.
    ///
    /// [`snapshot`]: MetricsRegistry::snapshot
    pub fn register<F>(&self, group: &str, f: F)
    where
        F: Fn() -> Vec<(String, u64)> + Send + Sync + 'static,
    {
        self.sources
            .lock()
            .unwrap()
            .push((group.to_string(), Box::new(f)));
    }

    /// Snapshot every group, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let sources = self.sources.lock().unwrap();
        MetricsSnapshot {
            groups: sources
                .iter()
                .map(|(name, f)| MetricsGroup {
                    name: name.clone(),
                    counters: f(),
                })
                .collect(),
        }
    }
}

/// One group of counters within a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsGroup {
    /// Group name (`"sched"`, `"wake"`, `"capacity"`, …).
    pub name: String,
    /// `(counter, value)` pairs in the source's order.
    pub counters: Vec<(String, u64)>,
}

/// A point-in-time flattening of every registered counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Groups in registration order.
    pub groups: Vec<MetricsGroup>,
}

impl MetricsSnapshot {
    /// Look up one counter.
    pub fn get(&self, group: &str, counter: &str) -> Option<u64> {
        self.groups
            .iter()
            .filter(|g| g.name == group)
            .flat_map(|g| g.counters.iter())
            .find(|(c, _)| c == counter)
            .map(|&(_, v)| v)
    }

    /// All `(group, counter, value)` triples, flattened.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.groups.iter().flat_map(|g| {
            g.counters
                .iter()
                .map(move |(c, v)| (g.name.as_str(), c.as_str(), *v))
        })
    }

    /// Render as aligned `group.counter = value` lines.
    pub fn render(&self) -> String {
        let rows: Vec<(String, u64)> = self
            .iter()
            .map(|(g, c, v)| (format!("{g}.{c}"), v))
            .collect();
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$} = {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn sources_are_live_not_cached() {
        let reg = MetricsRegistry::new();
        let n = Arc::new(AtomicU64::new(1));
        let n2 = Arc::clone(&n);
        reg.register("g", move || {
            vec![("n".to_string(), n2.load(Ordering::Relaxed))]
        });
        assert_eq!(reg.snapshot().get("g", "n"), Some(1));
        n.store(42, Ordering::Relaxed);
        assert_eq!(reg.snapshot().get("g", "n"), Some(42));
        assert_eq!(reg.snapshot().get("g", "missing"), None);
        assert_eq!(reg.snapshot().get("missing", "n"), None);
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let reg = MetricsRegistry::new();
        reg.register("sched", || vec![("steals".to_string(), 3)]);
        reg.register("wake", || vec![("delivered".to_string(), 700)]);
        let snap = reg.snapshot();
        let text = snap.render();
        assert!(text.contains("sched.steals"));
        assert!(text.contains("= 700"));
        assert_eq!(snap.iter().count(), 2);
    }
}
