//! The [`MetricsRegistry`]: one snapshot type over every layer's
//! counters.
//!
//! Each layer already keeps its own counters (`SchedCounts` in the
//! scheduler, `WakeCounts` and capacity stall/retry/stall-time in the
//! dispatcher, submission totals in the runtimes). The registry does
//! not replace them — it holds named *sources* (closures that snapshot
//! a layer's counters on demand) and flattens them into one
//! [`MetricsSnapshot`] that `repro` and the runtimes can render or
//! query uniformly.

use crate::sync::lock_unpoisoned;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

type Source = Box<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

/// A registry of named counter groups, snapshotted on demand.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<(String, Source)>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let groups: Vec<String> = lock_unpoisoned(&self.sources)
            .iter()
            .map(|(g, _)| g.clone())
            .collect();
        f.debug_struct("MetricsRegistry")
            .field("groups", &groups)
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register `group`: `f` is called at every [`snapshot`] to
    /// produce the group's `(counter, value)` pairs.
    ///
    /// [`snapshot`]: MetricsRegistry::snapshot
    pub fn register<F>(&self, group: &str, f: F)
    where
        F: Fn() -> Vec<(String, u64)> + Send + Sync + 'static,
    {
        lock_unpoisoned(&self.sources).push((group.to_string(), Box::new(f)));
    }

    /// Snapshot every group, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let sources = lock_unpoisoned(&self.sources);
        MetricsSnapshot {
            groups: sources
                .iter()
                .map(|(name, f)| MetricsGroup {
                    name: name.clone(),
                    counters: f(),
                })
                .collect(),
        }
    }
}

/// One live `u64` counter inside a [`CounterGroup`]. Cheap to clone
/// (an `Arc` around one atomic) and safe to bump from any thread.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Raise to `v` if `v` is larger (high-water marks).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Overwrite with `v` (gauges).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named set of live counters that snapshots as one registry group —
/// the building block for *dynamic* metric groups (one per tenant in
/// `nexuspp-service`) where the counters exist before, and independently
/// of, any registry. Counter order is creation order.
pub struct CounterGroup {
    counters: Vec<(String, Counter)>,
}

impl CounterGroup {
    /// A group with one zeroed counter per name.
    pub fn new(names: &[&str]) -> CounterGroup {
        CounterGroup {
            counters: names
                .iter()
                .map(|n| (n.to_string(), Counter::default()))
                .collect(),
        }
    }

    /// The live handle for `name`, if it exists.
    pub fn counter(&self, name: &str) -> Option<Counter> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.clone())
    }

    /// Current `(name, value)` pairs, in creation order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// Register this group in `reg` under `group`; the registered
    /// source reads the same atomics the handles write, so snapshots
    /// stay live.
    pub fn register_in(self: &Arc<Self>, reg: &MetricsRegistry, group: &str) {
        let me = Arc::clone(self);
        reg.register(group, move || me.snapshot());
    }
}

/// One group of counters within a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsGroup {
    /// Group name (`"sched"`, `"wake"`, `"capacity"`, …).
    pub name: String,
    /// `(counter, value)` pairs in the source's order.
    pub counters: Vec<(String, u64)>,
}

/// A point-in-time flattening of every registered counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Groups in registration order.
    pub groups: Vec<MetricsGroup>,
}

impl MetricsSnapshot {
    /// Look up one counter.
    pub fn get(&self, group: &str, counter: &str) -> Option<u64> {
        self.groups
            .iter()
            .filter(|g| g.name == group)
            .flat_map(|g| g.counters.iter())
            .find(|(c, _)| c == counter)
            .map(|&(_, v)| v)
    }

    /// All `(group, counter, value)` triples, flattened.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.groups.iter().flat_map(|g| {
            g.counters
                .iter()
                .map(move |(c, v)| (g.name.as_str(), c.as_str(), *v))
        })
    }

    /// Render as aligned `group.counter = value` lines.
    pub fn render(&self) -> String {
        let rows: Vec<(String, u64)> = self
            .iter()
            .map(|(g, c, v)| (format!("{g}.{c}"), v))
            .collect();
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$} = {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn sources_are_live_not_cached() {
        let reg = MetricsRegistry::new();
        let n = Arc::new(AtomicU64::new(1));
        let n2 = Arc::clone(&n);
        reg.register("g", move || {
            vec![("n".to_string(), n2.load(Ordering::Relaxed))]
        });
        assert_eq!(reg.snapshot().get("g", "n"), Some(1));
        n.store(42, Ordering::Relaxed);
        assert_eq!(reg.snapshot().get("g", "n"), Some(42));
        assert_eq!(reg.snapshot().get("g", "missing"), None);
        assert_eq!(reg.snapshot().get("missing", "n"), None);
    }

    #[test]
    fn counter_groups_register_live_handles() {
        let reg = MetricsRegistry::new();
        let group = Arc::new(CounterGroup::new(&["submitted", "rejected", "peak"]));
        group.register_in(&reg, "tenant1");
        let submitted = group.counter("submitted").unwrap();
        let peak = group.counter("peak").unwrap();
        assert!(group.counter("missing").is_none());
        submitted.inc();
        submitted.add(2);
        peak.record_max(5);
        peak.record_max(3);
        let snap = reg.snapshot();
        assert_eq!(snap.get("tenant1", "submitted"), Some(3));
        assert_eq!(snap.get("tenant1", "rejected"), Some(0));
        assert_eq!(snap.get("tenant1", "peak"), Some(5));
    }

    #[test]
    fn panicking_source_poisons_nothing_downstream() {
        // A metrics source that panics unwinds while the registry's
        // sources lock is held, poisoning it. The registry must keep
        // working afterwards — register, snapshot, and Debug all go
        // through the poison-tolerant lock.
        let reg = MetricsRegistry::new();
        let armed = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let armed2 = Arc::clone(&armed);
        reg.register("bomb", move || {
            if armed2.swap(false, Ordering::SeqCst) {
                panic!("injected source panic");
            }
            vec![("ticks".to_string(), 1)]
        });
        reg.register("ok", || vec![("v".to_string(), 7)]);
        let snap = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.snapshot()));
        assert!(snap.is_err());
        // The lock is now poisoned; everything must still work.
        reg.register("late", || vec![("w".to_string(), 9)]);
        let snap = reg.snapshot();
        assert_eq!(snap.get("bomb", "ticks"), Some(1));
        assert_eq!(snap.get("ok", "v"), Some(7));
        assert_eq!(snap.get("late", "w"), Some(9));
        assert!(format!("{reg:?}").contains("bomb"));
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let reg = MetricsRegistry::new();
        reg.register("sched", || vec![("steals".to_string(), 3)]);
        reg.register("wake", || vec![("delivered".to_string(), 700)]);
        let snap = reg.snapshot();
        let text = snap.render();
        assert!(text.contains("sched.steals"));
        assert!(text.contains("= 700"));
        assert_eq!(snap.iter().count(), 2);
    }
}
