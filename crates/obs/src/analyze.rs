//! Event-stream analysis: per-task timelines, latency breakdowns, and
//! the observed critical path.
//!
//! The observed critical path is reconstructed purely from the wake
//! edges the runtime actually exercised: every [`EventKind::Ready`]
//! event carries the tag of the finishing task that released it (or
//! [`NO_TASK`] if the task was ready at submission). Chaining those
//! edges backwards from every task gives each task a *depth* — ready
//! at submit is depth 1, a task woken by a depth-`d` finisher is depth
//! `d + 1` — and the maximum depth is the length of the longest
//! realized dependence chain. On a correctly-ordered run this equals
//! the structural critical path `parallelism_profile` computes from
//! the task graph, which `repro -- observe` asserts for
//! `version_stress`.

use crate::event::{Event, EventKind, NO_TASK, NO_WORKER};
use std::collections::{BTreeMap, HashMap};

/// The recorded journey of one task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskTimeline {
    /// `ts_ns` of the task's `Submitted` event.
    pub submitted: Option<u64>,
    /// `ts_ns` of the task's `Ready` event.
    pub ready: Option<u64>,
    /// `ts_ns` of the task's `ExecStart` event.
    pub exec_start: Option<u64>,
    /// `ts_ns` of the task's `ExecDone` event.
    pub exec_done: Option<u64>,
    /// `ts_ns` of the task's `Finished` event.
    pub finished: Option<u64>,
    /// Worker that executed it, or [`NO_WORKER`].
    pub worker: u32,
    /// The finisher that released it, or `None` if ready at submit.
    pub waker: Option<u64>,
}

/// Fold an event batch into per-task timelines (keyed by task tag;
/// events with `task == NO_TASK` are skipped).
pub fn timelines(events: &[Event]) -> BTreeMap<u64, TaskTimeline> {
    let mut map: BTreeMap<u64, TaskTimeline> = BTreeMap::new();
    for e in events {
        if e.task == NO_TASK {
            continue;
        }
        let t = map.entry(e.task).or_default();
        match e.kind {
            EventKind::Submitted => t.submitted = Some(e.ts_ns),
            EventKind::Ready => {
                t.ready = Some(e.ts_ns);
                if e.aux != NO_TASK {
                    t.waker = Some(e.aux);
                }
            }
            EventKind::ExecStart => {
                t.exec_start = Some(e.ts_ns);
                if e.worker != NO_WORKER {
                    t.worker = e.worker;
                }
            }
            EventKind::ExecDone => t.exec_done = Some(e.ts_ns),
            EventKind::Finished => t.finished = Some(e.ts_ns),
            _ => {}
        }
    }
    map
}

/// Order statistics over one latency population.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Tasks with both endpoints recorded.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Maximum latency in nanoseconds.
    pub max_ns: u64,
}

impl LatencyStats {
    fn from_samples(mut v: Vec<u64>) -> LatencyStats {
        if v.is_empty() {
            return LatencyStats::default();
        }
        v.sort_unstable();
        let at = |q: usize| v[(v.len() * q / 100).min(v.len() - 1)];
        LatencyStats {
            count: v.len() as u64,
            mean_ns: v.iter().sum::<u64>() as f64 / v.len() as f64,
            p50_ns: v[v.len() / 2],
            p90_ns: at(90),
            p99_ns: at(99),
            max_ns: *v.last().unwrap(),
        }
    }
}

/// The submit→ready→start→done→finish stage latencies over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Submission until the dependence count hit zero.
    pub submit_to_ready: LatencyStats,
    /// Ready until a worker picked the task up.
    pub ready_to_start: LatencyStats,
    /// Body execution time.
    pub start_to_done: LatencyStats,
    /// Body return until the dependence tables retired the task.
    pub done_to_finish: LatencyStats,
}

/// Compute the per-stage latency breakdown from task timelines.
pub fn latency_breakdown(tl: &BTreeMap<u64, TaskTimeline>) -> LatencyBreakdown {
    let stage = |f: &dyn Fn(&TaskTimeline) -> Option<(u64, u64)>| {
        LatencyStats::from_samples(
            tl.values()
                .filter_map(f)
                .map(|(a, b)| b.saturating_sub(a))
                .collect(),
        )
    };
    LatencyBreakdown {
        submit_to_ready: stage(&|t| Some((t.submitted?, t.ready?))),
        ready_to_start: stage(&|t| Some((t.ready?, t.exec_start?))),
        start_to_done: stage(&|t| Some((t.exec_start?, t.exec_done?))),
        done_to_finish: stage(&|t| Some((t.exec_done?, t.finished?))),
    }
}

/// The longest realized wake chain in an event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObservedCriticalPath {
    /// Number of tasks on the chain (1 = some task ran with no waker).
    pub length: usize,
    /// The chain itself, waker-first.
    pub chain: Vec<u64>,
}

/// Extract the observed critical path from the wake edges in `events`.
pub fn observed_critical_path(events: &[Event]) -> ObservedCriticalPath {
    // task -> waker (None = ready at submit, or waker unknown).
    let mut waker: HashMap<u64, Option<u64>> = HashMap::new();
    for e in events {
        if e.kind == EventKind::Ready && e.task != NO_TASK {
            waker.insert(e.task, (e.aux != NO_TASK).then_some(e.aux));
        }
    }
    // Each task has at most one waker, so the edges form a forest:
    // walk each chain to its root iteratively (chains can be thousands
    // deep), then unwind assigning depths. A malformed stream with a
    // cyclic edge is cut rather than looped on.
    let mut depth: HashMap<u64, usize> = HashMap::new();
    for &start in waker.keys() {
        if depth.contains_key(&start) {
            continue;
        }
        let mut path = Vec::new();
        let mut on_path: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut cur = start;
        let mut base = 0usize;
        loop {
            if let Some(&d) = depth.get(&cur) {
                base = d;
                break;
            }
            if !on_path.insert(cur) {
                break; // cycle: treat the repeated node's waker as depth 0
            }
            path.push(cur);
            match waker.get(&cur).copied().flatten() {
                // An unobserved waker (outside the stream) counts depth 0.
                Some(w) if waker.contains_key(&w) => cur = w,
                _ => break,
            }
        }
        for node in path.into_iter().rev() {
            base += 1;
            depth.insert(node, base);
        }
    }
    let Some((&deepest, &len)) = depth
        .iter()
        .max_by_key(|&(t, d)| (*d, std::cmp::Reverse(*t)))
    else {
        return ObservedCriticalPath::default();
    };
    let mut chain = vec![deepest];
    let mut cur = deepest;
    while chain.len() < len {
        match waker.get(&cur).copied().flatten() {
            Some(w) => {
                chain.push(w);
                cur = w;
            }
            None => break,
        }
    }
    chain.reverse();
    ObservedCriticalPath { length: len, chain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NO_SHARD, NO_TASK};

    fn ev(seq: u64, kind: EventKind, task: u64, aux: u64, ts_ns: u64) -> Event {
        Event {
            seq,
            kind,
            task,
            aux,
            shard: NO_SHARD,
            worker: 0,
            ts_ns,
        }
    }

    #[test]
    fn timelines_and_latencies_add_up() {
        let events = vec![
            ev(0, EventKind::Submitted, 1, NO_TASK, 100),
            ev(1, EventKind::Ready, 1, NO_TASK, 150),
            ev(2, EventKind::ExecStart, 1, NO_TASK, 250),
            ev(3, EventKind::ExecDone, 1, NO_TASK, 650),
            ev(4, EventKind::Finished, 1, NO_TASK, 700),
        ];
        let tl = timelines(&events);
        assert_eq!(tl.len(), 1);
        let b = latency_breakdown(&tl);
        assert_eq!(b.submit_to_ready.max_ns, 50);
        assert_eq!(b.ready_to_start.max_ns, 100);
        assert_eq!(b.start_to_done.max_ns, 400);
        assert_eq!(b.done_to_finish.max_ns, 50);
        assert_eq!(b.start_to_done.count, 1);
    }

    #[test]
    fn critical_path_follows_wake_edges() {
        // 1 -> 2 -> 3 (chain), 4 independent.
        let events = vec![
            ev(0, EventKind::Ready, 1, NO_TASK, 0),
            ev(1, EventKind::Ready, 4, NO_TASK, 0),
            ev(2, EventKind::Ready, 2, 1, 10),
            ev(3, EventKind::Ready, 3, 2, 20),
        ];
        let cp = observed_critical_path(&events);
        assert_eq!(cp.length, 3);
        assert_eq!(cp.chain, vec![1, 2, 3]);
    }

    #[test]
    fn deep_chains_do_not_overflow() {
        let n = 100_000u64;
        let mut events = vec![ev(0, EventKind::Ready, 0, NO_TASK, 0)];
        for t in 1..n {
            events.push(ev(t, EventKind::Ready, t, t - 1, t));
        }
        let cp = observed_critical_path(&events);
        assert_eq!(cp.length, n as usize);
        assert_eq!(cp.chain.len(), n as usize);
        assert_eq!(cp.chain[0], 0);
    }

    #[test]
    fn empty_stream_has_empty_path() {
        assert_eq!(observed_critical_path(&[]).length, 0);
        assert!(timelines(&[]).is_empty());
        assert_eq!(
            latency_breakdown(&BTreeMap::new()),
            LatencyBreakdown::default()
        );
    }
}
