//! Log-bucketed latency histograms.
//!
//! A [`LogHistogram`] keeps one counter per power-of-two bucket (64
//! buckets cover the full `u64` nanosecond range), so recording is one
//! `leading_zeros` plus one increment and the memory footprint is
//! constant no matter how many samples arrive — which is what lets the
//! live [`GraphTracker`](crate::GraphTracker) keep full-run stage
//! latencies online without ever storing the samples themselves.
//!
//! Quantiles are answered from the bucket counts: the reported value
//! for a quantile is the *upper bound* of the bucket the rank lands
//! in, i.e. within 2× of the true order statistic. That resolution is
//! deliberate — the post-mortem
//! [`latency_breakdown`](crate::latency_breakdown) keeps exact
//! percentiles from the full sample vector; the histogram trades that
//! exactness for bounded, lock-free-friendly state.

/// A 64-bucket power-of-two latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// `buckets[i]` counts samples `v` with `bucket_index(v) == i`:
    /// bucket 0 holds `v == 0` and `v == 1`, bucket `i` holds
    /// `2^(i-1) < v <= 2^i` (i.e. values whose bit length is `i`).
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    // Bit length of v: 0 and 1 share bucket 0, then one bucket per
    // doubling. 64 - leading_zeros(v) for v > 1.
    (64 - v.saturating_sub(1).leading_zeros() as usize).min(63)
}

/// Upper bound of bucket `i`: the largest value mapping to it.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` in `[0, 1]`: the upper bound of the bucket the
    /// rank `ceil(q * count)` falls in (exact for the max; within 2×
    /// otherwise). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top occupied bucket reports the true max instead
                // of a power-of-two bound.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](LogHistogram::quantile) for resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn buckets_cover_doublings() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every value is <= the upper bound of its bucket.
        for v in [0u64, 1, 2, 3, 7, 8, 9, 1 << 20, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)), "v = {v}");
        }
    }

    #[test]
    fn quantiles_are_within_2x_of_exact() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for (q, exact_idx) in [(0.5, 499usize), (0.9, 899), (0.99, 989)] {
            let exact = samples[exact_idx];
            let est = h.quantile(q);
            assert!(est >= exact, "q{q}: est {est} < exact {exact}");
            assert!(est <= exact * 2, "q{q}: est {est} > 2x exact {exact}");
        }
        assert_eq!(h.quantile(1.0), *samples.last().unwrap());
        assert_eq!(h.max(), 37_000);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for i in 0..100 {
            a.record(i * 3);
            c.record(i * 3);
        }
        for i in 0..50 {
            b.record(i * 1000);
            c.record(i * 1000);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }
}
