//! Poison-tolerant locking for the observability layer.
//!
//! Observability must never turn one failure into two: a task body (or a
//! metrics source) that panics while a collector/stream lock is held
//! poisons that `std::sync::Mutex`, and a bare `.lock().unwrap()` then
//! re-panics in whoever touches it next — including `Drop` impls, where
//! a second panic aborts the process. Every lock in this crate goes
//! through these helpers instead: the data under these locks is
//! aggregate counters and event buffers, always left structurally valid
//! (at worst missing the poisoning thread's final update), so observing
//! past a poison is strictly better than cascading it.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// `m.lock()`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `m.into_inner()`, recovering the value if a holder panicked.
pub(crate) fn into_inner_unpoisoned<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}
