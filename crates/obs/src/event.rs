//! The lifecycle event model: one [`Event`] per interesting transition
//! in a task's journey through the runtime.
//!
//! The twelve [`EventKind`]s mirror the stations of the Nexus++
//! pipeline the paper instruments — submission, dependence check,
//! capacity stall, readiness, scheduling (steal/park), execution, and
//! the kick-off (wake) path. Every event is stamped with the task tag
//! it concerns, the shard and worker involved (where meaningful), a
//! monotonic nanosecond timestamp, and a global sequence number that
//! totally orders causally-related events (see [`Event::seq`]).

/// Sentinel for "no task": events that concern a worker or shard but no
/// particular task (scheduler parks), and the `aux` field of events
/// that carry no causal edge.
pub const NO_TASK: u64 = u64::MAX;

/// Sentinel for "no shard": events outside the sharded dependence
/// tables (single-engine runtime, scheduler-layer events).
pub const NO_SHARD: u32 = u32::MAX;

/// Sentinel for "no worker": events emitted by a thread that never
/// registered as a worker (the submitting master thread).
pub const NO_WORKER: u32 = u32::MAX;

/// What happened. See the variant docs for who emits each kind and
/// what `task`/`aux` mean for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// A task entered the runtime (`submit`/`spawn` accepted it).
    Submitted,
    /// The dependence check (engine admission) for a task began.
    DepCheckStart,
    /// The dependence check for a task completed (all its address
    /// groups are registered in their home shards).
    DepCheckDone,
    /// Someone blocked: a submitter parked on a full shard's capacity
    /// (`shard` is the full shard, `task` the stalled submission) or a
    /// worker parked out of work (`shard == NO_SHARD`, `task ==
    /// NO_TASK`).
    Stalled,
    /// The matching wake-up for a [`EventKind::Stalled`] episode.
    Resumed,
    /// A task's dependence count reached zero. `aux` is the tag of the
    /// finishing task whose completion released it, or [`NO_TASK`] if
    /// the task was ready at submission.
    Ready,
    /// A worker stole the task from another worker's deque.
    Stolen,
    /// A worker began executing the task's body.
    ExecStart,
    /// The task's body returned.
    ExecDone,
    /// A wake record for the task was placed on its home shard's
    /// kick-off list. `aux` is the finisher (waker) tag.
    WakePosted,
    /// The wake record was handed to a finisher's report (the task is
    /// on its way to a ready queue).
    WakeDelivered,
    /// The task fully retired from the dependence tables (its last
    /// address group was drained).
    Finished,
}

impl EventKind {
    /// Every kind, in lifecycle order.
    pub const ALL: [EventKind; 12] = [
        EventKind::Submitted,
        EventKind::DepCheckStart,
        EventKind::DepCheckDone,
        EventKind::Stalled,
        EventKind::Resumed,
        EventKind::Ready,
        EventKind::Stolen,
        EventKind::ExecStart,
        EventKind::ExecDone,
        EventKind::WakePosted,
        EventKind::WakeDelivered,
        EventKind::Finished,
    ];

    /// Stable display name (used by the Chrome-trace export).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Submitted => "Submitted",
            EventKind::DepCheckStart => "DepCheckStart",
            EventKind::DepCheckDone => "DepCheckDone",
            EventKind::Stalled => "Stalled",
            EventKind::Resumed => "Resumed",
            EventKind::Ready => "Ready",
            EventKind::Stolen => "Stolen",
            EventKind::ExecStart => "ExecStart",
            EventKind::ExecDone => "ExecDone",
            EventKind::WakePosted => "WakePosted",
            EventKind::WakeDelivered => "WakeDelivered",
            EventKind::Finished => "Finished",
        }
    }
}

/// One recorded lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number, allocated by one atomic fetch-add at
    /// emission. Because all emissions increment the same atomic, any
    /// two causally-ordered emissions (same thread, or linked by a
    /// release/acquire edge such as a lock hand-off, a queue push/pop,
    /// or the dependence-counter decrement chain) get strictly
    /// increasing `seq` values — so per-task lifecycle order can be
    /// asserted exactly, immune to timestamp granularity.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The task tag this event concerns, or [`NO_TASK`].
    pub task: u64,
    /// Kind-specific companion tag (the waker for [`EventKind::Ready`]
    /// and [`EventKind::WakePosted`]), or [`NO_TASK`].
    pub aux: u64,
    /// Home shard of the address group involved, or [`NO_SHARD`].
    pub shard: u32,
    /// Worker index of the emitting thread, or [`NO_WORKER`].
    pub worker: u32,
    /// Nanoseconds since the recorder's epoch (monotonic clock).
    pub ts_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_named() {
        for (i, a) in EventKind::ALL.iter().enumerate() {
            for b in &EventKind::ALL[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.name(), b.name());
            }
        }
        assert_eq!(EventKind::ALL.len(), 12);
    }
}
