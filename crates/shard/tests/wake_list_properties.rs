//! Property tests for the MPSC wake list (`crossbeam::queue::PushList`)
//! and for clean shutdown with undelivered wakes parked.
//!
//! The list is model-checked against a reference `Mutex<Vec>`: whatever
//! interleaving of pushes and drains runs — sequential and scripted, or
//! genuinely concurrent across producer threads racing a drainer — the
//! drained output must be exactly the reference multiset, with no wake
//! lost, none duplicated, and per-producer FIFO order preserved (the
//! ordering guarantee `vendor/README.md` documents).

use crossbeam::queue::PushList;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scripted sequential interleaving: ops are "push value" or "drain
    /// now", mirrored onto a `Mutex<Vec>` model. After every drain the
    /// list must have yielded exactly what the model held, in order.
    #[test]
    fn scripted_push_drain_matches_mutex_vec_model(
        ops in prop::collection::vec(prop_oneof![
            (0u64..1000).prop_map(Some), // push
            Just(None),                  // drain
        ], 1..200),
    ) {
        let list = PushList::new();
        let model: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        for op in ops {
            match op {
                Some(v) => {
                    list.push(v);
                    model.lock().push(v);
                }
                None => {
                    let got: Vec<u64> = list.drain().collect();
                    let expect: Vec<u64> = model.lock().drain(..).collect();
                    prop_assert_eq!(got, expect, "drain diverged from the model");
                }
            }
        }
        let got: Vec<u64> = list.drain().collect();
        let expect: Vec<u64> = model.lock().drain(..).collect();
        prop_assert_eq!(got, expect, "final drain diverged from the model");
        prop_assert!(list.is_empty());
    }

    /// Concurrent producers race a live drainer: every pushed wake is
    /// drained exactly once (multiset equality with the reference) and
    /// each producer's wakes come out in the order it pushed them.
    #[test]
    fn concurrent_push_drain_loses_and_duplicates_nothing(
        per_producer in prop::collection::vec(1u64..400, 2..5),
    ) {
        let list = Arc::new(PushList::new());
        let reference: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        let total: u64 = per_producer.iter().sum();
        let producers: Vec<_> = per_producer
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                let list = Arc::clone(&list);
                let items: Vec<(u64, u64)> = (0..n).map(|i| (p as u64, i)).collect();
                reference.lock().extend(items.iter().copied());
                std::thread::spawn(move || {
                    for item in items {
                        list.push(item);
                    }
                })
            })
            .collect();
        // Drain concurrently with the pushes, like a finisher that keeps
        // claiming the wake list while others post.
        let mut got: Vec<(u64, u64)> = Vec::new();
        while (got.len() as u64) < total {
            got.extend(list.drain());
        }
        for h in producers {
            h.join().unwrap();
        }
        got.extend(list.drain());
        let mut expect = reference.lock().clone();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect, "multiset of drained wakes diverged");
        // Per-producer FIFO across interleaved drains.
        let mut next = vec![0u64; per_producer.len()];
        for (p, i) in got {
            prop_assert_eq!(i, next[p as usize], "producer {} out of order", p);
            next[p as usize] = i + 1;
        }
        prop_assert!(list.is_empty());
    }
}

/// Clean shutdown with undelivered wakes parked: wake records still
/// sitting on a wake list when it drops — and payloads still parked in
/// never-woken tasks when a dispatcher drops — must all be released
/// (observed through `Arc` strong counts).
#[test]
fn shutdown_with_undelivered_wakes_drops_every_record() {
    // Records parked on the list itself.
    let tracker = Arc::new(());
    {
        let list: PushList<(u64, Arc<()>)> = PushList::new();
        for i in 0..32 {
            list.push((i, Arc::clone(&tracker)));
        }
        // A claimed-but-abandoned drain (owner dies mid-delivery) drops
        // its chain; the list drop covers the rest.
        let mut drain = list.drain();
        let _ = drain.next();
        list.push((99, Arc::clone(&tracker)));
        drop(drain);
    }
    assert_eq!(Arc::strong_count(&tracker), 1, "wake records leaked");

    // Payloads parked in never-woken tasks inside a dispatcher.
    use nexuspp_core::{NexusConfig, ShardCapacity};
    use nexuspp_shard::{ShardDispatcher, WakeMode};
    use nexuspp_trace::Param;
    let payload_tracker = Arc::new(());
    for mode in [WakeMode::Locked, WakeMode::LockFree] {
        let d = ShardDispatcher::<Arc<()>>::with_mode(
            4,
            &NexusConfig::unbounded(),
            ShardCapacity::Unbounded,
            mode,
        );
        let producer = d.submit(
            1,
            0,
            &[Param::output(0x100, 4)],
            Arc::clone(&payload_tracker),
        );
        let _unused = producer.ready.expect("producer is independent");
        for c in 0..16u64 {
            let r = d.submit(
                1,
                1 + c,
                &[Param::input(0x100, 4)],
                Arc::clone(&payload_tracker),
            );
            assert!(r.ready.is_none(), "consumers park behind the producer");
            drop(r.ticket);
        }
        // The producer never finishes: every consumer payload stays
        // parked. Dropping the dispatcher must free them all.
        drop(producer.ticket);
        drop(d);
    }
    assert_eq!(
        Arc::strong_count(&payload_tracker),
        1,
        "parked payloads leaked at dispatcher shutdown"
    );
}

/// The drain-ownership protocol the dispatcher builds on the list: a
/// poster that loses the claim race may return immediately, because the
/// owner re-checks after releasing — no wake is ever stranded.
#[test]
fn claim_protocol_never_strands_a_wake() {
    const ROUNDS: u64 = 2000;
    let list = Arc::new(PushList::new());
    let owner = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(Mutex::new(BTreeSet::new()));
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let list = Arc::clone(&list);
            let owner = Arc::clone(&owner);
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    list.push(t * ROUNDS + i);
                    // The dispatcher's deliver step: claim by CAS, drain,
                    // release, re-check; losers skip.
                    loop {
                        if list.is_empty() {
                            break;
                        }
                        if owner.swap(true, Ordering::SeqCst) {
                            break;
                        }
                        let got: Vec<u64> = list.drain().collect();
                        delivered.lock().extend(got);
                        owner.store(false, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
    // One last sweep mirrors the final finisher's re-check.
    delivered.lock().extend(list.drain());
    assert_eq!(
        delivered.lock().len() as u64,
        4 * ROUNDS,
        "the claim/release/re-check protocol lost wakes"
    );
}
