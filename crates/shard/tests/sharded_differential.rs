//! Three-way differential testing: for every shard count N ∈ {1, 2, 4, 8},
//! the sharded engine must impose exactly the same execution constraints
//! as the single [`DependencyEngine`] and as the explicit-DAG oracle.
//!
//! Strategy: random task streams over a small address space (heavy
//! RAW/WAW/WAR collision), submitted to all three resolvers; completions
//! picked randomly (seeded) among the commonly-ready tasks; the three
//! ready sets compared order-insensitively at every stable point (after
//! each task is fully submitted everywhere, and after every completion in
//! the drain phase). Run once with a roomy growable configuration (pure
//! protocol) and once with deliberately tiny fixed capacities so
//! pool-full rejections and dependence-table-full stall/resume paths are
//! on the hot path for both the single and the sharded engine — whichever
//! stalls first, the stall is resolved by finishing ready tasks in *all
//! three* resolvers, like the real machines.
//!
//! Mid-submission (while one resolver's check is stalled and completions
//! are being used to free space) the sets may transiently differ by the
//! in-flight task — one resolver may already consider it wakeable while
//! the oracle has not seen it — which is why comparisons happen at stable
//! points and completions are drawn from the intersection.

use nexuspp_core::engine::CheckProgress;
use nexuspp_core::oracle::OracleResolver;
use nexuspp_core::pool::PoolError;
use nexuspp_core::{DependencyEngine, NexusConfig, ShardCapacity, TdIndex};
use nexuspp_desim::Rng;
use nexuspp_shard::{ShardDispatcher, ShardedCheck, ShardedEngine, TaskId, TaskTicket, WakeMode};
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{AccessMode, Param};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

#[derive(Debug, Clone)]
struct GenTask {
    params: Vec<Param>,
}

fn mode_strategy() -> impl Strategy<Value = AccessMode> {
    prop_oneof![
        Just(AccessMode::In),
        Just(AccessMode::Out),
        Just(AccessMode::InOut),
    ]
}

fn task_strategy(addr_space: u64, max_params: usize) -> impl Strategy<Value = GenTask> {
    prop::collection::vec((0..addr_space, mode_strategy()), 1..=max_params).prop_map(|ps| {
        let params: Vec<Param> = ps
            .into_iter()
            .map(|(a, m)| Param::new(0x1000 + a * 64, 16, m))
            .collect();
        GenTask {
            params: normalize_params(&params),
        }
    })
}

/// All three resolvers plus the bookkeeping to drive them in step.
struct Trio {
    single: DependencyEngine,
    sharded: ShardedEngine,
    oracle: OracleResolver,
    td_of_tag: HashMap<u64, TdIndex>,
    id_of_tag: HashMap<u64, TaskId>,
    single_ready: BTreeSet<u64>,
    sharded_ready: BTreeSet<u64>,
}

impl Trio {
    fn new(cfg: &NexusConfig, n_shards: usize) -> Self {
        Trio {
            single: DependencyEngine::new(cfg),
            sharded: ShardedEngine::new(n_shards, cfg),
            oracle: OracleResolver::new(),
            td_of_tag: HashMap::new(),
            id_of_tag: HashMap::new(),
            single_ready: BTreeSet::new(),
            sharded_ready: BTreeSet::new(),
        }
    }

    fn oracle_ready(&self) -> BTreeSet<u64> {
        self.oracle
            .ready_set()
            .into_iter()
            .map(|i| i as u64)
            .collect()
    }

    /// Finish one commonly-ready task (seeded random pick) in all three
    /// resolvers, applying each resolver's wake-ups to its own ready set.
    fn finish_one(&mut self, rng: &mut Rng) {
        let oracle_ready = self.oracle_ready();
        let candidates: Vec<u64> = self
            .single_ready
            .iter()
            .copied()
            .filter(|t| self.sharded_ready.contains(t) && oracle_ready.contains(t))
            .collect();
        assert!(!candidates.is_empty(), "no commonly-ready task (deadlock)");
        let pick = candidates[rng.gen_range(candidates.len() as u64) as usize];
        self.single_ready.remove(&pick);
        self.sharded_ready.remove(&pick);
        let td = self.td_of_tag.remove(&pick).unwrap();
        let id = self.id_of_tag.remove(&pick).unwrap();

        let single_fin = self.single.finish(td);
        assert_eq!(single_fin.tag, pick);
        for t in single_fin.newly_ready {
            self.single_ready.insert(self.single.tag_of(t));
        }
        let sharded_fin = self.sharded.finish(id);
        assert_eq!(sharded_fin.tag, pick);
        for t in sharded_fin.newly_ready {
            self.sharded_ready.insert(self.sharded.tag_of(t));
        }
        self.oracle.finish(pick as usize);
    }

    /// Stable-point invariant: all three resolvers agree on the ready set.
    fn assert_ready_sets_match(&self, context: &str) {
        let oracle_ready = self.oracle_ready();
        assert_eq!(
            self.single_ready, oracle_ready,
            "single-engine ready set diverges {context}"
        );
        assert_eq!(
            self.sharded_ready, oracle_ready,
            "sharded ready set diverges {context}"
        );
    }
}

/// Drive all three resolvers through the workload, resolving capacity
/// stalls in any of them by finishing ready tasks in all of them.
fn run_differential(tasks: &[GenTask], cfg: &NexusConfig, n_shards: usize, seed: u64) {
    let mut trio = Trio::new(cfg, n_shards);
    let mut rng = Rng::new(seed);

    for (tag, task) in tasks.iter().enumerate() {
        let tag = tag as u64;
        // Admit into the single engine (retry on pool-full).
        let td = loop {
            match trio.single.admit(0xF, tag, task.params.clone()) {
                Ok((td, _)) => break td,
                Err(PoolError::PoolFull { .. }) => trio.finish_one(&mut rng),
                Err(e @ PoolError::TaskTooLarge { .. }) => {
                    panic!("generator produced an unexecutable task: {e:?}")
                }
            }
        };
        trio.td_of_tag.insert(tag, td);
        // Admit into the sharded engine (its per-shard pools fill at
        // different times; retry the same way).
        let id = loop {
            match trio.sharded.admit(0xF, tag, task.params.clone()) {
                Ok((id, _)) => break id,
                Err(PoolError::PoolFull { .. }) => trio.finish_one(&mut rng),
                Err(e @ PoolError::TaskTooLarge { .. }) => {
                    panic!("generator produced an unexecutable task: {e:?}")
                }
            }
        };
        trio.id_of_tag.insert(tag, id);
        // Check both, resuming either across table-full stalls. Wake-ups
        // that land on the in-flight task during the stall interleave are
        // absorbed by each resolver's own ready set.
        loop {
            match trio.single.check(td) {
                CheckProgress::Done { ready, .. } => {
                    if ready {
                        trio.single_ready.insert(tag);
                    }
                    break;
                }
                CheckProgress::Stalled { .. } => trio.finish_one(&mut rng),
            }
        }
        loop {
            match trio.sharded.check(id) {
                ShardedCheck::Done { ready, .. } => {
                    if ready {
                        trio.sharded_ready.insert(tag);
                    }
                    break;
                }
                ShardedCheck::Stalled { .. } => trio.finish_one(&mut rng),
            }
        }
        let (oid, _) = trio.oracle.submit(&task.params);
        assert_eq!(oid as u64, tag);
        // Stable point: every resolver has fully ingested the task.
        trio.assert_ready_sets_match(&format!("after submitting task {tag}"));
        trio.single.table().check_invariants();
        for s in 0..trio.sharded.n_shards() {
            trio.sharded.shard(s).table().check_invariants();
        }
    }

    // Drain everything; each completion is a stable point.
    while !trio.single_ready.is_empty() {
        trio.finish_one(&mut rng);
        trio.assert_ready_sets_match("during drain");
    }
    assert!(trio.oracle.all_done(), "oracle has unfinished tasks");
    assert_eq!(trio.single.in_flight(), 0);
    assert_eq!(trio.sharded.in_flight(), 0);
    assert_eq!(trio.single.table().occupied(), 0, "single engine leaked");
    for s in 0..trio.sharded.n_shards() {
        assert_eq!(
            trio.sharded.shard(s).table().occupied(),
            0,
            "shard {s} leaked dependence entries"
        );
        assert_eq!(
            trio.sharded.shard(s).pool().in_use(),
            0,
            "shard {s} leaked descriptors"
        );
    }
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Both wake modes of the concurrent dispatcher, driven in lockstep
/// against the oracle: locked kick-off lists and lock-free wake lists
/// must produce identical ready sets at every stable point. Driven
/// single-threadedly so every wake a finish produces must surface in
/// that same call's report (post + self-drain) — the strictest
/// equivalence the decoupled wake path can be held to.
fn run_dispatcher_differential(tasks: &[GenTask], n_shards: usize, seed: u64) {
    let cfg = NexusConfig::unbounded();
    let locked = ShardDispatcher::<u64>::with_mode(
        n_shards,
        &cfg,
        ShardCapacity::Unbounded,
        WakeMode::Locked,
    );
    let lock_free = ShardDispatcher::<u64>::with_mode(
        n_shards,
        &cfg,
        ShardCapacity::Unbounded,
        WakeMode::LockFree,
    );
    let mut oracle = OracleResolver::new();
    let mut rng = Rng::new(seed);
    // tag → ticket, for each mode; the key set is the mode's ready set.
    let mut ready: [BTreeMap<u64, TaskTicket<u64>>; 2] = [BTreeMap::new(), BTreeMap::new()];

    let assert_match =
        |ready: &[BTreeMap<u64, TaskTicket<u64>>; 2], oracle: &OracleResolver, context: &str| {
            let oracle_ready: BTreeSet<u64> =
                oracle.ready_set().into_iter().map(|i| i as u64).collect();
            for (m, name) in [(0, "locked"), (1, "lock-free")] {
                let got: BTreeSet<u64> = ready[m].keys().copied().collect();
                assert_eq!(got, oracle_ready, "{name} dispatcher diverges {context}");
            }
        };

    let finish_one = |ready: &mut [BTreeMap<u64, TaskTicket<u64>>; 2],
                      oracle: &mut OracleResolver,
                      rng: &mut Rng| {
        let candidates: Vec<u64> = ready[0].keys().copied().collect();
        assert!(!candidates.is_empty(), "nothing ready (deadlock)");
        let pick = candidates[rng.gen_range(candidates.len() as u64) as usize];
        for (m, d) in [(0, &locked), (1, &lock_free)] {
            let ticket = ready[m].remove(&pick).expect("ready sets agreed");
            let report = d.finish(ticket);
            for (t, payload) in report.woken {
                assert_eq!(t.tag(), payload, "payload must travel with its task");
                ready[m].insert(payload, t);
            }
        }
        oracle.finish(pick as usize);
    };

    for (tag, task) in tasks.iter().enumerate() {
        let tag = tag as u64;
        for (m, d) in [(0usize, &locked), (1, &lock_free)] {
            let r = d.submit(0xF, tag, &task.params, tag);
            if let Some(p) = r.ready {
                assert_eq!(p, tag);
                ready[m].insert(tag, r.ticket);
            }
            // Parked tickets resurface through some report's woken list.
        }
        let (oid, _) = oracle.submit(&task.params);
        assert_eq!(oid as u64, tag);
        assert_match(&ready, &oracle, &format!("after submitting task {tag}"));
    }
    while !ready[0].is_empty() {
        finish_one(&mut ready, &mut oracle, &mut rng);
        assert_match(&ready, &oracle, "during drain");
    }
    assert!(oracle.all_done(), "oracle has unfinished tasks");
    for d in [&locked, &lock_free] {
        assert_eq!(d.sub_descriptors_in_flight(), 0);
        assert!(d.wake_list_depths().iter().all(|&n| n == 0));
    }
    assert_eq!(
        locked.wake_counts().delivered,
        lock_free.wake_counts().delivered,
        "both modes must deliver exactly the same number of wakes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Roomy growable configuration: pure protocol semantics at every
    /// shard count.
    #[test]
    fn sharded_matches_single_and_oracle_unbounded(
        tasks in prop::collection::vec(task_strategy(10, 5), 1..50),
        seed in any::<u64>(),
    ) {
        for n in SHARD_COUNTS {
            run_differential(&tasks, &NexusConfig::unbounded(), n, seed);
        }
    }

    /// Tiny fixed configuration: dummy tasks, kick-off extensions,
    /// pool-full and table-full stall/resume on the hot path — in the
    /// single engine and in individual shards (whose smaller partitions
    /// stall at different points).
    #[test]
    fn sharded_matches_single_and_oracle_tiny_fixed(
        tasks in prop::collection::vec(task_strategy(8, 4), 1..40),
        seed in any::<u64>(),
    ) {
        let cfg = NexusConfig {
            task_pool_entries: 8,
            params_per_td: 3,
            dep_table_entries: 24,
            kickoff_entries: 2,
            growable: false,
        };
        for n in SHARD_COUNTS {
            run_differential(&tasks, &cfg, n, seed);
        }
    }

    /// The concurrent dispatcher's wake modes: locked kick-off lists and
    /// lock-free wake lists agree with the oracle (and hence with each
    /// other and the engines above) on every ready set.
    #[test]
    fn dispatcher_wake_modes_match_oracle(
        tasks in prop::collection::vec(task_strategy(10, 5), 1..40),
        seed in any::<u64>(),
    ) {
        for n in SHARD_COUNTS {
            run_dispatcher_differential(&tasks, n, seed);
        }
    }

    /// Wide address space: low collision, exercising the insert path and
    /// shard routing over scattered hashes.
    #[test]
    fn sharded_matches_single_and_oracle_wide(
        tasks in prop::collection::vec(task_strategy(2000, 4), 1..40),
        seed in any::<u64>(),
    ) {
        let cfg = NexusConfig {
            task_pool_entries: 64,
            params_per_td: 4,
            dep_table_entries: 128,
            kickoff_entries: 4,
            growable: false,
        };
        for n in SHARD_COUNTS {
            run_differential(&tasks, &cfg, n, seed);
        }
    }
}

/// A long deterministic soak through the tiny fixed configuration at
/// every shard count: thousands of tasks, heavier than the proptest
/// cases.
#[test]
fn soak_tiny_config_deterministic() {
    let mut rng = Rng::new(0x5AAD_BEEF);
    let mut tasks = Vec::new();
    for _ in 0..1200 {
        let n = 1 + rng.gen_range(4) as usize;
        let params: Vec<Param> = (0..n)
            .map(|_| {
                let addr = 0x1000 + rng.gen_range(12) * 64;
                let mode = match rng.gen_range(3) {
                    0 => AccessMode::In,
                    1 => AccessMode::Out,
                    _ => AccessMode::InOut,
                };
                Param::new(addr, 16, mode)
            })
            .collect();
        tasks.push(GenTask {
            params: normalize_params(&params),
        });
    }
    let cfg = NexusConfig {
        task_pool_entries: 10,
        params_per_td: 3,
        dep_table_entries: 24,
        kickoff_entries: 2,
        growable: false,
    };
    for n in SHARD_COUNTS {
        run_differential(&tasks, &cfg, n, 42);
    }
}
