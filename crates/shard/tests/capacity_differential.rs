//! Capacity-differential testing: a *bounded* sharded engine —
//! `ShardedEngine::with_capacity(N, C)`, whose submissions stall and
//! retry on full shards — must execute exactly the same task set, under
//! exactly the same readiness constraints, as the unbounded sharded
//! engine, the single [`DependencyEngine`], and the explicit-DAG oracle.
//!
//! Strategy: random task streams over small address sets (heavy
//! RAW/WAW/WAR collision), submitted in program order to all four
//! resolvers. The bounded engine is the pacing one: when an admission is
//! rejected because a shard is at capacity, a commonly-ready task is
//! finished in *all four* resolvers and the admission retried — the
//! stall-then-resume interleaving the finite hardware tables force.
//! Because the retry loop never leaves a task half-ingested (admission is
//! atomic across shards), every task is eventually resident in all four,
//! so at each stable point the four ready sets must agree exactly, and at
//! the end every task must have finished exactly once with no leaked
//! residency slots.
//!
//! Swept: shard count N ∈ {1, 2, 4} × capacity C ∈ {1, 2, 8, ∞}. At
//! C = 1 almost every submission stalls (the deepest interleaving); at
//! C = ∞ the bounded engine degenerates to the unbounded one and the
//! harness doubles as a no-regression check.

use nexuspp_core::oracle::OracleResolver;
use nexuspp_core::pool::PoolError;
use nexuspp_core::{DependencyEngine, NexusConfig, ShardCapacity, TdIndex};
use nexuspp_desim::Rng;
use nexuspp_shard::{ShardedCheck, ShardedEngine, TaskId};
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{AccessMode, Param};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone)]
struct GenTask {
    params: Vec<Param>,
}

fn mode_strategy() -> impl Strategy<Value = AccessMode> {
    prop_oneof![
        Just(AccessMode::In),
        Just(AccessMode::Out),
        Just(AccessMode::InOut),
    ]
}

fn task_strategy(addr_space: u64, max_params: usize) -> impl Strategy<Value = GenTask> {
    prop::collection::vec((0..addr_space, mode_strategy()), 1..=max_params).prop_map(|ps| {
        let params: Vec<Param> = ps
            .into_iter()
            .map(|(a, m)| Param::new(0x2000 + a * 64, 16, m))
            .collect();
        GenTask {
            params: normalize_params(&params),
        }
    })
}

/// The four resolvers plus the bookkeeping to drive them in step.
struct Quad {
    bounded: ShardedEngine,
    unbounded: ShardedEngine,
    single: DependencyEngine,
    oracle: OracleResolver,
    bid_of_tag: HashMap<u64, TaskId>,
    uid_of_tag: HashMap<u64, TaskId>,
    td_of_tag: HashMap<u64, TdIndex>,
    bounded_ready: BTreeSet<u64>,
    unbounded_ready: BTreeSet<u64>,
    single_ready: BTreeSet<u64>,
    /// Exactly-once ledger: every tag finishes once, none twice.
    finished: BTreeSet<u64>,
}

impl Quad {
    fn new(cfg: &NexusConfig, n_shards: usize, capacity: ShardCapacity) -> Self {
        Quad {
            bounded: ShardedEngine::with_capacity(n_shards, cfg, capacity),
            unbounded: ShardedEngine::new(n_shards, cfg),
            single: DependencyEngine::new(cfg),
            oracle: OracleResolver::new(),
            bid_of_tag: HashMap::new(),
            uid_of_tag: HashMap::new(),
            td_of_tag: HashMap::new(),
            bounded_ready: BTreeSet::new(),
            unbounded_ready: BTreeSet::new(),
            single_ready: BTreeSet::new(),
            finished: BTreeSet::new(),
        }
    }

    fn oracle_ready(&self) -> BTreeSet<u64> {
        self.oracle
            .ready_set()
            .into_iter()
            .map(|i| i as u64)
            .collect()
    }

    /// Finish one commonly-ready task (seeded random pick) in all four
    /// resolvers, recording it in the exactly-once ledger.
    fn finish_one(&mut self, rng: &mut Rng) {
        let oracle_ready = self.oracle_ready();
        let candidates: Vec<u64> = self
            .bounded_ready
            .iter()
            .copied()
            .filter(|t| {
                self.unbounded_ready.contains(t)
                    && self.single_ready.contains(t)
                    && oracle_ready.contains(t)
            })
            .collect();
        assert!(
            !candidates.is_empty(),
            "no commonly-ready task: the bounded engine is deadlocked or diverged"
        );
        let pick = candidates[rng.gen_range(candidates.len() as u64) as usize];
        self.bounded_ready.remove(&pick);
        self.unbounded_ready.remove(&pick);
        self.single_ready.remove(&pick);
        assert!(
            self.finished.insert(pick),
            "task {pick} finished twice (exactly-once violated)"
        );

        let bid = self.bid_of_tag.remove(&pick).unwrap();
        let fin = self.bounded.finish(bid);
        assert_eq!(fin.tag, pick);
        for t in fin.newly_ready {
            self.bounded_ready.insert(self.bounded.tag_of(t));
        }
        let uid = self.uid_of_tag.remove(&pick).unwrap();
        let fin = self.unbounded.finish(uid);
        assert_eq!(fin.tag, pick);
        for t in fin.newly_ready {
            self.unbounded_ready.insert(self.unbounded.tag_of(t));
        }
        let td = self.td_of_tag.remove(&pick).unwrap();
        let fin = self.single.finish(td);
        assert_eq!(fin.tag, pick);
        for t in fin.newly_ready {
            self.single_ready.insert(self.single.tag_of(t));
        }
        self.oracle.finish(pick as usize);
    }

    /// Stable-point invariant: all four resolvers agree on the ready set.
    fn assert_ready_sets_match(&self, context: &str) {
        let oracle_ready = self.oracle_ready();
        assert_eq!(
            self.bounded_ready, oracle_ready,
            "bounded ready set diverges {context}"
        );
        assert_eq!(
            self.unbounded_ready, oracle_ready,
            "unbounded ready set diverges {context}"
        );
        assert_eq!(
            self.single_ready, oracle_ready,
            "single-engine ready set diverges {context}"
        );
    }
}

/// Drive all four resolvers through the workload, resolving the bounded
/// engine's capacity stalls by finishing commonly-ready tasks everywhere.
fn run_capacity_differential(
    tasks: &[GenTask],
    n_shards: usize,
    capacity: ShardCapacity,
    seed: u64,
) {
    let cfg = NexusConfig::unbounded();
    let mut quad = Quad::new(&cfg, n_shards, capacity);
    let mut rng = Rng::new(seed);
    let mut stall_resumes = 0u64;

    for (tag, task) in tasks.iter().enumerate() {
        let tag = tag as u64;
        // The reference resolvers ingest unconditionally.
        let (uid, u_ready) = quad
            .unbounded
            .submit(0xF, tag, task.params.clone())
            .unwrap();
        quad.uid_of_tag.insert(tag, uid);
        if u_ready {
            quad.unbounded_ready.insert(tag);
        }
        let (td, s_ready) = quad.single.submit(0xF, tag, task.params.clone()).unwrap();
        quad.td_of_tag.insert(tag, td);
        if s_ready {
            quad.single_ready.insert(tag);
        }
        let (oid, _) = quad.oracle.submit(&task.params);
        assert_eq!(oid as u64, tag);
        // The bounded engine stalls and retries: every rejection is
        // retryable, names a full shard, and resolves after completions.
        let bid = loop {
            match quad.bounded.try_admit(0xF, tag, task.params.clone()) {
                Ok((id, _)) => break id,
                Err(rej) => {
                    assert!(
                        matches!(rej.error, PoolError::PoolFull { .. }),
                        "capacity rejections must be retryable: {rej:?}"
                    );
                    let limit = capacity.limit().expect("unbounded engines cannot stall");
                    assert_eq!(
                        quad.bounded.resident_on(rej.shard as usize),
                        limit,
                        "rejection from a shard that is not actually full"
                    );
                    stall_resumes += 1;
                    quad.finish_one(&mut rng);
                }
            }
        };
        quad.bid_of_tag.insert(tag, bid);
        match quad.bounded.check(bid) {
            ShardedCheck::Done { ready, .. } => {
                if ready {
                    quad.bounded_ready.insert(tag);
                }
            }
            other => panic!("growable tables cannot stall mid-check: {other:?}"),
        }
        // Stable point: every resolver has fully ingested the task.
        quad.assert_ready_sets_match(&format!(
            "after submitting task {tag} (N={n_shards}, C={capacity})"
        ));
    }

    // Drain everything; each completion is a stable point.
    while !quad.bounded_ready.is_empty() {
        quad.finish_one(&mut rng);
        quad.assert_ready_sets_match(&format!("during drain (N={n_shards}, C={capacity})"));
    }

    // Exactly-once, fully drained, no leaked residency.
    assert_eq!(quad.finished.len() as u64, tasks.len() as u64);
    assert!(quad.oracle.all_done(), "oracle has unfinished tasks");
    assert_eq!(quad.bounded.in_flight(), 0);
    assert_eq!(quad.unbounded.in_flight(), 0);
    assert_eq!(quad.single.in_flight(), 0);
    for s in 0..n_shards {
        assert_eq!(
            quad.bounded.resident_on(s),
            0,
            "shard {s} leaked residency slots"
        );
        assert_eq!(quad.bounded.shard(s).pool().in_use(), 0);
        assert_eq!(quad.bounded.shard(s).table().occupied(), 0);
    }
    if capacity == ShardCapacity::Bounded(1) && tasks.len() > n_shards {
        // The tight bound must actually exercise the stall path on any
        // stream long enough to overlap itself.
        let conflict_free = tasks.len() <= 1;
        assert!(
            stall_resumes > 0 || conflict_free,
            "C=1 over {} tasks never stalled — the bound is not enforced",
            tasks.len()
        );
    }
}

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const CAPACITIES: [ShardCapacity; 4] = [
    ShardCapacity::Bounded(1),
    ShardCapacity::Bounded(2),
    ShardCapacity::Bounded(8),
    ShardCapacity::Unbounded,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAGs over a colliding address set: the full N × C sweep.
    #[test]
    fn bounded_matches_unbounded_single_and_oracle(
        tasks in prop::collection::vec(task_strategy(8, 4), 1..40),
        seed in any::<u64>(),
    ) {
        for n in SHARD_COUNTS {
            for c in CAPACITIES {
                run_capacity_differential(&tasks, n, c, seed);
            }
        }
    }

    /// Wide random address sets: low collision, so stalls come from
    /// capacity pressure alone (every task independent and resident).
    #[test]
    fn bounded_matches_on_wide_address_sets(
        tasks in prop::collection::vec(task_strategy(3000, 3), 1..40),
        seed in any::<u64>(),
    ) {
        for n in SHARD_COUNTS {
            for c in [ShardCapacity::Bounded(1), ShardCapacity::Bounded(2)] {
                run_capacity_differential(&tasks, n, c, seed);
            }
        }
    }
}

/// A long deterministic soak: heavier than the proptest cases, same
/// invariants, every (N, C) combination.
#[test]
fn soak_capacity_sweep_deterministic() {
    let mut rng = Rng::new(0xCAFA_57A1);
    let mut tasks = Vec::new();
    for _ in 0..600 {
        let n = 1 + rng.gen_range(4) as usize;
        let params: Vec<Param> = (0..n)
            .map(|_| {
                let addr = 0x2000 + rng.gen_range(10) * 64;
                let mode = match rng.gen_range(3) {
                    0 => AccessMode::In,
                    1 => AccessMode::Out,
                    _ => AccessMode::InOut,
                };
                Param::new(addr, 16, mode)
            })
            .collect();
        tasks.push(GenTask {
            params: normalize_params(&params),
        });
    }
    for n in SHARD_COUNTS {
        for c in CAPACITIES {
            run_capacity_differential(&tasks, n, c, 77);
        }
    }
}

/// The bounded batch front-end must match serial bounded submission:
/// chunks offered through `submit_batch_bounded`, parking the remainder
/// on a full shard and re-offering after a completion, execute the same
/// exactly-once task set the oracle prescribes.
#[test]
fn bounded_batch_front_end_drains_capacity_stress() {
    use nexuspp_workloads::CapacityStressSpec;
    for (n_shards, capacity) in [
        (2usize, ShardCapacity::Bounded(1)),
        (4, ShardCapacity::Bounded(2)),
        (4, ShardCapacity::Bounded(8)),
    ] {
        let trace = CapacityStressSpec {
            chains: 8,
            chain_len: 12,
            shards: n_shards as u32,
            wide_every: 3,
            exec_ns: 0,
        }
        .generate();
        let mut engine =
            ShardedEngine::with_capacity(n_shards, &NexusConfig::unbounded(), capacity);
        let mut oracle = OracleResolver::new();
        for t in &trace.tasks {
            let (oid, _) = oracle.submit(&t.params);
            assert_eq!(oid as u64, t.id);
        }
        let mut ready: Vec<TaskId> = Vec::new();
        let mut finished = BTreeSet::new();
        let mut offer: Vec<(u64, u64, Vec<Param>)> = trace
            .tasks
            .iter()
            .map(|t| (t.fptr, t.id, t.params.clone()))
            .collect();
        let mut rounds = 0u32;
        while !offer.is_empty() {
            rounds += 1;
            assert!(rounds < 100_000, "batch front-end livelocked");
            let out = engine.submit_batch_bounded(offer);
            ready.extend(out.submitted.iter().filter(|(_, r)| *r).map(|(id, _)| *id));
            offer = out.parked;
            if out.stalled.is_some() {
                // Park until a completion frees the stalled shard — here
                // the "finish report" is retiring one ready task.
                let id = ready.pop().expect("stalled with nothing ready: deadlock");
                let tag = engine.tag_of(id);
                assert!(oracle.ready_set().contains(&(tag as usize)));
                assert!(finished.insert(tag), "task {tag} ran twice");
                oracle.finish(tag as usize);
                ready.extend(engine.finish(id).newly_ready);
            }
        }
        while let Some(id) = ready.pop() {
            let tag = engine.tag_of(id);
            assert!(oracle.ready_set().contains(&(tag as usize)));
            assert!(finished.insert(tag), "task {tag} ran twice");
            oracle.finish(tag as usize);
            ready.extend(engine.finish(id).newly_ready);
        }
        assert_eq!(finished.len(), trace.len(), "N={n_shards} C={capacity}");
        assert!(oracle.all_done());
        assert_eq!(engine.in_flight(), 0);
    }
}

/// The bounded *dispatcher* across both wake modes: four worker threads
/// retire tasks while a submitter thread spawns a dependency-rich random
/// stream in program order, parking on full shards (capacity 1 and 2 put
/// the stall/retry handshake on the hot path). Locked kick-off lists and
/// lock-free wake lists must both execute every task exactly once, leak
/// nothing, resolve every stall episode, and leave no undelivered wake —
/// the threaded face of the single-threaded lockstep differential in
/// `sharded_differential.rs`.
#[test]
fn bounded_dispatcher_wake_modes_execute_exactly_once_under_stalls() {
    use nexuspp_shard::{ShardDispatcher, TaskTicket, WakeMode};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    /// Shared ready queue: tickets with their tag payloads.
    type ReadyQueue = Arc<Mutex<Vec<(TaskTicket<u64>, u64)>>>;

    const TASKS: u64 = 400;
    const WORKERS: usize = 4;
    let mut rng = Rng::new(0x3A4E_5EED);
    let stream: Vec<Vec<Param>> = (0..TASKS)
        .map(|_| {
            let n = 1 + rng.gen_range(3) as usize;
            let params: Vec<Param> = (0..n)
                .map(|_| {
                    let addr = 0x3000 + rng.gen_range(10) * 64;
                    let mode = match rng.gen_range(3) {
                        0 => AccessMode::In,
                        1 => AccessMode::Out,
                        _ => AccessMode::InOut,
                    };
                    Param::new(addr, 16, mode)
                })
                .collect();
            normalize_params(&params)
        })
        .collect();

    for wake_mode in [WakeMode::Locked, WakeMode::LockFree] {
        for (shards, capacity) in [
            (1usize, ShardCapacity::Bounded(2)),
            (4, ShardCapacity::Bounded(1)),
            (4, ShardCapacity::Bounded(8)),
        ] {
            let d = Arc::new(ShardDispatcher::<u64>::with_mode(
                shards,
                &NexusConfig::unbounded(),
                capacity,
                wake_mode,
            ));
            let ready: ReadyQueue = Arc::new(Mutex::new(Vec::new()));
            let completed = Arc::new(AtomicU64::new(0));
            let executed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let workers: Vec<_> = (0..WORKERS)
                .map(|_| {
                    let d = Arc::clone(&d);
                    let ready = Arc::clone(&ready);
                    let completed = Arc::clone(&completed);
                    let executed = Arc::clone(&executed);
                    std::thread::spawn(move || {
                        while completed.load(Ordering::SeqCst) < TASKS {
                            let next = ready.lock().unwrap().pop();
                            let Some((ticket, tag)) = next else {
                                std::thread::yield_now();
                                continue;
                            };
                            executed.lock().unwrap().push(tag);
                            let report = d.finish(ticket);
                            completed.fetch_add(report.completed, Ordering::SeqCst);
                            if !report.woken.is_empty() {
                                ready.lock().unwrap().extend(report.woken);
                            }
                        }
                    })
                })
                .collect();
            // Program-order submitter: parks on full shards; workers'
            // finish reports resume it.
            for (tag, params) in stream.iter().enumerate() {
                let r = d.submit(0xF, tag as u64, params, tag as u64);
                if let Some(p) = r.ready {
                    ready.lock().unwrap().push((r.ticket, p));
                }
            }
            for w in workers {
                w.join().unwrap();
            }
            let mut done = executed.lock().unwrap().clone();
            done.sort_unstable();
            assert_eq!(
                done,
                (0..TASKS).collect::<Vec<u64>>(),
                "{} N={shards} C={capacity}: tasks lost or duplicated",
                wake_mode.name()
            );
            assert_eq!(d.sub_descriptors_in_flight(), 0);
            assert!(
                d.wake_list_depths().iter().all(|&n| n == 0),
                "{}: undelivered wakes at quiescence",
                wake_mode.name()
            );
            for (s, c) in d.capacity_counts().iter().enumerate() {
                assert_eq!(
                    c.stalls_observed,
                    c.retries_resolved,
                    "{} N={shards} C={capacity} shard {s}: unresolved stall episodes",
                    wake_mode.name()
                );
                assert_eq!(c.resident, 0, "shard {s} leaked residency slots");
            }
        }
    }
}
