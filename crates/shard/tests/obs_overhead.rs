//! The recording-overhead acceptance gates.
//!
//! 1. A **disabled** recorder threaded through the dispatcher must cost
//!    within noise of no recorder at all on the wake-stress workload —
//!    the no-op path is one branch on an `Option`, taken before any
//!    clock read or atomic. Gated at 5% (plus a small absolute slack so
//!    micro-runs on a noisy host don't flake the relative bound).
//! 2. **Enabled** recording must not reintroduce shard-lock traffic on
//!    the lock-free wake path: the dispatcher emits wake events outside
//!    the shard locks, so `delivery_lock_acquisitions` stays zero under
//!    [`WakeMode::LockFree`] with a live recorder attached.

use nexuspp_obs::Recorder;
use nexuspp_shard::stress::{run_wake_stress_with, WakeStressSpec};
use nexuspp_shard::WakeMode;
use std::sync::Arc;
use std::time::Duration;

const ROUNDS: usize = 5;

fn spec() -> WakeStressSpec {
    WakeStressSpec {
        finishers: 4,
        producers: 256,
        consumers_per: 64,
        shards: 4,
    }
}

/// Best-of-N wall clock, interleaved with the competing configuration
/// by the caller so both see the same machine conditions.
fn timed(mode: WakeMode, rec: Option<Arc<Recorder>>) -> Duration {
    run_wake_stress_with(mode, &spec(), rec).elapsed
}

#[test]
fn disabled_recorder_overhead_within_five_percent() {
    let spec_check = spec();
    assert_eq!(spec_check.finishers, 4, "the gate is defined at 4 workers");
    // Warm-up: fault in both code paths before timing anything.
    timed(WakeMode::LockFree, None);
    timed(WakeMode::LockFree, Some(Arc::new(Recorder::disabled())));
    let mut base = Duration::MAX;
    let mut with_disabled = Duration::MAX;
    for _ in 0..ROUNDS {
        base = base.min(timed(WakeMode::LockFree, None));
        with_disabled = with_disabled.min(timed(
            WakeMode::LockFree,
            Some(Arc::new(Recorder::disabled())),
        ));
    }
    // 5% relative + 2ms absolute: the relative term is the gate, the
    // absolute term absorbs scheduler jitter when the whole run is a
    // few milliseconds.
    let bound = base.mul_f64(1.05) + Duration::from_millis(2);
    assert!(
        with_disabled <= bound,
        "disabled recorder overhead too high: baseline {base:?}, with disabled recorder \
         {with_disabled:?} (bound {bound:?})"
    );
}

#[test]
fn enabled_recording_keeps_wake_path_lock_free() {
    // Oversized rings: the submitting thread alone emits ~3 events per
    // task into one lane, and the gate below requires zero drops.
    let rec = Arc::new(Recorder::with_capacity(8, 1 << 17));
    let run = run_wake_stress_with(WakeMode::LockFree, &spec(), Some(Arc::clone(&rec)));
    assert_eq!(
        run.wake_counts.delivery_lock_acquisitions, 0,
        "recording must not add shard-lock acquisitions to the lock-free wake path"
    );
    // The run was actually observed: a live stream with no overflow.
    assert!(rec.recorded() > 0);
    assert_eq!(rec.dropped(), 0, "size the rings for the workload");
    let events = rec.drain();
    assert_eq!(events.len() as u64, rec.recorded());
}
