//! The recording-overhead acceptance gates.
//!
//! 1. A **disabled** recorder threaded through the dispatcher must cost
//!    within noise of no recorder at all on the wake-stress workload —
//!    the no-op path is one branch on an `Option`, taken before any
//!    clock read or atomic. Gated at 5% (plus a small absolute slack so
//!    micro-runs on a noisy host don't flake the relative bound).
//! 2. **Enabled** recording must not reintroduce shard-lock traffic on
//!    the lock-free wake path: the dispatcher emits wake events outside
//!    the shard locks, so `delivery_lock_acquisitions` stays zero under
//!    [`WakeMode::LockFree`] with a live recorder attached.
//! 3. A **live streaming collector** — a background thread draining the
//!    same rings while finishers emit — must cost ≤ 10% over enabled
//!    recording with a quiescent (post-run) drain. The producers' path
//!    is identical in both cases; the only added work is the collector
//!    thread's concurrent polling, so this bounds the price of *online*
//!    introspection relative to post-mortem recording. Measured with
//!    nonzero per-finish spin so the workload models real task bodies
//!    rather than a pure counter race.

use nexuspp_obs::{Collector, CollectorConfig, Recorder};
use nexuspp_shard::stress::{run_wake_stress_with, WakeStressSpec};
use nexuspp_shard::WakeMode;
use std::sync::Arc;
use std::time::Duration;

const ROUNDS: usize = 5;

fn spec() -> WakeStressSpec {
    WakeStressSpec {
        finishers: 4,
        producers: 256,
        consumers_per: 64,
        shards: 4,
        spin_ns: 0,
    }
}

/// Best-of-N wall clock, interleaved with the competing configuration
/// by the caller so both see the same machine conditions.
fn timed(mode: WakeMode, rec: Option<Arc<Recorder>>) -> Duration {
    run_wake_stress_with(mode, &spec(), rec).elapsed
}

#[test]
fn disabled_recorder_overhead_within_five_percent() {
    let spec_check = spec();
    assert_eq!(spec_check.finishers, 4, "the gate is defined at 4 workers");
    // Warm-up: fault in both code paths before timing anything.
    timed(WakeMode::LockFree, None);
    timed(WakeMode::LockFree, Some(Arc::new(Recorder::disabled())));
    let mut base = Duration::MAX;
    let mut with_disabled = Duration::MAX;
    for _ in 0..ROUNDS {
        base = base.min(timed(WakeMode::LockFree, None));
        with_disabled = with_disabled.min(timed(
            WakeMode::LockFree,
            Some(Arc::new(Recorder::disabled())),
        ));
    }
    // 5% relative + 2ms absolute: the relative term is the gate, the
    // absolute term absorbs scheduler jitter when the whole run is a
    // few milliseconds.
    let bound = base.mul_f64(1.05) + Duration::from_millis(2);
    assert!(
        with_disabled <= bound,
        "disabled recorder overhead too high: baseline {base:?}, with disabled recorder \
         {with_disabled:?} (bound {bound:?})"
    );
}

#[test]
fn live_collector_overhead_within_ten_percent_of_quiescent_recording() {
    // Real task bodies: each finish spins for 25 µs, so the run is
    // dominated by work the collector cannot perturb and the bound
    // measures streaming overhead, not scheduler jitter amplified
    // through a microsecond-scale counter race. The tracker work the
    // collector performs is proportional to *events*, not wall time,
    // so on a single-CPU host (where its processing is pure added
    // serial time) the gate is a statement about task granularity:
    // tasks this coarse keep online introspection under 10%.
    let spec = WakeStressSpec {
        spin_ns: 25_000,
        ..spec()
    };
    let quiescent = || {
        let rec = Arc::new(Recorder::with_capacity(8, 1 << 17));
        let elapsed =
            run_wake_stress_with(WakeMode::LockFree, &spec, Some(Arc::clone(&rec))).elapsed;
        let _ = rec.drain();
        elapsed
    };
    let live = || {
        // 5 ms polling: on a single-CPU host every collector wakeup
        // preempts a producer, so the poll cadence — not the event
        // volume — sets the overhead. 5 ms still gives tens of live
        // updates across the run.
        let collector = Collector::spawn(
            Arc::new(Recorder::with_capacity(8, 1 << 17)),
            CollectorConfig {
                interval: Duration::from_millis(5),
                ..CollectorConfig::default()
            },
        );
        let run = run_wake_stress_with(WakeMode::LockFree, &spec, Some(collector.recorder()));
        let report = collector.finish();
        // The collector really streamed the run, and streaming kept
        // the wake path lock-free.
        assert!(report.stream.released > 0);
        assert_eq!(run.wake_counts.delivery_lock_acquisitions, 0);
        run.elapsed
    };
    // Debug builds only exercise the path (the closures assert the
    // collector streamed and the wake path stayed lock-free): the 10%
    // bound is defined on optimized code — CI runs this gate with
    // `--release` — and an unoptimized tracker inflates the collector's
    // share of a single CPU far past what production runs pay.
    if cfg!(debug_assertions) {
        quiescent();
        live();
        return;
    }
    // Warm-up, then best-of-N interleaved so both configurations see
    // the same machine conditions.
    quiescent();
    live();
    let mut base = Duration::MAX;
    let mut streamed = Duration::MAX;
    for _ in 0..ROUNDS {
        base = base.min(quiescent());
        streamed = streamed.min(live());
    }
    // 10% relative + 3ms absolute: the relative term is the gate, the
    // absolute term absorbs thread spawn/join jitter on short runs.
    let bound = base.mul_f64(1.10) + Duration::from_millis(3);
    assert!(
        streamed <= bound,
        "live streaming collector overhead too high: quiescent recording {base:?}, \
         with live collector {streamed:?} (bound {bound:?})"
    );
}

#[test]
fn enabled_recording_keeps_wake_path_lock_free() {
    // Oversized rings: the submitting thread alone emits ~3 events per
    // task into one lane, and the gate below requires zero drops.
    let rec = Arc::new(Recorder::with_capacity(8, 1 << 17));
    let run = run_wake_stress_with(WakeMode::LockFree, &spec(), Some(Arc::clone(&rec)));
    assert_eq!(
        run.wake_counts.delivery_lock_acquisitions, 0,
        "recording must not add shard-lock acquisitions to the lock-free wake path"
    );
    // The run was actually observed: a live stream with no overflow.
    assert!(rec.recorded() > 0);
    assert_eq!(rec.dropped(), 0, "size the rings for the workload");
    let events = rec.drain();
    assert_eq!(events.len() as u64, rec.recorded());
}
