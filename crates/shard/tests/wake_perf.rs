//! The PR's acceptance bar, asserted: on the wide fan-in wake-stress
//! workload at 4 finisher workers, the lock-free wake path beats the
//! locked kick-off-list baseline by ≥ 1.3× on **wake-delivery time**,
//! and performs **zero shard-lock acquisitions** doing it.
//!
//! What is measured: the dispatcher's [`WakeCounts::delivery_ns`] — the
//! time finishers spend in the drain-to-report step, from deciding to
//! collect deliverable wakes to handing them to the report. Under
//! [`WakeMode::Locked`] that step must take the shard lock, so on the
//! hot shard every delivery attempt queues behind whoever is currently
//! *resolving* (draining the finish ring, walking kick-off entries) —
//! the serialization the ROADMAP item named. Under
//! [`WakeMode::LockFree`] it is one atomic emptiness check plus a
//! CAS-claimed drain of the MPSC wake list: it never waits on table
//! access, which is why the bar holds even on a single-CPU host where
//! end-to-end wall-clock is pinned to the (identical) resolution work.
//! Both sides take the best of three runs to shed warm-up and OS noise;
//! end-to-end wall-clock is printed alongside for context.
//!
//! The zero-acquisition assertion is the structural half of the bar: the
//! counter instruments the delivery step itself, so a future regression
//! that sneaks a lock back into the wake path fails loudly here.

use nexuspp_shard::stress::{best_of, WakeStressSpec};
use nexuspp_shard::WakeMode;

#[test]
fn lock_free_wake_delivery_beats_locked_kickoff_by_1_3x_at_4_workers() {
    let spec = WakeStressSpec {
        finishers: 4,
        producers: 256,
        consumers_per: 24,
        shards: 4,
        spin_ns: 0,
    };
    let locked = best_of(WakeMode::Locked, &spec, 3);
    let lock_free = best_of(WakeMode::LockFree, &spec, 3);
    assert!(
        locked.wake_counts.delivery_lock_acquisitions > 0,
        "the locked baseline must go through the shard lock"
    );
    assert_eq!(
        lock_free.wake_counts.delivery_lock_acquisitions, 0,
        "lock-free wake delivery must perform zero shard-lock acquisitions"
    );
    let ratio =
        locked.wake_counts.delivery_ns as f64 / lock_free.wake_counts.delivery_ns.max(1) as f64;
    println!(
        "wake_stress @4 workers, {} tasks / {} wakes: delivery locked {:?} vs lock-free {:?} \
         ({ratio:.2}x); end-to-end locked {:?} vs lock-free {:?}",
        spec.task_count(),
        spec.wake_count(),
        locked.delivery_time(),
        lock_free.delivery_time(),
        locked.elapsed,
        lock_free.elapsed,
    );
    assert!(
        ratio >= 1.3,
        "lock-free wake delivery must beat the locked kick-off lists by >= 1.3x on the \
         wide fan-in wake-stress workload (got {ratio:.2}x: locked {:?} vs lock-free {:?})",
        locked.delivery_time(),
        lock_free.delivery_time()
    );
}
