//! The sharded engine: N address-partitioned [`DependencyEngine`]s
//! composed into one logically-equivalent resolver.
//!
//! ## Protocol
//!
//! * **Routing** — every parameter address belongs to exactly one shard,
//!   chosen by [`shard_of_addr`] (high bits of the table's own hash
//!   family, so the assignment is stable and statistically independent of
//!   in-shard bucketing).
//! * **Admit** — a task's parameter list is split into per-shard slices;
//!   each involved shard admits a *sub-descriptor* holding its slice. The
//!   home record (the [`TaskId`] slot here; a home-shard row in hardware)
//!   keeps the slice list and a **remote dependence counter**: the number
//!   of shards whose slice still has unresolved conflicts. Admission is
//!   atomic across shards: capacities are pre-checked so a rejection
//!   ([`PoolError::PoolFull`]) never leaves a partial admission behind.
//! * **Check** — each shard runs the paper's Listing 2 loop over its own
//!   slice against its own Dependence Table. A shard slice found
//!   conflict-free decrements the remote counter. A Dependence-Table-full
//!   stall parks the whole check exactly like the single engine's
//!   `check_cursor` (the stall is resumable per shard *and* per
//!   parameter).
//! * **Finish** — every involved shard releases its slice and wakes its
//!   local kick-off waiters; each woken sub-descriptor sends a *remote
//!   decrement* to its task's home record; a task whose counter reaches
//!   zero (with its check complete) is newly ready. Since wake-ups only
//!   ever travel finish→home, the per-shard wakes of one completion
//!   commute and the aggregate is order-insensitive.
//!
//! Equivalence with the single engine is structural: distinct addresses
//! impose independent constraints in the Dependence Table, so splitting
//! the table by address partitions both the state and the wake-up traffic
//! without changing either. `tests/sharded_differential.rs` checks it the
//! hard way (against the single engine *and* the oracle DAG, for
//! N ∈ {1, 2, 4, 8}, including pool-full and table-full paths).

use nexuspp_core::engine::CheckProgress;
use nexuspp_core::pool::PoolError;
use nexuspp_core::{
    shard_of_addr, DependencyEngine, NexusConfig, OpCost, ShardCapacity, Submission, SubmitError,
    TdIndex,
};
use nexuspp_trace::Param;
use std::fmt;

/// An admission rejection attributed to the shard that caused it, so a
/// stalling front-end (the multi-Maestro master, the batched submitter)
/// knows which shard's next finish report to park on.
///
/// This is the positional-tuple path's error type; it folds a residency
/// rejection into `PoolFull { needed: 1, free: 0 }`. The
/// [`Submission`]-based entry points ([`ShardedEngine::submit_task`],
/// [`ShardedEngine::try_admit_task`]) report the richer
/// [`SubmitError`], which keeps capacity-full distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRejection {
    /// The first shard (in the task's first-touch order) that could not
    /// hold its slice.
    pub shard: u32,
    /// The underlying pool/capacity error (`PoolFull` is retryable).
    pub error: PoolError,
}

impl From<ShardRejection> for SubmitError {
    fn from(r: ShardRejection) -> Self {
        SubmitError::from(r.error).on_shard(r.shard)
    }
}

/// A task's identity in the sharded engine: its home-record slot index.
/// Slots are reused after `finish`, like Task Pool indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Per-shard cost breakdown of one sharded operation. Shards can service
/// their portions concurrently, so the modeled latency of the operation
/// is the *maximum* per-shard cost while the energy/occupancy is the sum
/// ([`OpBreakdown::total`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpBreakdown {
    /// `(shard, cost)` for every shard the operation touched.
    pub per_shard: Vec<(u32, OpCost)>,
}

impl OpBreakdown {
    /// Accumulate `cost` against `shard`.
    pub fn add(&mut self, shard: u32, cost: OpCost) {
        match self.per_shard.iter_mut().find(|(s, _)| *s == shard) {
            Some((_, c)) => *c += cost,
            None => self.per_shard.push((shard, cost)),
        }
    }

    /// Total accesses across all shards (the serialized-equivalent work).
    pub fn total(&self) -> OpCost {
        self.per_shard
            .iter()
            .fold(OpCost::ZERO, |acc, (_, c)| acc + *c)
    }

    /// Number of distinct shards touched.
    pub fn shards_touched(&self) -> usize {
        self.per_shard.len()
    }
}

/// Progress of a (possibly resumed) sharded dependency check.
#[derive(Debug, Clone)]
pub enum ShardedCheck {
    /// Every shard slice processed. `ready` is true if no slice recorded a
    /// dependence.
    Done {
        /// Task has no outstanding dependencies on any shard.
        ready: bool,
        /// Work performed, by shard.
        cost: OpBreakdown,
    },
    /// `shard`'s Dependence Table was full mid-slice; call `check` again
    /// after a completion frees space there.
    Stalled {
        /// The shard that stalled.
        shard: u32,
        /// Work performed this attempt, by shard.
        cost: OpBreakdown,
    },
}

/// Outcome of a bounded batched submission
/// ([`ShardedEngine::submit_batch_bounded`]): the admitted prefix plus
/// the parked remainder awaiting a finish on the full shard.
#[derive(Debug, Clone)]
pub struct BoundedBatch {
    /// Admitted and checked members, in batch order.
    pub submitted: Vec<(TaskId, bool)>,
    /// The shard that was full for the first parked member (`None` when
    /// the whole batch was admitted).
    pub stalled: Option<u32>,
    /// Members not admitted (no shard touched); re-offer them after the
    /// stalled shard's next finish report.
    pub parked: Vec<(u64, u64, Vec<Param>)>,
    /// Work performed for the admitted prefix, by shard.
    pub cost: OpBreakdown,
}

/// Result of finishing a task through the sharded engine.
#[derive(Debug, Clone, Default)]
pub struct ShardedFinish {
    /// Tasks whose remote dependence counter reached zero (check complete)
    /// thanks to this completion, in wake order (the concatenation of
    /// [`wakes_by_shard`](Self::wakes_by_shard)).
    pub newly_ready: Vec<TaskId>,
    /// The same wake set attributed to the shard whose slice release
    /// completed each task — the contents of each involved shard's
    /// kick-off wake list at this finish. The timing models treat each
    /// entry as one shard's kick-off FIFO traffic
    /// (`nexuspp_taskmachine::multimaestro`).
    pub wakes_by_shard: Vec<(u32, Vec<TaskId>)>,
    /// The finished task's caller tag.
    pub tag: u64,
    /// Work performed, by shard.
    pub cost: OpBreakdown,
}

/// The routing policy shared by every shard consumer: split a parameter
/// list into per-shard slices by [`shard_of_addr`], preserving parameter
/// order inside each slice and first-touch order across shards.
pub(crate) fn route_params(params: &[Param], n_shards: usize) -> Vec<(u32, Vec<Param>)> {
    let mut groups: Vec<(u32, Vec<Param>)> = Vec::new();
    for p in params {
        let s = shard_of_addr(p.addr, n_shards) as u32;
        match groups.iter_mut().find(|(g, _)| *g == s) {
            Some((_, v)) => v.push(*p),
            None => groups.push((s, vec![*p])),
        }
    }
    groups
}

/// One routed batch member: home record, function pointer, and per-shard
/// parameter slices (see [`ShardedEngine::submit_batch`]).
type RoutedMember = (TaskId, u64, Vec<(u32, Vec<Param>)>);

/// One shard slice of a task: the sub-descriptor holding the parameters
/// this shard owns.
#[derive(Debug, Clone, Copy)]
struct Part {
    shard: u32,
    td: TdIndex,
}

/// The home record of a live task.
#[derive(Debug, Clone)]
struct TaskState {
    tag: u64,
    parts: Vec<Part>,
    /// Resume cursor over `parts` for stalled checks.
    next_check: usize,
    /// Remote dependence counter: shards whose slice is not yet
    /// conflict-free. Decremented at slice-check completion (if already
    /// free) or by a remote wake from the owning shard's `finish`.
    pending: u32,
    /// All slices checked (the cross-shard scheduling gate).
    checked: bool,
}

#[derive(Debug, Clone)]
enum TaskSlot {
    Free,
    Live(TaskState),
}

/// N address-partitioned dependency engines behind one engine-shaped API.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    shards: Vec<DependencyEngine>,
    growable: bool,
    capacity: ShardCapacity,
    /// Live tasks holding a residency slot on each shard (one slot per
    /// involved shard per task, regardless of slice width).
    resident: Vec<usize>,
    tasks: Vec<TaskSlot>,
    free: Vec<u32>,
    /// Per shard: sub-descriptor index → owning task (reverse map for the
    /// remote-decrement path).
    owner: Vec<Vec<Option<TaskId>>>,
    /// Per-shard kick-off wake lists: ready tasks are *posted* to the
    /// shard whose slice release completed them, then drained into
    /// [`ShardedFinish`]. Single-threaded model of the dispatcher's
    /// lock-free MPSC wake lists — posting and draining are separate
    /// steps with identical semantics to inline delivery (proven by the
    /// differential suites), plus observable per-shard depths.
    wake_lists: Vec<Vec<TaskId>>,
    /// Deepest each shard's wake list has been at a post/drain boundary.
    wake_peak: Vec<usize>,
    /// Per shard: when the currently-open bounded-batch stall episode on
    /// that shard began (`None` when not stalled there). Opened by a
    /// `submit_batch_bounded` call that parks members on the shard,
    /// closed by a later call that admits a member touching it.
    stall_open: Vec<Option<std::time::Instant>>,
    /// Per shard: nanoseconds of closed stall episodes (the wall time
    /// parked batch members waited for the shard, see `stall_ns_on`).
    stall_ns: Vec<u64>,
    in_flight: usize,
}

impl ShardedEngine {
    /// Build `n_shards` engines, each with the capacities in `cfg`
    /// (capacities are per shard, mirroring hardware where each shard is
    /// its own SRAM bank set).
    pub fn new(n_shards: usize, cfg: &NexusConfig) -> Self {
        ShardedEngine::with_capacity(n_shards, cfg, ShardCapacity::Unbounded)
    }

    /// Build a bounded engine: on top of `cfg`'s table capacities, each
    /// shard holds at most `capacity` resident tasks; a submission that
    /// would exceed that on any involved shard is rejected whole
    /// (atomically) with the full shard identified, for stall/retry.
    pub fn with_capacity(n_shards: usize, cfg: &NexusConfig, capacity: ShardCapacity) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        capacity.validate();
        ShardedEngine {
            shards: (0..n_shards).map(|_| DependencyEngine::new(cfg)).collect(),
            growable: cfg.growable,
            capacity,
            resident: vec![0; n_shards],
            tasks: Vec::new(),
            free: Vec::new(),
            owner: vec![Vec::new(); n_shards],
            wake_lists: vec![Vec::new(); n_shards],
            wake_peak: vec![0; n_shards],
            stall_open: vec![None; n_shards],
            stall_ns: vec![0; n_shards],
            in_flight: 0,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's engine (reports, tests).
    pub fn shard(&self, i: usize) -> &DependencyEngine {
        &self.shards[i]
    }

    /// Tasks admitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The per-shard residency bound this engine enforces.
    pub fn capacity(&self) -> ShardCapacity {
        self.capacity
    }

    /// Live tasks currently holding a residency slot on shard `s`.
    pub fn resident_on(&self, s: usize) -> usize {
        self.resident[s]
    }

    /// Deepest shard `s`'s kick-off wake list has been: the most ready
    /// tasks one slice-release burst posted there before the drain (the
    /// fan-in pressure metric `repro -- wakes` sweeps).
    pub fn peak_wake_depth(&self, s: usize) -> usize {
        self.wake_peak[s]
    }

    /// Nanoseconds bounded-batch members spent parked on shard `s`,
    /// summed over *closed* stall episodes: an episode opens when a
    /// [`submit_batch_bounded`](Self::submit_batch_bounded) call parks
    /// members on a full shard `s`, and closes when a later call admits
    /// a member touching `s` (progress was made, so the park is over).
    /// The single-threaded analogue of the dispatcher's
    /// `CapacityCounts::stall_ns`.
    pub fn stall_ns_on(&self, s: usize) -> u64 {
        self.stall_ns[s]
    }

    /// Which shard owns `addr` under this engine's partition.
    pub fn shard_of(&self, addr: u64) -> usize {
        shard_of_addr(addr, self.shards.len())
    }

    /// Caller tag of a live task.
    pub fn tag_of(&self, id: TaskId) -> u64 {
        self.state(id).tag
    }

    fn state(&self, id: TaskId) -> &TaskState {
        match &self.tasks[id.0 as usize] {
            TaskSlot::Live(s) => s,
            TaskSlot::Free => panic!("{id} is not live"),
        }
    }

    fn state_mut(&mut self, id: TaskId) -> &mut TaskState {
        match &mut self.tasks[id.0 as usize] {
            TaskSlot::Live(s) => s,
            TaskSlot::Free => panic!("{id} is not live"),
        }
    }

    /// Split a parameter list into per-shard slices (see
    /// [`route_params`]).
    fn partition(&self, params: &[Param]) -> Vec<(u32, Vec<Param>)> {
        route_params(params, self.shards.len())
    }

    fn alloc_slot(&mut self) -> TaskId {
        match self.free.pop() {
            Some(i) => TaskId(i),
            None => {
                self.tasks.push(TaskSlot::Free);
                TaskId(self.tasks.len() as u32 - 1)
            }
        }
    }

    fn set_owner(&mut self, shard: u32, td: TdIndex, id: TaskId) {
        let map = &mut self.owner[shard as usize];
        let i = td.0 as usize;
        if i >= map.len() {
            map.resize(i + 1, None);
        }
        map[i] = Some(id);
    }

    /// Pre-check that every involved shard can hold its slice — table
    /// space under a fixed `cfg`, and a residency slot under a bounded
    /// [`ShardCapacity`] — so the multi-shard admission below never
    /// partially commits. The rejection names the first failing shard.
    fn capacity_check(&self, groups: &[(u32, Vec<Param>)]) -> Result<(), SubmitError> {
        for (s, sub) in groups {
            if !self.capacity.admits(self.resident[*s as usize]) {
                return Err(SubmitError::CapacityFull {
                    shard: *s,
                    limit: self.capacity.limit().expect("unbounded always admits"),
                });
            }
            if self.growable {
                continue;
            }
            let pool = self.shards[*s as usize].pool();
            let needed = pool.tds_needed(sub.len());
            if needed > pool.capacity() {
                return Err(SubmitError::TaskTooLarge {
                    shard: Some(*s),
                    needed,
                    capacity: pool.capacity(),
                });
            }
            if needed > pool.free_count() {
                return Err(SubmitError::PoolFull {
                    shard: Some(*s),
                    needed,
                    free: pool.free_count(),
                });
            }
        }
        Ok(())
    }

    /// Downgrade a unified rejection to the positional path's
    /// [`ShardRejection`] (residency-full folds into `PoolFull`, exactly
    /// the legacy encoding).
    fn downgrade(e: SubmitError) -> ShardRejection {
        let shard = e
            .shard()
            .expect("capacity_check attributes every rejection");
        let error = match e {
            SubmitError::CapacityFull { .. } => PoolError::PoolFull { needed: 1, free: 0 },
            SubmitError::PoolFull { needed, free, .. } => PoolError::PoolFull { needed, free },
            SubmitError::TaskTooLarge {
                needed, capacity, ..
            } => PoolError::TaskTooLarge { needed, capacity },
            SubmitError::DuplicateAddress { .. } => {
                unreachable!("capacity_check never reports bad params")
            }
        };
        ShardRejection { shard, error }
    }

    /// Admit a task: allocate a sub-descriptor on every shard that owns at
    /// least one of its parameters. Fails retryably (and atomically — no
    /// shard is modified) when any involved shard's pool lacks space.
    pub fn admit(
        &mut self,
        fptr: u64,
        tag: u64,
        params: Vec<Param>,
    ) -> Result<(TaskId, OpBreakdown), PoolError> {
        self.try_admit(fptr, tag, params).map_err(|r| r.error)
    }

    /// [`admit`](Self::admit) with the rejecting shard identified, for
    /// front-ends that park on a specific shard's finish stream.
    pub fn try_admit(
        &mut self,
        fptr: u64,
        tag: u64,
        params: Vec<Param>,
    ) -> Result<(TaskId, OpBreakdown), ShardRejection> {
        let groups = self.partition(&params);
        self.capacity_check(&groups).map_err(Self::downgrade)?;
        Ok(self.admit_routed(fptr, tag, groups))
    }

    /// [`try_admit`](Self::try_admit) over the unified surface: consume a
    /// [`Submission`] and report rejections as [`SubmitError`] —
    /// including [`SubmitError::CapacityFull`] (which the positional path
    /// folds into `PoolFull`) and [`SubmitError::DuplicateAddress`] for
    /// malformed parameter lists.
    pub fn try_admit_task(
        &mut self,
        sub: Submission,
    ) -> Result<(TaskId, OpBreakdown), SubmitError> {
        sub.validate()?;
        let (fptr, tag, params) = sub.into_parts();
        let groups = self.partition(&params);
        self.capacity_check(&groups)?;
        Ok(self.admit_routed(fptr, tag, groups))
    }

    /// The shared multi-shard admission body (capacity already cleared).
    fn admit_routed(
        &mut self,
        fptr: u64,
        tag: u64,
        groups: Vec<(u32, Vec<Param>)>,
    ) -> (TaskId, OpBreakdown) {
        let id = self.alloc_slot();
        let mut cost = OpBreakdown::default();
        let mut parts = Vec::with_capacity(groups.len());
        for (s, sub) in groups {
            let (td, c) = self.shards[s as usize]
                .admit(fptr, tag, sub)
                .expect("capacity pre-checked");
            self.set_owner(s, td, id);
            self.resident[s as usize] += 1;
            parts.push(Part { shard: s, td });
            cost.add(s, c);
        }
        let pending = parts.len() as u32;
        self.tasks[id.0 as usize] = TaskSlot::Live(TaskState {
            tag,
            parts,
            next_check: 0,
            pending,
            checked: false,
        });
        self.in_flight += 1;
        (id, cost)
    }

    /// Check the task's shard slices, resuming from the last stall point
    /// if any. Slices already woken by intervening completions are
    /// accounted through the remote counter, so resuming after a stall is
    /// race-free even when other tasks finished in between.
    pub fn check(&mut self, id: TaskId) -> ShardedCheck {
        let mut cost = OpBreakdown::default();
        loop {
            let part = {
                let st = self.state(id);
                if st.next_check >= st.parts.len() {
                    break;
                }
                st.parts[st.next_check]
            };
            match self.shards[part.shard as usize].check(part.td) {
                CheckProgress::Done { ready, cost: c } => {
                    cost.add(part.shard, c);
                    let st = self.state_mut(id);
                    st.next_check += 1;
                    if ready {
                        debug_assert!(st.pending > 0);
                        st.pending -= 1;
                    }
                }
                CheckProgress::Stalled { cost: c } => {
                    cost.add(part.shard, c);
                    return ShardedCheck::Stalled {
                        shard: part.shard,
                        cost,
                    };
                }
            }
        }
        let st = self.state_mut(id);
        st.checked = true;
        ShardedCheck::Done {
            ready: st.pending == 0,
            cost,
        }
    }

    /// Finish a ready task: every involved shard releases its slice and
    /// wakes its local waiters; remote decrements are aggregated at each
    /// woken task's home record. A task whose counter reaches zero is
    /// *posted* to the kick-off wake list of the shard that completed it,
    /// and the lists are drained into the result after every slice is
    /// released — the single-threaded mirror of the dispatcher's
    /// post-lock-free/drain-by-one-owner wake protocol, with identical
    /// wake order to inline delivery (each task posts to exactly one
    /// list, and lists drain in slice order). Never stalls.
    pub fn finish(&mut self, id: TaskId) -> ShardedFinish {
        let st = match std::mem::replace(&mut self.tasks[id.0 as usize], TaskSlot::Free) {
            TaskSlot::Live(s) => s,
            TaskSlot::Free => panic!("finish({id}) on a free slot"),
        };
        debug_assert!(
            st.checked,
            "finishing a task that never completed its check"
        );
        debug_assert_eq!(st.pending, 0, "finishing a task with unresolved deps");
        let mut out = ShardedFinish {
            tag: st.tag,
            ..Default::default()
        };
        // Release every slice, posting each completed waker to the
        // releasing shard's wake list.
        for part in &st.parts {
            let fin = self.shards[part.shard as usize].finish(part.td);
            out.cost.add(part.shard, fin.cost);
            self.owner[part.shard as usize][part.td.0 as usize] = None;
            self.resident[part.shard as usize] -= 1;
            for woken in fin.newly_ready {
                let wid = self.owner[part.shard as usize][woken.0 as usize]
                    .expect("woken sub-descriptor must have an owner");
                let wst = self.state_mut(wid);
                debug_assert!(wst.pending > 0, "remote decrement below zero");
                wst.pending -= 1;
                if wst.pending == 0 && wst.checked {
                    self.wake_lists[part.shard as usize].push(wid);
                }
            }
        }
        // Drain the wake lists (one claim per involved shard), recording
        // the depth each burst reached.
        for part in &st.parts {
            let s = part.shard as usize;
            let depth = self.wake_lists[s].len();
            if depth == 0 {
                continue;
            }
            if depth > self.wake_peak[s] {
                self.wake_peak[s] = depth;
            }
            let drained = std::mem::take(&mut self.wake_lists[s]);
            out.newly_ready.extend(drained.iter().copied());
            out.wakes_by_shard.push((part.shard, drained));
        }
        self.free.push(id.0);
        self.in_flight -= 1;
        out
    }

    /// Convenience: admit + check in one call. With a growable
    /// configuration this never stalls; a mid-check stall on a fixed
    /// configuration panics — use the step-wise API with retry there.
    pub fn submit(
        &mut self,
        fptr: u64,
        tag: u64,
        params: Vec<Param>,
    ) -> Result<(TaskId, bool), PoolError> {
        let (id, _) = self.admit(fptr, tag, params)?;
        match self.check(id) {
            ShardedCheck::Done { ready, .. } => Ok((id, ready)),
            ShardedCheck::Stalled { shard, .. } => panic!(
                "submit(): dependence table full on shard {shard}; \
                 use admit()/check() with retry for fixed configs"
            ),
        }
    }

    /// [`submit`](Self::submit) over the unified surface: admit + check a
    /// [`Submission`], reporting any rejection as a [`SubmitError`] with
    /// the failing shard attributed (capacity-full, pool-full and
    /// bad-params all surface as errors; only the fixed-config mid-check
    /// table stall keeps the step-wise-API panic).
    pub fn submit_task(&mut self, sub: Submission) -> Result<(TaskId, bool), SubmitError> {
        let (id, _) = self.try_admit_task(sub)?;
        match self.check(id) {
            ShardedCheck::Done { ready, .. } => Ok((id, ready)),
            ShardedCheck::Stalled { shard, .. } => panic!(
                "submit_task(): dependence table full on shard {shard}; \
                 use admit()/check() with retry for fixed configs"
            ),
        }
    }

    /// Batched submission front-end (the software analogue of the paper's
    /// buffered TP writes): admit and check a group of tasks while
    /// visiting each shard **once per stage**, instead of once per task
    /// per stage. All of a shard's sub-admissions happen back to back,
    /// then all of its slice checks — per-shard operation order equals
    /// batch order, and operations on different shards commute, so the
    /// result is identical to submitting the batch serially. Requires a
    /// growable configuration (a batched stall is not resumable).
    ///
    /// Returns each task's `(id, ready)` in batch order plus the combined
    /// per-shard cost; the per-shard visit count drops from
    /// `O(batch × shards_touched)` to `O(shards_touched)`, which is the
    /// lock/arbitration amortization the concurrent and hardware layers
    /// exploit.
    pub fn submit_batch(
        &mut self,
        batch: Vec<(u64, u64, Vec<Param>)>,
    ) -> (Vec<(TaskId, bool)>, OpBreakdown) {
        assert!(
            self.growable,
            "submit_batch requires a growable configuration"
        );
        assert!(
            !self.capacity.is_bounded(),
            "bounded engines must use submit_batch_bounded (a batched stall must park)"
        );
        self.batch_ingest(batch)
    }

    /// Bounded batched submission: admit and check members in batch order
    /// until one would overflow an involved shard, then stop — the
    /// accepted prefix is ingested with the same one-visit-per-shard-per-
    /// stage amortization as [`submit_batch`](Self::submit_batch), and the
    /// remainder comes back in [`BoundedBatch::parked`] for the caller to
    /// re-offer after the full shard's next finish report. Admission stays
    /// atomic: the parked members have touched no shard at all.
    pub fn submit_batch_bounded(&mut self, batch: Vec<(u64, u64, Vec<Param>)>) -> BoundedBatch {
        assert!(
            self.growable,
            "submit_batch_bounded requires growable tables (capacity bounds residency)"
        );
        // Walk the batch against a shadow residency tally to find the
        // longest admissible prefix.
        let mut shadow = self.resident.clone();
        let mut touched = vec![false; self.shards.len()];
        let mut accepted = 0usize;
        let mut stalled = None;
        'members: for (_, _, params) in &batch {
            let groups = self.partition(params);
            for (s, _) in &groups {
                if !self.capacity.admits(shadow[*s as usize]) {
                    stalled = Some(*s);
                    break 'members;
                }
            }
            for (s, _) in &groups {
                shadow[*s as usize] += 1;
                touched[*s as usize] = true;
            }
            accepted += 1;
        }
        // Stall-time accounting: admitting a member that touches a shard
        // closes any open stall episode there (the parked members' wait
        // made progress); parking members opens an episode on the full
        // shard unless one is already running.
        for (s, hit) in touched.iter().enumerate() {
            if *hit {
                if let Some(t0) = self.stall_open[s].take() {
                    self.stall_ns[s] += t0.elapsed().as_nanos() as u64;
                }
            }
        }
        if let Some(s) = stalled {
            let slot = &mut self.stall_open[s as usize];
            if slot.is_none() {
                *slot = Some(std::time::Instant::now());
            }
        }
        let mut batch = batch;
        let parked = batch.split_off(accepted);
        let (submitted, cost) = self.batch_ingest(batch);
        BoundedBatch {
            submitted,
            stalled,
            parked,
            cost,
        }
    }

    /// The shared two-stage batched admission core (capacity already
    /// cleared by the caller).
    fn batch_ingest(
        &mut self,
        batch: Vec<(u64, u64, Vec<Param>)>,
    ) -> (Vec<(TaskId, bool)>, OpBreakdown) {
        let n = self.shards.len();
        let mut cost = OpBreakdown::default();
        // Stage 0: route every member and create its home record.
        let mut members: Vec<RoutedMember> = Vec::with_capacity(batch.len());
        for (fptr, tag, params) in batch {
            let groups = self.partition(&params);
            let id = self.alloc_slot();
            self.tasks[id.0 as usize] = TaskSlot::Live(TaskState {
                tag,
                parts: Vec::with_capacity(groups.len()),
                next_check: 0,
                pending: groups.len() as u32,
                checked: false,
            });
            self.in_flight += 1;
            for (s, _) in &groups {
                self.resident[*s as usize] += 1;
            }
            members.push((id, fptr, groups));
        }
        // Stage 1 (`Write TP`, batched): one visit per shard admits every
        // member's slice for that shard, in batch order.
        for s in 0..n as u32 {
            for (id, fptr, groups) in &members {
                if let Some((_, sub)) = groups.iter().find(|(g, _)| *g == s) {
                    let tag = self.state(*id).tag;
                    let (td, c) = self.shards[s as usize]
                        .admit(*fptr, tag, sub.clone())
                        .expect("growable engine cannot reject");
                    self.set_owner(s, td, *id);
                    self.state_mut(*id).parts.push(Part { shard: s, td });
                    cost.add(s, c);
                }
            }
        }
        // Stage 2 (`Check Deps`, batched): one visit per shard checks
        // every member's slice, in batch order.
        for s in 0..n as u32 {
            for (id, _, _) in &members {
                let part = self.state(*id).parts.iter().copied().find(|p| p.shard == s);
                if let Some(part) = part {
                    match self.shards[s as usize].check(part.td) {
                        CheckProgress::Done { ready, cost: c } => {
                            cost.add(s, c);
                            if ready {
                                self.state_mut(*id).pending -= 1;
                            }
                        }
                        CheckProgress::Stalled { .. } => {
                            unreachable!("growable engine cannot stall")
                        }
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(members.len());
        for (id, _, _) in members {
            let st = self.state_mut(id);
            st.next_check = st.parts.len();
            st.checked = true;
            out.push((id, st.pending == 0));
        }
        (out, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_trace::Param;

    fn engine(n: usize) -> ShardedEngine {
        ShardedEngine::new(n, &NexusConfig::unbounded())
    }

    fn submit(e: &mut ShardedEngine, tag: u64, params: Vec<Param>) -> (TaskId, bool) {
        e.submit(1, tag, params).unwrap()
    }

    #[test]
    fn chain_spanning_shards_executes_in_order() {
        for n in [1, 2, 4, 8] {
            let mut e = engine(n);
            // t0 writes A,B; t1 reads A writes C; t2 reads B,C. The
            // addresses hash to different shards for most n.
            let (t0, r0) = submit(
                &mut e,
                0,
                vec![Param::output(0xA0, 4), Param::output(0xB0, 4)],
            );
            let (t1, r1) = submit(
                &mut e,
                1,
                vec![Param::input(0xA0, 4), Param::output(0xC0, 4)],
            );
            let (t2, r2) = submit(
                &mut e,
                2,
                vec![Param::input(0xB0, 4), Param::input(0xC0, 4)],
            );
            assert!(r0 && !r1 && !r2, "n={n}");
            let f = e.finish(t0);
            assert_eq!(f.newly_ready, vec![t1], "n={n}");
            assert_eq!(f.tag, 0);
            let f = e.finish(t1);
            assert_eq!(f.newly_ready, vec![t2], "n={n}");
            let f = e.finish(t2);
            assert!(f.newly_ready.is_empty());
            assert_eq!(e.in_flight(), 0);
            for s in 0..n {
                assert_eq!(e.shard(s).table().occupied(), 0, "n={n} shard {s}");
            }
        }
    }

    #[test]
    fn diamond_joins_across_shards() {
        let mut e = engine(4);
        let (t0, _) = submit(
            &mut e,
            0,
            vec![Param::output(0x10, 4), Param::output(0x20, 4)],
        );
        let (t1, _) = submit(
            &mut e,
            1,
            vec![Param::input(0x10, 4), Param::output(0x30, 4)],
        );
        let (t2, _) = submit(
            &mut e,
            2,
            vec![Param::input(0x20, 4), Param::output(0x40, 4)],
        );
        let (t3, r3) = submit(
            &mut e,
            3,
            vec![Param::input(0x30, 4), Param::input(0x40, 4)],
        );
        assert!(!r3);
        let f = e.finish(t0);
        let mut woken = f.newly_ready.clone();
        woken.sort();
        assert_eq!(woken, vec![t1, t2]);
        assert!(e.finish(t1).newly_ready.is_empty(), "t3 still waits on t2");
        assert_eq!(e.finish(t2).newly_ready, vec![t3]);
        e.finish(t3);
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn parameterless_task_is_trivially_ready() {
        let mut e = engine(4);
        let (t, ready) = submit(&mut e, 0, vec![]);
        assert!(ready);
        let f = e.finish(t);
        assert!(f.newly_ready.is_empty());
        assert_eq!(f.cost.shards_touched(), 0);
    }

    #[test]
    fn cost_breakdown_covers_involved_shards_only() {
        let mut e = engine(4);
        let params = vec![Param::output(0x100, 4), Param::output(0x200, 4)];
        let shards: std::collections::BTreeSet<usize> =
            params.iter().map(|p| e.shard_of(p.addr)).collect();
        let (id, cost) = e.admit(1, 0, params).unwrap();
        assert_eq!(cost.shards_touched(), shards.len());
        assert!(cost.total().pool_accesses >= shards.len() as u64);
        match e.check(id) {
            ShardedCheck::Done { ready, cost } => {
                assert!(ready);
                assert_eq!(cost.shards_touched(), shards.len());
            }
            other => panic!("unexpected {other:?}"),
        }
        let f = e.finish(id);
        assert_eq!(f.cost.shards_touched(), shards.len());
    }

    #[test]
    fn admit_rejection_is_atomic_across_shards() {
        // Shards with 2-entry pools: a task whose slices both fit
        // individually must not partially admit when one shard is full.
        let cfg = NexusConfig {
            task_pool_entries: 2,
            ..Default::default()
        };
        let mut e = ShardedEngine::new(2, &cfg);
        // Fill one shard (shard of 0x0.. addresses) with single-param tasks.
        let mut fillers = Vec::new();
        let mut a = 0u64;
        while fillers.len() < 2 {
            let addr = 0x1000 + a * 64;
            a += 1;
            if e.shard_of(addr) == 0 {
                fillers.push(submit(&mut e, fillers.len() as u64, vec![Param::output(addr, 4)]).0);
            }
        }
        assert_eq!(e.shard(0).pool().free_count(), 0);
        let before_s1 = e.shard(1).pool().in_use();
        // A task with one param on each shard: shard 0 is full.
        let mut p0 = None;
        let mut p1 = None;
        let mut b = 0u64;
        while p0.is_none() || p1.is_none() {
            let addr = 0x9000 + b * 64;
            b += 1;
            match e.shard_of(addr) {
                0 if p0.is_none() => p0 = Some(Param::output(addr, 4)),
                1 if p1.is_none() => p1 = Some(Param::output(addr, 4)),
                _ => {}
            }
        }
        let res = e.admit(1, 99, vec![p0.unwrap(), p1.unwrap()]);
        assert!(matches!(res, Err(PoolError::PoolFull { .. })));
        assert_eq!(
            e.shard(1).pool().in_use(),
            before_s1,
            "rejected admission must not touch the other shard"
        );
        // Retry succeeds after a completion frees shard 0.
        e.finish(fillers[0]);
        assert!(e.admit(1, 99, vec![p0.unwrap(), p1.unwrap()]).is_ok());
    }

    #[test]
    fn stalled_check_resumes_after_space_frees() {
        // Tiny per-shard tables force a mid-check table-full stall.
        let cfg = NexusConfig {
            dep_table_entries: 2,
            ..Default::default()
        };
        let mut e = ShardedEngine::new(2, &cfg);
        // Two addresses on the same shard fill its 2-entry table.
        let mut addrs = Vec::new();
        let mut a = 0u64;
        while addrs.len() < 3 {
            let addr = 0x4000 + a * 64;
            a += 1;
            if e.shard_of(addr) == 0 {
                addrs.push(addr);
            }
        }
        let (t0, _) = e
            .admit(
                1,
                0,
                vec![Param::output(addrs[0], 4), Param::output(addrs[1], 4)],
            )
            .unwrap();
        assert!(matches!(
            e.check(t0),
            ShardedCheck::Done { ready: true, .. }
        ));
        // Next task needs a third entry on the full shard → stall.
        let (t1, _) = e
            .admit(
                1,
                1,
                vec![Param::input(addrs[0], 4), Param::output(addrs[2], 4)],
            )
            .unwrap();
        match e.check(t1) {
            ShardedCheck::Stalled { shard, .. } => assert_eq!(shard, 0),
            other => panic!("expected stall, got {other:?}"),
        }
        let f = e.finish(t0);
        assert!(
            f.newly_ready.is_empty(),
            "t1's check is incomplete; it must not schedule"
        );
        match e.check(t1) {
            ShardedCheck::Done { ready, .. } => assert!(ready),
            other => panic!("expected completion, got {other:?}"),
        }
        e.finish(t1);
        assert_eq!(e.shard(0).table().occupied(), 0);
    }

    #[test]
    fn batch_submission_matches_serial_submission() {
        // Same dependent stream through submit() and submit_batch():
        // identical readiness and identical total cost.
        let mk = |i: u64| {
            (
                1u64,
                i,
                vec![
                    Param::inout(0x100 + (i % 4) * 64, 4),
                    Param::output(0x8000 + i * 64, 4),
                ],
            )
        };
        let mut serial = engine(4);
        let serial_flags: Vec<bool> = (0..32)
            .map(|i| {
                let (_, _, p) = mk(i);
                submit(&mut serial, i, p).1
            })
            .collect();
        let mut batched = engine(4);
        let (results, cost) = batched.submit_batch((0..32).map(mk).collect());
        let batch_flags: Vec<bool> = results.iter().map(|(_, r)| *r).collect();
        assert_eq!(serial_flags, batch_flags);
        assert!(cost.total().total() > 0);
        // Drain both engines by finishing the same task (by tag) each
        // step; per-step wake sets must agree.
        use std::collections::BTreeMap;
        let mut s_ready: BTreeMap<u64, TaskId> = serial_flags
            .iter()
            .enumerate()
            .filter(|(_, r)| **r)
            .map(|(i, _)| (i as u64, TaskId(i as u32)))
            .collect();
        let mut b_ready: BTreeMap<u64, TaskId> = results
            .iter()
            .filter(|(_, r)| *r)
            .map(|(id, _)| (batched.tag_of(*id), *id))
            .collect();
        assert_eq!(
            s_ready.keys().collect::<Vec<_>>(),
            b_ready.keys().collect::<Vec<_>>()
        );
        while let Some((&tag, _)) = s_ready.first_key_value() {
            let st = s_ready.remove(&tag).unwrap();
            let bt = b_ready.remove(&tag).expect("ready sets agreed above");
            let sf = serial.finish(st);
            let bf = batched.finish(bt);
            for &t in &sf.newly_ready {
                s_ready.insert(serial.tag_of(t), t);
            }
            for &t in &bf.newly_ready {
                b_ready.insert(batched.tag_of(t), t);
            }
            assert_eq!(
                s_ready.keys().collect::<Vec<_>>(),
                b_ready.keys().collect::<Vec<_>>()
            );
        }
        assert_eq!(serial.in_flight(), 0);
        assert_eq!(batched.in_flight(), 0);
    }

    /// Find an address homed on `target` under an `n`-shard partition.
    fn addr_on(n: usize, target: usize, salt: u64) -> u64 {
        let mut a = 0u64;
        loop {
            let addr = 0x7_0000 + salt * 0x10_0000 + a * 64;
            a += 1;
            if shard_of_addr(addr, n) == target {
                return addr;
            }
        }
    }

    #[test]
    fn bounded_admit_stalls_on_the_full_shard_and_retries() {
        let mut e =
            ShardedEngine::with_capacity(2, &NexusConfig::unbounded(), ShardCapacity::Bounded(1));
        assert_eq!(e.capacity(), ShardCapacity::Bounded(1));
        let (t0, r0) = e
            .submit(1, 0, vec![Param::output(addr_on(2, 0, 0), 4)])
            .unwrap();
        assert!(r0);
        assert_eq!(e.resident_on(0), 1);
        // Shard 0 is full; a task spanning both shards must reject whole.
        let params = vec![
            Param::output(addr_on(2, 0, 1), 4),
            Param::output(addr_on(2, 1, 1), 4),
        ];
        let rej = e.try_admit(1, 1, params.clone()).unwrap_err();
        assert_eq!(rej.shard, 0);
        assert!(matches!(rej.error, PoolError::PoolFull { .. }));
        assert_eq!(e.resident_on(1), 0, "rejection must not touch shard 1");
        // The retry succeeds once shard 0's resident finishes.
        e.finish(t0);
        assert_eq!(e.resident_on(0), 0);
        let (t1, r1) = e.submit(1, 1, params).unwrap();
        assert!(r1);
        assert_eq!((e.resident_on(0), e.resident_on(1)), (1, 1));
        e.finish(t1);
        assert_eq!((e.resident_on(0), e.resident_on(1)), (0, 0));
    }

    #[test]
    fn capacity_one_chain_drains_with_caller_retry() {
        // A strict inout chain through one capacity-1 shard set: every
        // admission after the first stalls until the previous task
        // finishes, and the chain still executes exactly once, in order.
        let mut e =
            ShardedEngine::with_capacity(2, &NexusConfig::unbounded(), ShardCapacity::Bounded(1));
        let cell = addr_on(2, 0, 2);
        let mut done = Vec::new();
        let mut live: Option<TaskId> = None;
        for tag in 0..16u64 {
            let id = loop {
                match e.try_admit(1, tag, vec![Param::inout(cell, 4)]) {
                    Ok((id, _)) => break id,
                    Err(rej) => {
                        assert_eq!(rej.shard, 0);
                        let prev = live.take().expect("stall with nothing resident");
                        done.push(e.finish(prev).tag);
                    }
                }
            };
            match e.check(id) {
                ShardedCheck::Done { ready, .. } => {
                    // With capacity 1 the predecessor always finished first.
                    assert!(ready, "tag {tag}");
                }
                other => panic!("unexpected {other:?}"),
            }
            live = Some(id);
        }
        done.push(e.finish(live.unwrap()).tag);
        assert_eq!(done, (0..16).collect::<Vec<u64>>());
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn bounded_batch_parks_remainder_and_resumes() {
        let mut e =
            ShardedEngine::with_capacity(2, &NexusConfig::unbounded(), ShardCapacity::Bounded(2));
        // Four independent tasks on shard 0: only two fit.
        let batch: Vec<_> = (0..4u64)
            .map(|i| (1u64, i, vec![Param::output(addr_on(2, 0, 10 + i), 4)]))
            .collect();
        let out = e.submit_batch_bounded(batch);
        assert_eq!(out.submitted.len(), 2);
        assert_eq!(out.stalled, Some(0));
        assert_eq!(out.parked.len(), 2);
        assert_eq!(e.resident_on(0), 2);
        // Finishing one resident frees a slot; the re-offer admits one
        // more and parks the last again.
        let first = out.submitted[0].0;
        e.finish(first);
        let out2 = e.submit_batch_bounded(out.parked);
        assert_eq!(out2.submitted.len(), 1);
        assert_eq!(out2.stalled, Some(0));
        assert_eq!(out2.parked.len(), 1);
        // Tags survive the parking round-trips in order.
        assert_eq!(e.tag_of(out2.submitted[0].0), 2);
        let (tail, _) = (e.finish(out.submitted[1].0), e.finish(out2.submitted[0].0));
        assert!(tail.newly_ready.is_empty());
        let out3 = e.submit_batch_bounded(out2.parked);
        assert!(out3.stalled.is_none() && out3.parked.is_empty());
        assert_eq!(e.tag_of(out3.submitted[0].0), 3);
        e.finish(out3.submitted[0].0);
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "submit_batch_bounded")]
    fn unbounded_batch_api_rejects_bounded_engines() {
        let mut e =
            ShardedEngine::with_capacity(2, &NexusConfig::unbounded(), ShardCapacity::Bounded(1));
        e.submit_batch(vec![(1, 0, vec![Param::output(0x40, 4)])]);
    }

    #[test]
    fn unified_errors_attribute_the_shard_and_keep_capacity_distinct() {
        use nexuspp_core::TaskBuilder;
        let mut e =
            ShardedEngine::with_capacity(2, &NexusConfig::unbounded(), ShardCapacity::Bounded(1));
        // Bad params are a real error on the Submission path.
        let dup = Submission {
            fptr: 1,
            tag: 0,
            priority: nexuspp_core::Priority::Normal,
            tenant: nexuspp_core::TenantId::NONE,
            params: vec![Param::input(0x40, 4), Param::output(0x40, 4)],
        };
        assert_eq!(
            e.submit_task(dup),
            Err(SubmitError::DuplicateAddress { addr: 0x40 })
        );
        // Fill shard 0, then watch a spanning task reject as CapacityFull
        // with the shard named — where the tuple path reports PoolFull.
        let a0 = addr_on(2, 0, 20);
        let (t0, _) = e
            .submit_task(TaskBuilder::new(1).tag(0).writes(a0, 4).build())
            .unwrap();
        let spanning = TaskBuilder::new(1)
            .tag(1)
            .writes(addr_on(2, 0, 21), 4)
            .writes(addr_on(2, 1, 21), 4)
            .build();
        assert_eq!(
            e.submit_task(spanning.clone()),
            Err(SubmitError::CapacityFull { shard: 0, limit: 1 })
        );
        let rej = e.try_admit(1, 1, spanning.params.clone()).unwrap_err();
        assert!(matches!(rej.error, PoolError::PoolFull { .. }));
        assert_eq!(SubmitError::from(rej).shard(), Some(0));
        // Retry succeeds after the resident finishes.
        e.finish(t0);
        let (t1, ready) = e.submit_task(spanning).unwrap();
        assert!(ready);
        e.finish(t1);
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn fixed_pool_rejections_surface_through_submit_task() {
        use nexuspp_core::TaskBuilder;
        let cfg = NexusConfig {
            task_pool_entries: 2,
            ..Default::default()
        };
        let mut e = ShardedEngine::new(1, &cfg);
        e.submit_task(TaskBuilder::new(1).writes(0x40, 4).build())
            .unwrap();
        e.submit_task(TaskBuilder::new(1).writes(0x80, 4).build())
            .unwrap();
        match e.submit_task(TaskBuilder::new(1).writes(0xC0, 4).build()) {
            Err(SubmitError::PoolFull {
                shard: Some(0),
                needed: 1,
                ..
            }) => {}
            other => panic!("expected attributed PoolFull, got {other:?}"),
        }
        // A task larger than the whole pool is structurally rejected.
        let mut big = TaskBuilder::new(1);
        for i in 0..64u64 {
            big = big.writes(0x1000 + i * 64, 4);
        }
        match e.try_admit_task(big.build()) {
            Err(e) => assert!(!e.is_retryable()),
            Ok(_) => panic!("expected TaskTooLarge"),
        }
    }

    #[test]
    fn task_slots_are_reused() {
        let mut e = engine(2);
        let (a, _) = submit(&mut e, 0, vec![Param::output(0x40, 4)]);
        e.finish(a);
        let (b, _) = submit(&mut e, 1, vec![Param::output(0x80, 4)]);
        assert_eq!(a, b, "freed home-record slots are recycled");
        e.finish(b);
    }
}
