//! Per-tenant admission budgets layered *above* shard capacity.
//!
//! [`ShardCapacity`](nexuspp_core::ShardCapacity) bounds what the
//! dependence hardware can hold in total; it says nothing about who
//! filled it. A multi-tenant ingress needs the second axis: a cap on how
//! many of each tenant's tasks may be in flight at once, so one
//! saturating client degrades into its own backpressure instead of
//! consuming the whole table and starving everyone else.
//!
//! [`TenantBudgets`] is that ledger. It sits in front of
//! `try_submit`-style admission: [`charge`](TenantBudgets::charge) before
//! attempting a submit (a denial is a retryable client-side signal, never
//! a park), [`credit`](TenantBudgets::credit) when the task retires — or
//! immediately, if the submit itself was rejected downstream. All
//! accounting is lock-free atomics; the map of lanes is immutable after
//! construction, so charging is a hash lookup plus one CAS loop.

use nexuspp_core::TenantId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why [`TenantBudgets::charge`] refused an admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// The tenant is at its in-flight cap. Retryable: credit happens on
    /// task retirement, so capacity frees as the tenant's work drains.
    AtCap {
        /// The cap that was hit.
        cap: u64,
    },
    /// The tenant was never registered and the ledger was built without
    /// a default lane. Not retryable.
    UnknownTenant,
}

/// One tenant's lane: its cap plus live accounting.
struct Lane {
    cap: u64,
    in_flight: AtomicU64,
    admitted: AtomicU64,
    denied: AtomicU64,
    peak: AtomicU64,
}

impl Lane {
    fn new(cap: u64) -> Lane {
        Lane {
            cap,
            in_flight: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            denied: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    fn charge(&self) -> Result<(), BudgetError> {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                self.denied.fetch_add(1, Ordering::Relaxed);
                return Err(BudgetError::AtCap { cap: self.cap });
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.peak.fetch_max(cur + 1, Ordering::Relaxed);
        Ok(())
    }

    fn credit(&self) {
        let prev = self.in_flight.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "credit without a matching charge");
    }

    fn counts(&self) -> TenantCounts {
        TenantCounts {
            cap: self.cap,
            in_flight: self.in_flight.load(Ordering::Acquire),
            admitted: self.admitted.load(Ordering::Relaxed),
            denied: self.denied.load(Ordering::Relaxed),
            peak: self.peak.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one tenant's accounting (exact at quiescence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantCounts {
    /// The configured in-flight cap.
    pub cap: u64,
    /// Charges not yet credited back.
    pub in_flight: u64,
    /// Total successful charges.
    pub admitted: u64,
    /// Total refused charges.
    pub denied: u64,
    /// High-water mark of `in_flight`.
    pub peak: u64,
}

/// The multi-tenant admission ledger: one lane per registered tenant,
/// immutable after construction (lookup is wait-free, accounting is one
/// CAS loop). [`TenantId::NONE`] is always admitted unmetered — it is
/// the single-tenant/embedded path, which predates tenancy.
pub struct TenantBudgets {
    lanes: HashMap<TenantId, Lane>,
    /// Cap applied to tenants with no registered lane; `None` refuses
    /// them outright.
    default_cap: Option<u64>,
    /// Shared lane for unregistered tenants when `default_cap` is set.
    /// Collapsing them into one lane keeps the map immutable; the
    /// default lane is a catch-all, not per-tenant isolation.
    default_lane: Option<Lane>,
}

impl TenantBudgets {
    /// Build a ledger from `(tenant, cap)` pairs. Unregistered tenants
    /// are refused ([`BudgetError::UnknownTenant`]); see
    /// [`with_default_cap`](Self::with_default_cap) to admit them. A cap
    /// of 0 registers a tenant that is always denied (administrative
    /// suspension).
    pub fn new(caps: impl IntoIterator<Item = (TenantId, u64)>) -> TenantBudgets {
        TenantBudgets {
            lanes: caps
                .into_iter()
                .map(|(t, cap)| (t, Lane::new(cap)))
                .collect(),
            default_cap: None,
            default_lane: None,
        }
    }

    /// As [`new`](Self::new), but tenants without a registered lane
    /// share one catch-all lane capped at `cap`.
    pub fn with_default_cap(
        caps: impl IntoIterator<Item = (TenantId, u64)>,
        cap: u64,
    ) -> TenantBudgets {
        let mut b = TenantBudgets::new(caps);
        b.default_cap = Some(cap);
        b.default_lane = Some(Lane::new(cap));
        b
    }

    fn lane(&self, tenant: TenantId) -> Option<&Lane> {
        self.lanes.get(&tenant).or(self.default_lane.as_ref())
    }

    /// Reserve one in-flight slot for `tenant`. Must be paired with
    /// exactly one [`credit`](Self::credit) once the task retires (or
    /// immediately, if the downstream submit was itself rejected).
    /// [`TenantId::NONE`] always succeeds and is not accounted.
    pub fn charge(&self, tenant: TenantId) -> Result<(), BudgetError> {
        if !tenant.is_tenant() {
            return Ok(());
        }
        match self.lane(tenant) {
            Some(lane) => lane.charge(),
            None => Err(BudgetError::UnknownTenant),
        }
    }

    /// Release a slot reserved by a successful [`charge`](Self::charge).
    pub fn credit(&self, tenant: TenantId) {
        if !tenant.is_tenant() {
            return;
        }
        if let Some(lane) = self.lane(tenant) {
            lane.credit();
        }
    }

    /// Accounting snapshot for `tenant`; `None` if it has no lane.
    pub fn counts(&self, tenant: TenantId) -> Option<TenantCounts> {
        self.lane(tenant).map(Lane::counts)
    }

    /// Snapshot every registered lane (excludes the catch-all).
    pub fn all_counts(&self) -> Vec<(TenantId, TenantCounts)> {
        let mut v: Vec<(TenantId, TenantCounts)> = self
            .lanes
            .iter()
            .map(|(t, lane)| (*t, lane.counts()))
            .collect();
        v.sort_by_key(|(t, _)| *t);
        v
    }

    /// The registered tenants, sorted.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut v: Vec<TenantId> = self.lanes.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn charges_up_to_cap_then_denies_until_credited() {
        let b = TenantBudgets::new([(TenantId(1), 2)]);
        assert!(b.charge(TenantId(1)).is_ok());
        assert!(b.charge(TenantId(1)).is_ok());
        assert_eq!(b.charge(TenantId(1)), Err(BudgetError::AtCap { cap: 2 }));
        b.credit(TenantId(1));
        assert!(b.charge(TenantId(1)).is_ok());
        let c = b.counts(TenantId(1)).unwrap();
        assert_eq!((c.admitted, c.denied, c.in_flight, c.peak), (3, 1, 2, 2));
    }

    #[test]
    fn tenants_are_isolated_ledgers() {
        let b = TenantBudgets::new([(TenantId(1), 1), (TenantId(2), 4)]);
        assert!(b.charge(TenantId(1)).is_ok());
        assert!(b.charge(TenantId(1)).is_err());
        // Tenant 1 being at cap must not affect tenant 2 at all.
        for _ in 0..4 {
            assert!(b.charge(TenantId(2)).is_ok());
        }
        assert_eq!(b.counts(TenantId(2)).unwrap().denied, 0);
    }

    #[test]
    fn none_is_unmetered_and_unknown_is_refused() {
        let b = TenantBudgets::new([(TenantId(1), 1)]);
        for _ in 0..100 {
            assert!(b.charge(TenantId::NONE).is_ok());
        }
        assert_eq!(b.charge(TenantId(9)), Err(BudgetError::UnknownTenant));
        assert!(b.counts(TenantId(9)).is_none());
    }

    #[test]
    fn default_cap_admits_unregistered_tenants() {
        let b = TenantBudgets::with_default_cap([(TenantId(1), 1)], 2);
        assert!(b.charge(TenantId(7)).is_ok());
        assert!(b.charge(TenantId(8)).is_ok());
        // The catch-all is one shared lane, so a third stranger is denied.
        assert_eq!(b.charge(TenantId(9)), Err(BudgetError::AtCap { cap: 2 }));
        b.credit(TenantId(7));
        assert!(b.charge(TenantId(9)).is_ok());
    }

    #[test]
    fn zero_cap_suspends_a_tenant() {
        let b = TenantBudgets::new([(TenantId(3), 0)]);
        assert_eq!(b.charge(TenantId(3)), Err(BudgetError::AtCap { cap: 0 }));
    }

    #[test]
    fn concurrent_charge_credit_never_exceeds_cap() {
        let b = Arc::new(TenantBudgets::new([(TenantId(1), 8)]));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut held = 0u64;
                    for _ in 0..10_000 {
                        if b.charge(TenantId(1)).is_ok() {
                            held += 1;
                            let c = b.counts(TenantId(1)).unwrap();
                            assert!(c.in_flight <= c.cap, "cap violated: {c:?}");
                            if held > 1 {
                                b.credit(TenantId(1));
                                held -= 1;
                            }
                        }
                    }
                    for _ in 0..held {
                        b.credit(TenantId(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let c = b.counts(TenantId(1)).unwrap();
        assert_eq!(c.in_flight, 0);
        assert!(c.peak <= c.cap);
        assert_eq!(c.admitted + c.denied, 4 * 10_000);
    }
}
