//! The wake-stress harness: a wide fan-in workload driven straight
//! through a [`ShardDispatcher`] by real finisher threads, shared by the
//! `wake_perf` acceptance gate, the `wake_delivery` criterion bench and
//! the `repro -- wakes` experiment.
//!
//! Shape (mirroring `nexuspp_workloads::wake_stress`, which generates the
//! same DAG as an address trace): `producers` independent writer tasks
//! whose addresses all land on **one** shard, each with `consumers_per`
//! reader tasks parked on its address. Every producer completion
//! therefore releases a burst of dependents homed on the same hot shard —
//! many finishers hammering one shard's kick-off path at once, which is
//! exactly the traffic the lock-free wake lists exist for. Under
//! [`WakeMode::Locked`] each finish queues its burst onto the kick-off
//! `VecDeque` while holding the hot shard's lock and pays a second
//! acquisition to hand records to the report; under
//! [`WakeMode::LockFree`] the burst posts outside the lock and delivery
//! is a CAS claim, so finishers that lose a race skip instead of
//! blocking.
//!
//! Payloads are `u64` tags; "executing" a task costs nothing, so
//! measured wall-clock is almost pure resolution + wake delivery —
//! exactly the path this comparison isolates.

use crate::dispatch::{ShardDispatcher, TaskTicket, WakeCounts, WakeMode};
use nexuspp_core::{nth_addr_on_shard, NexusConfig, TaskBuilder};
use nexuspp_obs::Recorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Parameters of the wake-stress run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeStressSpec {
    /// Finisher threads (the "workers" retiring tasks concurrently).
    pub finishers: usize,
    /// Independent producer tasks, all homed on the hot shard.
    pub producers: u32,
    /// Dependent reader tasks parked on each producer's address.
    pub consumers_per: u32,
    /// Shards in the dispatcher (every task lives on shard 0; the rest
    /// exist to keep the address routing honest).
    pub shards: usize,
    /// Busy-work per retired task, in nanoseconds (0 = none — the
    /// historical shape where wall-clock is almost pure resolution +
    /// delivery). Nonzero values model real task bodies, which the
    /// live-collector overhead gate needs: with zero-cost tasks every
    /// nanosecond of instrumentation is pure relative overhead, so the
    /// gate would measure the host's scheduling noise, not the
    /// streaming path.
    pub spin_ns: u64,
}

impl WakeStressSpec {
    /// A spec sized for `finishers` concurrent finisher threads with a
    /// wake burst of `consumers_per` per completion.
    pub fn for_finishers(finishers: usize, producers: u32, consumers_per: u32) -> Self {
        WakeStressSpec {
            finishers,
            producers,
            consumers_per,
            shards: 4,
            spin_ns: 0,
        }
    }

    /// Total tasks (producers plus all consumers).
    pub fn task_count(&self) -> u64 {
        self.producers as u64 * (1 + self.consumers_per as u64)
    }

    /// Wake records the hot shard must deliver (one per consumer).
    pub fn wake_count(&self) -> u64 {
        self.producers as u64 * self.consumers_per as u64
    }

    /// Producer `p`'s address: the `p`-th address homed on shard 0 of
    /// [`shards`](Self::shards) — the same address
    /// `nexuspp_workloads::wake_stress` aims at (both delegate to
    /// [`nth_addr_on_shard`]).
    pub fn producer_addr(&self, p: u32) -> u64 {
        nth_addr_on_shard(0, self.shards, p)
    }
}

/// Outcome of one wake-stress run.
#[derive(Debug, Clone)]
pub struct WakeRun {
    /// Wall-clock of the finish storm (submission excluded — it is
    /// identical under both wake modes).
    pub elapsed: Duration,
    /// Tasks retired (producers + consumers; must equal
    /// [`WakeStressSpec::task_count`]).
    pub completed: u64,
    /// Wake records delivered through finish reports (must equal
    /// [`WakeStressSpec::wake_count`]).
    pub woken: u64,
    /// The dispatcher's wake-path counters at quiescence — delivery
    /// time (the gated quantity) and delivery lock acquisitions (zero
    /// under [`WakeMode::LockFree`]).
    pub wake_counts: WakeCounts,
}

impl WakeRun {
    /// Delivered wakes per second.
    pub fn wakes_per_sec(&self) -> f64 {
        self.woken as f64 / self.elapsed.as_secs_f64()
    }

    /// Time spent in the drain-to-report wake delivery step.
    pub fn delivery_time(&self) -> Duration {
        Duration::from_nanos(self.wake_counts.delivery_ns)
    }
}

/// Run the workload to completion under `mode` and report. Panics if any
/// task is lost or duplicated (the differential suites guard semantics;
/// here it protects the measurement).
pub fn run_wake_stress(mode: WakeMode, spec: &WakeStressSpec) -> WakeRun {
    run_wake_stress_with(mode, spec, None)
}

/// [`run_wake_stress`] with an optional lifecycle-event recorder
/// attached to the dispatcher — the harness behind the recording-
/// overhead gate (a [`Recorder::disabled`] recorder must cost within
/// noise of no recorder at all) and behind event-stream validation on a
/// contended workload.
pub fn run_wake_stress_with(
    mode: WakeMode,
    spec: &WakeStressSpec,
    obs: Option<Arc<Recorder>>,
) -> WakeRun {
    assert!(spec.finishers >= 1 && spec.producers >= 1);
    let mut d = ShardDispatcher::<u64>::with_mode(
        spec.shards,
        &NexusConfig::unbounded(),
        nexuspp_core::ShardCapacity::Unbounded,
        mode,
    );
    if let Some(rec) = obs {
        d = d.with_recorder(rec);
    }
    let d = Arc::new(d);
    // Submit every producer (independent: ready at once) and park every
    // consumer behind its producer's address.
    let mut ready: Vec<(TaskTicket<u64>, u64)> = Vec::with_capacity(spec.producers as usize);
    for p in 0..spec.producers {
        let addr = spec.producer_addr(p);
        let sub = TaskBuilder::new(1).tag(p as u64).writes(addr, 16).build();
        let r = d.submit(sub.fptr, sub.tag, &sub.params, p as u64);
        ready.push((r.ticket, r.ready.expect("producers are independent")));
        for c in 0..spec.consumers_per {
            let tag = 1000 + p as u64 * spec.consumers_per as u64 + c as u64;
            let sub = TaskBuilder::new(1).tag(tag).reads(addr, 16).build();
            let r = d.submit(sub.fptr, sub.tag, &sub.params, tag);
            assert!(r.ready.is_none(), "consumers must park on their producer");
            drop(r.ticket); // resurfaces via some finisher's report
        }
    }
    // The finish storm: split the ready producers across finisher
    // threads; every thread also retires whatever wakes surface in its
    // own reports (consumers whose finish feeds the same hot shard).
    let completed = Arc::new(AtomicU64::new(0));
    let woken = Arc::new(AtomicU64::new(0));
    let shares = Arc::new(Mutex::new(split_shares(ready, spec.finishers)));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..spec.finishers)
        .map(|_| {
            let d = Arc::clone(&d);
            let completed = Arc::clone(&completed);
            let woken = Arc::clone(&woken);
            let shares = Arc::clone(&shares);
            let spin_ns = spec.spin_ns;
            std::thread::spawn(move || {
                let mut queue = shares.lock().unwrap().pop().expect("one share per thread");
                while let Some((ticket, _tag)) = queue.pop() {
                    spin_for(spin_ns);
                    let report = d.finish(ticket);
                    completed.fetch_add(report.completed, Ordering::Relaxed);
                    woken.fetch_add(report.woken.len() as u64, Ordering::Relaxed);
                    queue.extend(report.woken);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed = t0.elapsed();
    let completed = completed.load(Ordering::Relaxed);
    let woken = woken.load(Ordering::Relaxed);
    assert_eq!(completed, spec.task_count(), "lost or duplicated tasks");
    assert_eq!(woken, spec.wake_count(), "lost or duplicated wakes");
    assert_eq!(d.sub_descriptors_in_flight(), 0, "leaked sub-descriptors");
    assert!(
        d.wake_list_depths().iter().all(|&n| n == 0),
        "undelivered wakes left on a shard list"
    );
    WakeRun {
        elapsed,
        completed,
        woken,
        wake_counts: d.wake_counts(),
    }
}

/// Best (minimum **wake-delivery time**) over `runs` repetitions.
pub fn best_of(mode: WakeMode, spec: &WakeStressSpec, runs: u32) -> WakeRun {
    let mut best: Option<WakeRun> = None;
    for _ in 0..runs {
        let r = run_wake_stress(mode, spec);
        if best
            .as_ref()
            .is_none_or(|b| r.wake_counts.delivery_ns < b.wake_counts.delivery_ns)
        {
            best = Some(r);
        }
    }
    best.expect("runs >= 1")
}

/// Busy-wait for roughly `ns` nanoseconds (a stand-in task body; no
/// syscall, so a 1-CPU host still interleaves finisher threads via
/// preemption rather than parking them).
#[inline]
fn spin_for(ns: u64) {
    if ns == 0 {
        return;
    }
    let t0 = Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Deal `ready` round-robin into `n` shares (every thread gets within
/// one producer of every other).
fn split_shares<T>(ready: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let mut shares: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, item) in ready.into_iter().enumerate() {
        shares[i % n].push(item);
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_retire_every_task_and_wake() {
        let spec = WakeStressSpec {
            finishers: 4,
            producers: 16,
            consumers_per: 8,
            shards: 4,
            spin_ns: 0,
        };
        for mode in [WakeMode::Locked, WakeMode::LockFree] {
            let r = run_wake_stress(mode, &spec);
            assert_eq!(r.completed, spec.task_count(), "{}", mode.name());
            assert_eq!(r.woken, spec.wake_count(), "{}", mode.name());
        }
    }

    #[test]
    fn producer_addresses_all_home_on_shard_zero() {
        let spec = WakeStressSpec::for_finishers(4, 32, 4);
        for p in 0..spec.producers {
            assert_eq!(
                nexuspp_core::shard_of_addr(spec.producer_addr(p), spec.shards),
                0
            );
        }
        // Distinct producers get distinct addresses.
        let a: Vec<u64> = (0..spec.producers).map(|p| spec.producer_addr(p)).collect();
        let set: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        assert_eq!(set.len(), a.len());
    }
}
