//! # nexuspp-shard — sharded dependency resolution
//!
//! The paper's Nexus++ resolves every dependency through a single Task
//! Pool + Dependence Table, and both of this reproduction's backends
//! inherited that centralization: the cycle-level Task Machine and the
//! threaded runtime serialize every admit/check/finish through one
//! [`DependencyEngine`](nexuspp_core::DependencyEngine) behind one lock.
//! This crate breaks that bottleneck while preserving exactly the paper's
//! readiness semantics:
//!
//! * [`engine`] — [`ShardedEngine`]: N independent `DependencyEngine`
//!   instances composed into one logically-equivalent engine. Parameters
//!   are routed to shards by address hash (the same SplitMix64 family the
//!   Dependence Table buckets with, via
//!   [`shard_of_addr`](nexuspp_core::shard_of_addr)); each involved shard
//!   holds a *sub-descriptor* with that shard's slice of the parameter
//!   list; a per-task remote dependence counter aggregated at the home
//!   record counts shards whose slice is not yet conflict-free. A task is
//!   ready exactly when every shard slice is — which, because distinct
//!   addresses impose independent constraints, is exactly the single
//!   engine's (and the oracle's) readiness predicate. Verified
//!   differentially in `tests/sharded_differential.rs`.
//!   The module also carries the batched submission front-end
//!   ([`ShardedEngine::submit_batch`]): admits and checks are grouped so
//!   every shard is visited once per batch per stage, the software
//!   analogue of the paper's buffered TP writes.
//! * [`dispatch`] — [`ShardDispatcher`]: the concurrent form. Each shard
//!   sits behind its own lock; finishing a task pushes per-shard release
//!   records into per-shard submission rings that whoever next holds the
//!   shard lock drains, so one lock acquisition retires many completions
//!   under contention. Cross-shard readiness is aggregated with atomic
//!   counters (a submission guard prevents half-submitted tasks from
//!   being scheduled), and wake delivery bypasses the shard lock
//!   entirely: ready tasks post to a lock-free MPSC wake list per shard
//!   and a CAS-claimed drainer hands them to the finish report (see
//!   [`WakeMode`]). This is what `ShardedRuntime` in `nexuspp-runtime`
//!   executes on.
//! * [`budget`] — [`TenantBudgets`]: per-tenant in-flight admission caps
//!   layered above [`ShardCapacity`](nexuspp_core::ShardCapacity), the
//!   accounting a multi-tenant ingress (`nexuspp-service`) meters
//!   clients with. Denials are retryable client-side signals, never
//!   parks.
//! * [`stress`] — the wake-stress harness: the wide fan-in workload
//!   (many finishers releasing dependents homed on one shard) driven
//!   straight through a [`ShardDispatcher`] by real threads, shared by
//!   the `wake_perf` acceptance gate, the `wake_delivery` criterion
//!   bench, and the `repro -- wakes` experiment.
//!
//! Related work motivating the direction: Álvarez et al., *Advanced
//! Synchronization Techniques for Task-based Runtime Systems*
//! (arXiv:2105.07902) — scalable, lock-minimizing dependency management as
//! the decisive runtime lever — and Niethammer et al., *Avoiding
//! Serialization Effects in Data-Dependency aware Task Parallel
//! Algorithms* (arXiv:1401.4441) — centralized dependency handling
//! serializes otherwise-parallel workloads.

#![deny(missing_docs)]

pub mod budget;
pub mod dispatch;
pub mod engine;
pub mod stress;

pub use budget::{BudgetError, TenantBudgets, TenantCounts};
pub use dispatch::{
    CapacityCounts, FinishReport, ShardDispatcher, SubmitResult, TaskTicket, WakeCounts, WakeMode,
};
pub use engine::{
    BoundedBatch, OpBreakdown, ShardRejection, ShardedCheck, ShardedEngine, ShardedFinish, TaskId,
};
