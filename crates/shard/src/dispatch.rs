//! The concurrent sharded dispatcher: per-shard locks, atomic cross-shard
//! readiness aggregation, and deferred-finish submission rings.
//!
//! This is the threaded form of [`ShardedEngine`](crate::ShardedEngine):
//! each shard is a [`DependencyEngine`] behind its own
//! [`parking_lot::Mutex`], so admits and finishes that touch different
//! shards proceed in parallel — the centralization the single-engine
//! runtime suffers (one global engine lock on every task completion) is
//! gone.
//!
//! ## Cross-shard readiness
//!
//! Each task carries an atomic **remote dependence counter** initialized
//! to `shards_touched + 1`. Every shard slice found (or made)
//! conflict-free decrements it; the extra `+1` is a *submission guard*
//! released only after every slice is admitted and the task's payload is
//! stored, so a concurrent wake can never schedule a half-submitted task.
//! Whoever performs the transition to zero — submitter or waker — owns
//! the payload and schedules the task, exactly once.
//!
//! ## Deferred-finish rings (batched submission)
//!
//! Finishing a task does not lock its shards directly. Instead the
//! per-shard release records are pushed onto each shard's
//! [`SegQueue`]-based ring, and the finisher then drains every involved
//! shard's ring under that shard's lock. Under contention a single lock
//! acquisition retires *many* queued completions (whoever gets the lock
//! drains everyone's records — flat combining), and a finisher whose
//! records were already drained by a concurrent holder skips the lock
//! entirely. This amortizes locking the way the paper's buffered TP
//! writes amortize Task Pool port pressure.

use crate::engine::route_params;
use crossbeam::queue::SegQueue;
use nexuspp_core::{DependencyEngine, NexusConfig, ShardCapacity, TdIndex};
use nexuspp_trace::Param;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The home record of a task in flight.
#[derive(Debug)]
struct Node<P> {
    tag: u64,
    /// Remote dependence counter: unready shard slices, plus one
    /// submission guard released at the end of `submit`.
    pending: AtomicU32,
    /// Shard slices whose finish record has not been drained yet.
    parts_left: AtomicU32,
    /// `(shard, sub-descriptor)` per involved shard; set once at the end
    /// of `submit` (readers run strictly after `submit` returns).
    parts: OnceLock<Vec<(u32, TdIndex)>>,
    /// The caller's payload, surrendered to whoever makes the task ready.
    payload: Mutex<Option<P>>,
}

/// Handle to a submitted task; required (and consumed) by
/// [`ShardDispatcher::finish`].
#[derive(Debug)]
pub struct TaskTicket<P>(Arc<Node<P>>);

impl<P> TaskTicket<P> {
    /// The caller tag the task was submitted with.
    pub fn tag(&self) -> u64 {
        self.0.tag
    }
}

/// Outcome of a submission.
#[derive(Debug)]
pub struct SubmitResult<P> {
    /// Handle for the eventual [`ShardDispatcher::finish`] call.
    pub ticket: TaskTicket<P>,
    /// The payload, handed back if the task is ready to run right now;
    /// `None` if the task parked waiting on dependencies (its payload
    /// will surface in some [`FinishReport::woken`] later).
    pub ready: Option<P>,
}

/// Outcome of a finish call, including work retired on behalf of
/// concurrent finishers whose ring records this call drained.
#[derive(Debug)]
pub struct FinishReport<P> {
    /// Tasks made ready by the completions this call drained, with their
    /// payloads. May contain tasks submitted by other threads.
    pub woken: Vec<(TaskTicket<P>, P)>,
    /// Tasks whose last shard slice was retired by this call (the unit
    /// a quiescence counter should track). May count other threads'
    /// tasks; every task is counted exactly once across all calls.
    pub completed: u64,
}

impl<P> Default for FinishReport<P> {
    fn default() -> Self {
        FinishReport {
            woken: Vec::new(),
            completed: 0,
        }
    }
}

/// One release record: a sub-descriptor to finish, plus its home record.
type FinRecord<P> = (Arc<Node<P>>, TdIndex);

/// One shard's bounded-capacity counters at a quiescent point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CapacityCounts {
    /// Submissions that parked with this shard as the first full shard
    /// of their stall episode.
    pub stalls_observed: u64,
    /// Parked submissions whose retry eventually succeeded (attributed
    /// to the episode's first full shard). Equals `stalls_observed` once
    /// no submitter is parked.
    pub retries_resolved: u64,
    /// Tasks currently holding a residency slot on this shard.
    pub resident: usize,
}

struct ShardCell<P> {
    /// Deferred-finish submission ring.
    ring: SegQueue<FinRecord<P>>,
    state: Mutex<ShardState<P>>,
    /// Tasks holding a residency slot here (reserved before admission,
    /// released as each finish record is drained).
    resident: AtomicU32,
    /// Pairs with `unpark`: submitters blocked on a full shard wait here.
    park: Mutex<()>,
    unpark: Condvar,
    stalls: AtomicU64,
    retries_resolved: AtomicU64,
}

struct ShardState<P> {
    engine: DependencyEngine,
    /// Sub-descriptor index → home record of the owning task.
    owner: Vec<Option<Arc<Node<P>>>>,
}

/// N dependency engines behind per-shard locks, aggregating readiness
/// with atomics. `P` is the payload delivered when a task becomes ready
/// (a closure + access grants in the runtime; `()` in benches).
pub struct ShardDispatcher<P> {
    shards: Box<[ShardCell<P>]>,
    capacity: ShardCapacity,
}

impl<P> ShardDispatcher<P> {
    /// Build a dispatcher over `n_shards` engines configured by `cfg`.
    /// The configuration must be growable: the submit path holds no
    /// global lock, so a mid-admission table stall could not be resolved
    /// by waiting (the software structures virtualize table capacity; the
    /// *residency* bound is [`with_capacity`](Self::with_capacity)).
    pub fn new(n_shards: usize, cfg: &NexusConfig) -> Self {
        ShardDispatcher::with_capacity(n_shards, cfg, ShardCapacity::Unbounded)
    }

    /// Build a bounded dispatcher: each shard admits at most `capacity`
    /// resident tasks. A submission that would overflow any involved
    /// shard reserves nothing, parks on the first full shard, and retries
    /// when that shard's next finish record is drained — so submitters
    /// stall exactly like the paper's master core does on a full Task
    /// Pool, and resume on the shard's finish report.
    ///
    /// Deadlock contract: a task's producers must be submitted before it
    /// (StarSs program order) and completions must be driven from other
    /// threads (the runtime's workers); then the protocol is deadlock-free
    /// down to capacity 1, because a parked submitter holds no slots and
    /// every resident task can eventually run.
    pub fn with_capacity(n_shards: usize, cfg: &NexusConfig, capacity: ShardCapacity) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(
            cfg.growable,
            "the dispatcher's lock-per-shard submit path cannot stall mid-admission; \
             use a growable config (bound residency via ShardCapacity)"
        );
        capacity.validate();
        ShardDispatcher {
            shards: (0..n_shards)
                .map(|_| ShardCell {
                    ring: SegQueue::new(),
                    state: Mutex::new(ShardState {
                        engine: DependencyEngine::new(cfg),
                        owner: Vec::new(),
                    }),
                    resident: AtomicU32::new(0),
                    park: Mutex::new(()),
                    unpark: Condvar::new(),
                    stalls: AtomicU64::new(0),
                    retries_resolved: AtomicU64::new(0),
                })
                .collect(),
            capacity,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard residency bound this dispatcher enforces.
    pub fn capacity(&self) -> ShardCapacity {
        self.capacity
    }

    /// Per-shard stall/retry counters (exact at quiescence; counters use
    /// relaxed atomics, so concurrent readers see a racy snapshot).
    pub fn capacity_counts(&self) -> Vec<CapacityCounts> {
        self.shards
            .iter()
            .map(|c| CapacityCounts {
                stalls_observed: c.stalls.load(Ordering::Relaxed),
                retries_resolved: c.retries_resolved.load(Ordering::Relaxed),
                resident: c.resident.load(Ordering::Relaxed) as usize,
            })
            .collect()
    }

    /// Release `n` residency slots on `s` and wake parked submitters.
    /// The ordering here is the lost-wakeup guard: decrement first, then
    /// notify under the park mutex, so a submitter that observed "full"
    /// under that mutex is already inside `wait` when the notify lands.
    fn release_slots(&self, s: usize, n: u32) {
        let cell = &self.shards[s];
        cell.resident.fetch_sub(n, Ordering::AcqRel);
        let _guard = cell.park.lock();
        cell.unpark.notify_all();
    }

    /// Try to reserve one residency slot on every involved shard; on the
    /// first full shard, roll back (waking anyone the rollback frees a
    /// slot for) and report it.
    fn try_reserve(&self, groups: &[(u32, Vec<Param>)]) -> Result<(), u32> {
        for (i, (s, _)) in groups.iter().enumerate() {
            let cell = &self.shards[*s as usize];
            let reserved = cell
                .resident
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| {
                    self.capacity.admits(r as usize).then_some(r + 1)
                })
                .is_ok();
            if !reserved {
                for (t, _) in &groups[..i] {
                    self.release_slots(*t as usize, 1);
                }
                return Err(*s);
            }
        }
        Ok(())
    }

    /// Block until shard `s` has a free residency slot (the slot may be
    /// taken again before the caller's retry; callers loop).
    fn park_on(&self, s: u32) {
        let cell = &self.shards[s as usize];
        let mut guard = cell.park.lock();
        while !self
            .capacity
            .admits(cell.resident.load(Ordering::Acquire) as usize)
        {
            cell.unpark.wait(&mut guard);
        }
    }

    /// Submit a task. Takes each involved shard's lock once, one at a
    /// time in first-touch parameter order — never two locks at once, so
    /// no lock-ordering discipline is needed — and never blocks on other
    /// tasks' *dependency* progress. Under a bounded capacity it blocks
    /// until every involved shard grants a residency slot (stall/retry,
    /// counted per shard); unbounded dispatchers never block at all. If
    /// the task has no unresolved dependencies the payload comes straight
    /// back in [`SubmitResult::ready`].
    pub fn submit(&self, fptr: u64, tag: u64, params: &[Param], payload: P) -> SubmitResult<P> {
        let groups = route_params(params, self.shards.len());
        if self.capacity.is_bounded() {
            // One stall episode per submit call: counted once against the
            // first full shard, resolved once when the reservation lands.
            let mut episode: Option<u32> = None;
            loop {
                match self.try_reserve(&groups) {
                    Ok(()) => break,
                    Err(full) => {
                        if episode.is_none() {
                            episode = Some(full);
                            self.shards[full as usize]
                                .stalls
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        self.park_on(full);
                    }
                }
            }
            if let Some(first) = episode {
                self.shards[first as usize]
                    .retries_resolved
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let node = Arc::new(Node {
            tag,
            pending: AtomicU32::new(groups.len() as u32 + 1),
            parts_left: AtomicU32::new(groups.len() as u32),
            parts: OnceLock::new(),
            payload: Mutex::new(None),
        });
        let mut parts = Vec::with_capacity(groups.len());
        for (s, sub) in groups {
            let mut st = self.shards[s as usize].state.lock();
            let (td, slice_ready) = st
                .engine
                .submit(fptr, tag, sub)
                .expect("growable engine cannot reject");
            let i = td.0 as usize;
            if i >= st.owner.len() {
                st.owner.resize_with(i + 1, || None);
            }
            st.owner[i] = Some(Arc::clone(&node));
            drop(st);
            parts.push((s, td));
            if slice_ready {
                // Cannot reach zero: the submission guard is still held.
                node.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
        node.parts.set(parts).expect("parts set exactly once");
        *node.payload.lock() = Some(payload);
        // Release the submission guard. Whoever performs the transition
        // to zero — this thread or a concurrent waker that decremented
        // first — takes the payload and schedules the task.
        let ready = if node.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            Some(node.payload.lock().take().expect("payload stored above"))
        } else {
            None
        };
        SubmitResult {
            ticket: TaskTicket(node),
            ready,
        }
    }

    /// Finish a task that ran: push its per-shard release records onto the
    /// submission rings and drain every involved shard. The report may
    /// include wakes and completions belonging to concurrent finishers
    /// (and this task's own may surface in theirs) — callers treat both
    /// uniformly, so nothing is lost.
    pub fn finish(&self, ticket: TaskTicket<P>) -> FinishReport<P> {
        let node = ticket.0;
        let parts = node
            .parts
            .get()
            .expect("finish called before submit completed");
        let mut report = FinishReport::default();
        if parts.is_empty() {
            // Parameterless task: no shard holds state for it.
            report.completed = 1;
            return report;
        }
        for &(s, td) in parts {
            self.shards[s as usize].ring.push((Arc::clone(&node), td));
        }
        for &(s, _) in parts {
            self.drain_shard(s as usize, &mut report);
        }
        report
    }

    /// Drain one shard's ring under its lock. Skips entirely when a
    /// concurrent holder already consumed every queued record. Each
    /// drained record releases one residency slot — the shard's "finish
    /// report" a parked submitter resumes on.
    fn drain_shard(&self, s: usize, report: &mut FinishReport<P>) {
        let cell = &self.shards[s];
        if cell.ring.is_empty() {
            // A concurrent lock holder drained our records (and reported
            // their wakes/completions); nothing left to do here.
            return;
        }
        let mut drained = 0u32;
        let mut st = cell.state.lock();
        while let Some((node, td)) = cell.ring.pop() {
            let fin = st.engine.finish(td);
            st.owner[td.0 as usize] = None;
            drained += 1;
            for woken in fin.newly_ready {
                let wnode = st.owner[woken.0 as usize]
                    .as_ref()
                    .expect("woken sub-descriptor must have an owner")
                    .clone();
                if wnode.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let payload = wnode
                        .payload
                        .lock()
                        .take()
                        .expect("ready task must hold its payload");
                    report.woken.push((TaskTicket(wnode), payload));
                }
            }
            if node.parts_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                report.completed += 1;
            }
        }
        drop(st);
        if drained > 0 && self.capacity.is_bounded() {
            self.release_slots(s, drained);
        }
    }

    /// Tasks currently admitted and not yet fully retired, summed over
    /// shards as sub-descriptor counts (diagnostics; takes every lock).
    pub fn sub_descriptors_in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(|c| c.state.lock().engine.in_flight())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn dispatcher(n: usize) -> ShardDispatcher<u64> {
        ShardDispatcher::new(n, &NexusConfig::unbounded())
    }

    /// Run a ready task set to completion single-threadedly, returning
    /// completion count and the order tags became ready.
    fn drain(d: &ShardDispatcher<u64>, mut ready: Vec<(TaskTicket<u64>, u64)>) -> (u64, Vec<u64>) {
        let mut completed = 0;
        let mut order = Vec::new();
        while let Some((ticket, tag)) = ready.pop() {
            order.push(tag);
            let rep = d.finish(ticket);
            completed += rep.completed;
            ready.extend(rep.woken);
        }
        (completed, order)
    }

    #[test]
    fn chain_wakes_in_dependency_order() {
        let d = dispatcher(4);
        let mut ready = Vec::new();
        let r0 = d.submit(1, 0, &[Param::output(0xA0, 4)], 0);
        if let Some(p) = r0.ready {
            ready.push((r0.ticket, p));
        }
        let r1 = d.submit(1, 1, &[Param::input(0xA0, 4), Param::output(0xB0, 4)], 1);
        assert!(r1.ready.is_none(), "t1 depends on t0");
        let r2 = d.submit(1, 2, &[Param::input(0xB0, 4)], 2);
        assert!(r2.ready.is_none(), "t2 depends on t1");
        drop((r1.ticket, r2.ticket)); // tickets resurface via woken
        let (completed, order) = drain(&d, ready);
        assert_eq!(completed, 3);
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(d.sub_descriptors_in_flight(), 0);
    }

    #[test]
    fn parameterless_task_completes_immediately() {
        let d = dispatcher(2);
        let r = d.submit(1, 9, &[], 9);
        let p = r.ready.expect("no deps possible");
        let rep = d.finish(r.ticket);
        assert_eq!(p, 9);
        assert_eq!(rep.completed, 1);
        assert!(rep.woken.is_empty());
    }

    #[test]
    fn concurrent_independent_churn_conserves_completions() {
        for shards in [1usize, 4] {
            let d = Arc::new(ShardDispatcher::<u64>::new(
                shards,
                &NexusConfig::unbounded(),
            ));
            let total_completed = Arc::new(AtomicU64::new(0));
            const THREADS: u64 = 4;
            const PER_THREAD: u64 = 500;
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let d = Arc::clone(&d);
                    let total = Arc::clone(&total_completed);
                    std::thread::spawn(move || {
                        for i in 0..PER_THREAD {
                            let tag = t * PER_THREAD + i;
                            let addr = 0x10_0000 + tag * 64;
                            let r = d.submit(1, tag, &[Param::output(addr, 4)], tag);
                            // Independent tasks are always immediately ready.
                            let p = r.ready.expect("independent task must be ready");
                            assert_eq!(p, tag);
                            let rep = d.finish(r.ticket);
                            assert!(rep.woken.is_empty(), "no dependencies exist");
                            total.fetch_add(rep.completed, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                total_completed.load(Ordering::Relaxed),
                THREADS * PER_THREAD,
                "shards={shards}: every task completed exactly once"
            );
            assert_eq!(d.sub_descriptors_in_flight(), 0);
        }
    }

    #[test]
    fn unbounded_dispatcher_reports_zero_stalls() {
        let d = dispatcher(4);
        for i in 0..32u64 {
            let r = d.submit(1, i, &[Param::output(0x9000 + i * 64, 4)], i);
            d.finish(r.ticket);
        }
        for (s, c) in d.capacity_counts().iter().enumerate() {
            assert_eq!(*c, CapacityCounts::default(), "shard {s}");
        }
    }

    #[test]
    fn parked_submitter_resumes_on_finish_and_counts_one_episode() {
        // One shard, capacity 2: two residents fill it; a third submission
        // parks on another thread and resumes when a resident finishes.
        let d = Arc::new(ShardDispatcher::<u64>::with_capacity(
            1,
            &NexusConfig::unbounded(),
            ShardCapacity::Bounded(2),
        ));
        let r0 = d.submit(1, 0, &[Param::output(0x100, 4)], 0);
        let r1 = d.submit(1, 1, &[Param::output(0x200, 4)], 1);
        assert_eq!(d.capacity_counts()[0].resident, 2);
        let parked = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                let r = d.submit(1, 2, &[Param::output(0x300, 4)], 2);
                let p = r.ready.expect("independent task");
                (r.ticket, p)
            })
        };
        // Deterministic rendezvous: the stall is observed before we free
        // the slot the parked submitter needs.
        while d.capacity_counts()[0].stalls_observed == 0 {
            std::thread::yield_now();
        }
        assert_eq!(d.capacity_counts()[0].retries_resolved, 0);
        let rep = d.finish(r0.ticket);
        assert_eq!(rep.completed, 1);
        let (t2, p2) = parked.join().unwrap();
        assert_eq!(p2, 2);
        d.finish(r1.ticket);
        d.finish(t2);
        let c = &d.capacity_counts()[0];
        assert_eq!(
            (c.stalls_observed, c.retries_resolved, c.resident),
            (1, 1, 0)
        );
    }

    #[test]
    fn capacity_one_concurrent_churn_is_deadlock_free_and_balanced() {
        // Four threads hammer a capacity-1 dispatcher with independent
        // tasks: every slot conflict parks a submitter that some other
        // thread's finish must resume. At quiescence every stall episode
        // is resolved and every task completed exactly once.
        for shards in [1usize, 4] {
            let d = Arc::new(ShardDispatcher::<u64>::with_capacity(
                shards,
                &NexusConfig::unbounded(),
                ShardCapacity::Bounded(1),
            ));
            let total = Arc::new(AtomicU64::new(0));
            const THREADS: u64 = 4;
            const PER_THREAD: u64 = 300;
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let d = Arc::clone(&d);
                    let total = Arc::clone(&total);
                    std::thread::spawn(move || {
                        for i in 0..PER_THREAD {
                            let tag = t * PER_THREAD + i;
                            let addr = 0x50_0000 + tag * 64;
                            let r = d.submit(1, tag, &[Param::output(addr, 4)], tag);
                            let p = r.ready.expect("independent task must be ready");
                            assert_eq!(p, tag);
                            total.fetch_add(d.finish(r.ticket).completed, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(total.load(Ordering::Relaxed), THREADS * PER_THREAD);
            for (s, c) in d.capacity_counts().iter().enumerate() {
                assert_eq!(
                    c.stalls_observed, c.retries_resolved,
                    "shards={shards} shard {s}: unresolved stall episodes"
                );
                assert_eq!(c.resident, 0, "shards={shards} shard {s} leaked slots");
            }
            assert_eq!(d.sub_descriptors_in_flight(), 0);
        }
    }

    #[test]
    fn concurrent_producer_consumer_fanout() {
        // One producer address per thread-pair; consumers park until the
        // producer finishes, then surface through some finisher's report.
        let d = Arc::new(ShardDispatcher::<u64>::new(4, &NexusConfig::unbounded()));
        let woken_total = Arc::new(AtomicU64::new(0));
        let completed_total = Arc::new(AtomicU64::new(0));
        const PAIRS: u64 = 8;
        const CONSUMERS: u64 = 16;
        let handles: Vec<_> = (0..PAIRS)
            .map(|p| {
                let d = Arc::clone(&d);
                let woken = Arc::clone(&woken_total);
                let completed = Arc::clone(&completed_total);
                std::thread::spawn(move || {
                    let addr = 0x20_0000 + p * 0x1000;
                    let prod = d.submit(1, p, &[Param::output(addr, 4)], p);
                    let prod_payload = prod.ready.expect("producer is independent");
                    let mut consumer_tickets = Vec::new();
                    for c in 0..CONSUMERS {
                        let tag = 1000 + p * CONSUMERS + c;
                        let r = d.submit(1, tag, &[Param::input(addr, 4)], tag);
                        assert!(r.ready.is_none(), "consumer must wait for producer");
                        consumer_tickets.push(r.ticket);
                    }
                    drop(consumer_tickets); // resurface via woken
                    assert_eq!(prod_payload, p);
                    let mut queue = vec![(prod.ticket, prod_payload)];
                    while let Some((t, _)) = queue.pop() {
                        let rep = d.finish(t);
                        woken.fetch_add(rep.woken.len() as u64, Ordering::Relaxed);
                        completed.fetch_add(rep.completed, Ordering::Relaxed);
                        queue.extend(rep.woken);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken_total.load(Ordering::Relaxed), PAIRS * CONSUMERS);
        assert_eq!(
            completed_total.load(Ordering::Relaxed),
            PAIRS * (CONSUMERS + 1)
        );
        assert_eq!(d.sub_descriptors_in_flight(), 0);
    }
}
