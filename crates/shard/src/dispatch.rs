//! The concurrent sharded dispatcher: per-shard locks, atomic cross-shard
//! readiness aggregation, and deferred-finish submission rings.
//!
//! This is the threaded form of [`ShardedEngine`](crate::ShardedEngine):
//! each shard is a [`DependencyEngine`] behind its own
//! [`parking_lot::Mutex`], so admits and finishes that touch different
//! shards proceed in parallel — the centralization the single-engine
//! runtime suffers (one global engine lock on every task completion) is
//! gone.
//!
//! ## Cross-shard readiness
//!
//! Each task carries an atomic **remote dependence counter** initialized
//! to `shards_touched + 1`. Every shard slice found (or made)
//! conflict-free decrements it; the extra `+1` is a *submission guard*
//! released only after every slice is admitted and the task's payload is
//! stored, so a concurrent wake can never schedule a half-submitted task.
//! Whoever performs the transition to zero — submitter or waker — owns
//! the payload and schedules the task, exactly once.
//!
//! ## Deferred-finish rings (batched submission)
//!
//! Finishing a task does not lock its shards directly. Instead the
//! per-shard release records are pushed onto each shard's
//! [`SegQueue`]-based ring, and the finisher then drains every involved
//! shard's ring under that shard's lock. Under contention a single lock
//! acquisition retires *many* queued completions (whoever gets the lock
//! drains everyone's records — flat combining), and a finisher whose
//! records were already drained by a concurrent holder skips the lock
//! entirely. This amortizes locking the way the paper's buffered TP
//! writes amortize Task Pool port pressure.

use crate::engine::route_params;
use crossbeam::queue::SegQueue;
use nexuspp_core::{DependencyEngine, NexusConfig, TdIndex};
use nexuspp_trace::Param;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// The home record of a task in flight.
#[derive(Debug)]
struct Node<P> {
    tag: u64,
    /// Remote dependence counter: unready shard slices, plus one
    /// submission guard released at the end of `submit`.
    pending: AtomicU32,
    /// Shard slices whose finish record has not been drained yet.
    parts_left: AtomicU32,
    /// `(shard, sub-descriptor)` per involved shard; set once at the end
    /// of `submit` (readers run strictly after `submit` returns).
    parts: OnceLock<Vec<(u32, TdIndex)>>,
    /// The caller's payload, surrendered to whoever makes the task ready.
    payload: Mutex<Option<P>>,
}

/// Handle to a submitted task; required (and consumed) by
/// [`ShardDispatcher::finish`].
#[derive(Debug)]
pub struct TaskTicket<P>(Arc<Node<P>>);

impl<P> TaskTicket<P> {
    /// The caller tag the task was submitted with.
    pub fn tag(&self) -> u64 {
        self.0.tag
    }
}

/// Outcome of a submission.
#[derive(Debug)]
pub struct SubmitResult<P> {
    /// Handle for the eventual [`ShardDispatcher::finish`] call.
    pub ticket: TaskTicket<P>,
    /// The payload, handed back if the task is ready to run right now;
    /// `None` if the task parked waiting on dependencies (its payload
    /// will surface in some [`FinishReport::woken`] later).
    pub ready: Option<P>,
}

/// Outcome of a finish call, including work retired on behalf of
/// concurrent finishers whose ring records this call drained.
#[derive(Debug)]
pub struct FinishReport<P> {
    /// Tasks made ready by the completions this call drained, with their
    /// payloads. May contain tasks submitted by other threads.
    pub woken: Vec<(TaskTicket<P>, P)>,
    /// Tasks whose last shard slice was retired by this call (the unit
    /// a quiescence counter should track). May count other threads'
    /// tasks; every task is counted exactly once across all calls.
    pub completed: u64,
}

impl<P> Default for FinishReport<P> {
    fn default() -> Self {
        FinishReport {
            woken: Vec::new(),
            completed: 0,
        }
    }
}

/// One release record: a sub-descriptor to finish, plus its home record.
type FinRecord<P> = (Arc<Node<P>>, TdIndex);

struct ShardCell<P> {
    /// Deferred-finish submission ring.
    ring: SegQueue<FinRecord<P>>,
    state: Mutex<ShardState<P>>,
}

struct ShardState<P> {
    engine: DependencyEngine,
    /// Sub-descriptor index → home record of the owning task.
    owner: Vec<Option<Arc<Node<P>>>>,
}

/// N dependency engines behind per-shard locks, aggregating readiness
/// with atomics. `P` is the payload delivered when a task becomes ready
/// (a closure + access grants in the runtime; `()` in benches).
pub struct ShardDispatcher<P> {
    shards: Box<[ShardCell<P>]>,
}

impl<P> ShardDispatcher<P> {
    /// Build a dispatcher over `n_shards` engines configured by `cfg`.
    /// The configuration must be growable: the submit path holds no
    /// global lock, so a capacity stall could not be resolved by waiting
    /// (the software structures virtualize capacity instead, as in the
    /// single-engine runtime).
    pub fn new(n_shards: usize, cfg: &NexusConfig) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(
            cfg.growable,
            "the dispatcher's lock-per-shard submit path cannot stall; use a growable config"
        );
        ShardDispatcher {
            shards: (0..n_shards)
                .map(|_| ShardCell {
                    ring: SegQueue::new(),
                    state: Mutex::new(ShardState {
                        engine: DependencyEngine::new(cfg),
                        owner: Vec::new(),
                    }),
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Submit a task. Takes each involved shard's lock once, one at a
    /// time in first-touch parameter order — never two locks at once, so
    /// no lock-ordering discipline is needed — and never blocks on other
    /// tasks' progress. If the task has no unresolved dependencies the
    /// payload comes straight back in [`SubmitResult::ready`].
    pub fn submit(&self, fptr: u64, tag: u64, params: &[Param], payload: P) -> SubmitResult<P> {
        let groups = route_params(params, self.shards.len());
        let node = Arc::new(Node {
            tag,
            pending: AtomicU32::new(groups.len() as u32 + 1),
            parts_left: AtomicU32::new(groups.len() as u32),
            parts: OnceLock::new(),
            payload: Mutex::new(None),
        });
        let mut parts = Vec::with_capacity(groups.len());
        for (s, sub) in groups {
            let mut st = self.shards[s as usize].state.lock();
            let (td, slice_ready) = st
                .engine
                .submit(fptr, tag, sub)
                .expect("growable engine cannot reject");
            let i = td.0 as usize;
            if i >= st.owner.len() {
                st.owner.resize_with(i + 1, || None);
            }
            st.owner[i] = Some(Arc::clone(&node));
            drop(st);
            parts.push((s, td));
            if slice_ready {
                // Cannot reach zero: the submission guard is still held.
                node.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
        node.parts.set(parts).expect("parts set exactly once");
        *node.payload.lock() = Some(payload);
        // Release the submission guard. Whoever performs the transition
        // to zero — this thread or a concurrent waker that decremented
        // first — takes the payload and schedules the task.
        let ready = if node.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            Some(node.payload.lock().take().expect("payload stored above"))
        } else {
            None
        };
        SubmitResult {
            ticket: TaskTicket(node),
            ready,
        }
    }

    /// Finish a task that ran: push its per-shard release records onto the
    /// submission rings and drain every involved shard. The report may
    /// include wakes and completions belonging to concurrent finishers
    /// (and this task's own may surface in theirs) — callers treat both
    /// uniformly, so nothing is lost.
    pub fn finish(&self, ticket: TaskTicket<P>) -> FinishReport<P> {
        let node = ticket.0;
        let parts = node
            .parts
            .get()
            .expect("finish called before submit completed");
        let mut report = FinishReport::default();
        if parts.is_empty() {
            // Parameterless task: no shard holds state for it.
            report.completed = 1;
            return report;
        }
        for &(s, td) in parts {
            self.shards[s as usize].ring.push((Arc::clone(&node), td));
        }
        for &(s, _) in parts {
            self.drain_shard(s as usize, &mut report);
        }
        report
    }

    /// Drain one shard's ring under its lock. Skips entirely when a
    /// concurrent holder already consumed every queued record.
    fn drain_shard(&self, s: usize, report: &mut FinishReport<P>) {
        let cell = &self.shards[s];
        if cell.ring.is_empty() {
            // A concurrent lock holder drained our records (and reported
            // their wakes/completions); nothing left to do here.
            return;
        }
        let mut st = cell.state.lock();
        while let Some((node, td)) = cell.ring.pop() {
            let fin = st.engine.finish(td);
            st.owner[td.0 as usize] = None;
            for woken in fin.newly_ready {
                let wnode = st.owner[woken.0 as usize]
                    .as_ref()
                    .expect("woken sub-descriptor must have an owner")
                    .clone();
                if wnode.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let payload = wnode
                        .payload
                        .lock()
                        .take()
                        .expect("ready task must hold its payload");
                    report.woken.push((TaskTicket(wnode), payload));
                }
            }
            if node.parts_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                report.completed += 1;
            }
        }
    }

    /// Tasks currently admitted and not yet fully retired, summed over
    /// shards as sub-descriptor counts (diagnostics; takes every lock).
    pub fn sub_descriptors_in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(|c| c.state.lock().engine.in_flight())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn dispatcher(n: usize) -> ShardDispatcher<u64> {
        ShardDispatcher::new(n, &NexusConfig::unbounded())
    }

    /// Run a ready task set to completion single-threadedly, returning
    /// completion count and the order tags became ready.
    fn drain(d: &ShardDispatcher<u64>, mut ready: Vec<(TaskTicket<u64>, u64)>) -> (u64, Vec<u64>) {
        let mut completed = 0;
        let mut order = Vec::new();
        while let Some((ticket, tag)) = ready.pop() {
            order.push(tag);
            let rep = d.finish(ticket);
            completed += rep.completed;
            ready.extend(rep.woken);
        }
        (completed, order)
    }

    #[test]
    fn chain_wakes_in_dependency_order() {
        let d = dispatcher(4);
        let mut ready = Vec::new();
        let r0 = d.submit(1, 0, &[Param::output(0xA0, 4)], 0);
        if let Some(p) = r0.ready {
            ready.push((r0.ticket, p));
        }
        let r1 = d.submit(1, 1, &[Param::input(0xA0, 4), Param::output(0xB0, 4)], 1);
        assert!(r1.ready.is_none(), "t1 depends on t0");
        let r2 = d.submit(1, 2, &[Param::input(0xB0, 4)], 2);
        assert!(r2.ready.is_none(), "t2 depends on t1");
        drop((r1.ticket, r2.ticket)); // tickets resurface via woken
        let (completed, order) = drain(&d, ready);
        assert_eq!(completed, 3);
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(d.sub_descriptors_in_flight(), 0);
    }

    #[test]
    fn parameterless_task_completes_immediately() {
        let d = dispatcher(2);
        let r = d.submit(1, 9, &[], 9);
        let p = r.ready.expect("no deps possible");
        let rep = d.finish(r.ticket);
        assert_eq!(p, 9);
        assert_eq!(rep.completed, 1);
        assert!(rep.woken.is_empty());
    }

    #[test]
    fn concurrent_independent_churn_conserves_completions() {
        for shards in [1usize, 4] {
            let d = Arc::new(ShardDispatcher::<u64>::new(
                shards,
                &NexusConfig::unbounded(),
            ));
            let total_completed = Arc::new(AtomicU64::new(0));
            const THREADS: u64 = 4;
            const PER_THREAD: u64 = 500;
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let d = Arc::clone(&d);
                    let total = Arc::clone(&total_completed);
                    std::thread::spawn(move || {
                        for i in 0..PER_THREAD {
                            let tag = t * PER_THREAD + i;
                            let addr = 0x10_0000 + tag * 64;
                            let r = d.submit(1, tag, &[Param::output(addr, 4)], tag);
                            // Independent tasks are always immediately ready.
                            let p = r.ready.expect("independent task must be ready");
                            assert_eq!(p, tag);
                            let rep = d.finish(r.ticket);
                            assert!(rep.woken.is_empty(), "no dependencies exist");
                            total.fetch_add(rep.completed, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                total_completed.load(Ordering::Relaxed),
                THREADS * PER_THREAD,
                "shards={shards}: every task completed exactly once"
            );
            assert_eq!(d.sub_descriptors_in_flight(), 0);
        }
    }

    #[test]
    fn concurrent_producer_consumer_fanout() {
        // One producer address per thread-pair; consumers park until the
        // producer finishes, then surface through some finisher's report.
        let d = Arc::new(ShardDispatcher::<u64>::new(4, &NexusConfig::unbounded()));
        let woken_total = Arc::new(AtomicU64::new(0));
        let completed_total = Arc::new(AtomicU64::new(0));
        const PAIRS: u64 = 8;
        const CONSUMERS: u64 = 16;
        let handles: Vec<_> = (0..PAIRS)
            .map(|p| {
                let d = Arc::clone(&d);
                let woken = Arc::clone(&woken_total);
                let completed = Arc::clone(&completed_total);
                std::thread::spawn(move || {
                    let addr = 0x20_0000 + p * 0x1000;
                    let prod = d.submit(1, p, &[Param::output(addr, 4)], p);
                    let prod_payload = prod.ready.expect("producer is independent");
                    let mut consumer_tickets = Vec::new();
                    for c in 0..CONSUMERS {
                        let tag = 1000 + p * CONSUMERS + c;
                        let r = d.submit(1, tag, &[Param::input(addr, 4)], tag);
                        assert!(r.ready.is_none(), "consumer must wait for producer");
                        consumer_tickets.push(r.ticket);
                    }
                    drop(consumer_tickets); // resurface via woken
                    assert_eq!(prod_payload, p);
                    let mut queue = vec![(prod.ticket, prod_payload)];
                    while let Some((t, _)) = queue.pop() {
                        let rep = d.finish(t);
                        woken.fetch_add(rep.woken.len() as u64, Ordering::Relaxed);
                        completed.fetch_add(rep.completed, Ordering::Relaxed);
                        queue.extend(rep.woken);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken_total.load(Ordering::Relaxed), PAIRS * CONSUMERS);
        assert_eq!(
            completed_total.load(Ordering::Relaxed),
            PAIRS * (CONSUMERS + 1)
        );
        assert_eq!(d.sub_descriptors_in_flight(), 0);
    }
}
