//! The concurrent sharded dispatcher: per-shard locks, atomic cross-shard
//! readiness aggregation, and deferred-finish submission rings.
//!
//! This is the threaded form of [`ShardedEngine`](crate::ShardedEngine):
//! each shard is a [`DependencyEngine`] behind its own
//! [`parking_lot::Mutex`], so admits and finishes that touch different
//! shards proceed in parallel — the centralization the single-engine
//! runtime suffers (one global engine lock on every task completion) is
//! gone.
//!
//! ## Cross-shard readiness
//!
//! Each task carries an atomic **remote dependence counter** initialized
//! to `shards_touched + 1`. Every shard slice found (or made)
//! conflict-free decrements it; the extra `+1` is a *submission guard*
//! released only after every slice is admitted and the task's payload is
//! stored, so a concurrent wake can never schedule a half-submitted task.
//! Whoever performs the transition to zero — submitter or waker — owns
//! the payload and schedules the task, exactly once.
//!
//! ## Deferred-finish rings (batched submission)
//!
//! Finishing a task does not lock its shards directly. Instead the
//! per-shard release records are pushed onto each shard's
//! [`SegQueue`]-based ring, and the finisher then drains every involved
//! shard's ring under that shard's lock. Under contention a single lock
//! acquisition retires *many* queued completions (whoever gets the lock
//! drains everyone's records — flat combining), and a finisher whose
//! records were already drained by a concurrent holder skips the lock
//! entirely. This amortizes locking the way the paper's buffered TP
//! writes amortize Task Pool port pressure.
//!
//! ## Lock-free wake lists (kick-off bypasses the shard lock)
//!
//! Finding which tasks a completion makes ready requires the shard lock
//! (it reads the Dependence Table), but *delivering* those wakes does
//! not. Under the default [`WakeMode::LockFree`] the ring drain only
//! collects the woken home records under the lock; the remote decrement,
//! the payload handoff, and the queueing of the `(task, payload)` wake
//! record all happen **after the shard lock is released**, posting
//! lock-free onto the shard's [`PushList`]-based wake list — the software
//! form of the paper's Maestro pushing kick-off notifications out of the
//! Dependence Tables without serializing table access. The drain-to-
//! scheduler step is claimed by a CAS on a per-shard owner flag
//! (mirroring the rings' whoever-holds-it-drains-everyone protocol): the
//! claim winner moves every queued record into its [`FinishReport`],
//! re-checking after release so a record posted during its drain is never
//! stranded; losers simply skip — their wakes surface in the owner's
//! report.
//!
//! [`WakeMode::Locked`] keeps the pre-lock-free shape — wake records are
//! queued onto a `VecDeque` kick-off list *under the shard lock* and
//! handed to the report under a second acquisition — as the measured
//! baseline of `repro -- wakes` and the `wake_perf` gate.

use crate::engine::route_params;
use crossbeam::queue::{PushList, SegQueue};
use nexuspp_core::{DependencyEngine, NexusConfig, ShardCapacity, SubmitError, TdIndex};
use nexuspp_obs::{EventKind, Recorder, NO_SHARD};
use nexuspp_trace::Param;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// How a [`ShardDispatcher`] delivers wake records from the shards that
/// produced them to the finish report that schedules them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WakeMode {
    /// Kick-off lists are `VecDeque`s inside the shard state: wakes are
    /// queued while holding the shard lock and drained to the report
    /// under a second acquisition. The pre-lock-free baseline, kept
    /// selectable for differential testing and for the `repro -- wakes`
    /// comparison.
    Locked,
    /// Wakes post to a lock-free MPSC [`PushList`] per shard *outside*
    /// the shard lock; the drain-to-report step is claimed by CAS. The
    /// finish-side wake path performs zero shard-lock acquisitions.
    #[default]
    LockFree,
}

impl WakeMode {
    /// Short stable name (table rows, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            WakeMode::Locked => "locked",
            WakeMode::LockFree => "lock-free",
        }
    }
}

/// The home record of a task in flight.
#[derive(Debug)]
struct Node<P> {
    tag: u64,
    /// Remote dependence counter: unready shard slices, plus one
    /// submission guard released at the end of `submit`.
    pending: AtomicU32,
    /// Shard slices whose finish record has not been drained yet.
    parts_left: AtomicU32,
    /// `(shard, sub-descriptor)` per involved shard; set once at the end
    /// of `submit` (readers run strictly after `submit` returns).
    parts: OnceLock<Vec<(u32, TdIndex)>>,
    /// The caller's payload, surrendered to whoever makes the task ready.
    payload: Mutex<Option<P>>,
}

/// Handle to a submitted task; required (and consumed) by
/// [`ShardDispatcher::finish`].
#[derive(Debug)]
pub struct TaskTicket<P>(Arc<Node<P>>);

impl<P> TaskTicket<P> {
    /// The caller tag the task was submitted with.
    pub fn tag(&self) -> u64 {
        self.0.tag
    }
}

/// Outcome of a submission.
#[derive(Debug)]
pub struct SubmitResult<P> {
    /// Handle for the eventual [`ShardDispatcher::finish`] call.
    pub ticket: TaskTicket<P>,
    /// The payload, handed back if the task is ready to run right now;
    /// `None` if the task parked waiting on dependencies (its payload
    /// will surface in some [`FinishReport::woken`] later).
    pub ready: Option<P>,
}

/// Outcome of a finish call, including work retired on behalf of
/// concurrent finishers whose ring records this call drained.
#[derive(Debug)]
pub struct FinishReport<P> {
    /// Tasks made ready by the completions this call drained, with their
    /// payloads. May contain tasks submitted by other threads.
    pub woken: Vec<(TaskTicket<P>, P)>,
    /// Tasks whose last shard slice was retired by this call (the unit
    /// a quiescence counter should track). May count other threads'
    /// tasks; every task is counted exactly once across all calls.
    pub completed: u64,
}

impl<P> Default for FinishReport<P> {
    fn default() -> Self {
        FinishReport {
            woken: Vec::new(),
            completed: 0,
        }
    }
}

/// One release record: a sub-descriptor to finish, plus its home record.
type FinRecord<P> = (Arc<Node<P>>, TdIndex);

/// One wake record: a task made ready, with the payload its runner needs.
type WakeRecord<P> = (Arc<Node<P>>, P);

/// Wake-path activity counters, aggregated across shards (Relaxed
/// atomics: exact at quiescence, a racy snapshot while finishers run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeCounts {
    /// Wake records handed to finish reports.
    pub delivered: u64,
    /// Drain-to-report attempts (one per involved shard per finish).
    pub deliveries: u64,
    /// Nanoseconds spent in the drain-to-report step, including any time
    /// blocked on the shard lock. This is the quantity the lock-free
    /// wake lists shrink: under [`WakeMode::Locked`] every delivery
    /// attempt waits behind whoever is resolving on the shard; under
    /// [`WakeMode::LockFree`] it is an atomic check plus a CAS-claimed
    /// drain that never waits.
    pub delivery_ns: u64,
    /// Shard-lock acquisitions performed by the drain-to-report step.
    /// Always zero under [`WakeMode::LockFree`] — the acceptance bar of
    /// the lock-free wake path, asserted in `tests/wake_perf.rs`.
    pub delivery_lock_acquisitions: u64,
}

#[derive(Debug, Default)]
struct WakeMetrics {
    delivered: AtomicU64,
    deliveries: AtomicU64,
    delivery_ns: AtomicU64,
    delivery_lock_acquisitions: AtomicU64,
}

/// One shard's bounded-capacity counters at a quiescent point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CapacityCounts {
    /// Submissions that parked with this shard as the first full shard
    /// of their stall episode.
    pub stalls_observed: u64,
    /// Parked submissions whose retry eventually succeeded (attributed
    /// to the episode's first full shard). Equals `stalls_observed` once
    /// no submitter is parked.
    pub retries_resolved: u64,
    /// Nanoseconds submitters spent parked on this shard, summed over
    /// resolved stall episodes (attributed, like the episode counters,
    /// to the episode's first full shard). The paper's master-core
    /// stall *time*, not just its episode count.
    pub stall_ns: u64,
    /// Tasks currently holding a residency slot on this shard.
    pub resident: usize,
}

struct ShardCell<P> {
    /// Deferred-finish submission ring.
    ring: SegQueue<FinRecord<P>>,
    /// Lock-free wake list ([`WakeMode::LockFree`]): finishers post wake
    /// records here without touching `state`'s lock.
    wakes: PushList<WakeRecord<P>>,
    /// Drain ownership for `wakes`: claimed by CAS, at most one drainer
    /// at a time (the single-consumer end of the MPSC list).
    wake_owner: AtomicBool,
    state: Mutex<ShardState<P>>,
    /// Tasks holding a residency slot here (reserved before admission,
    /// released as each finish record is drained).
    resident: AtomicU32,
    /// Pairs with `unpark`: submitters blocked on a full shard wait here.
    park: Mutex<()>,
    unpark: Condvar,
    stalls: AtomicU64,
    retries_resolved: AtomicU64,
    stall_ns: AtomicU64,
}

struct ShardState<P> {
    engine: DependencyEngine,
    /// Sub-descriptor index → home record of the owning task.
    owner: Vec<Option<Arc<Node<P>>>>,
    /// Locked-mode kick-off list ([`WakeMode::Locked`]): wake records
    /// queued under the shard lock, drained under a second acquisition.
    kickoff: VecDeque<WakeRecord<P>>,
}

/// N dependency engines behind per-shard locks, aggregating readiness
/// with atomics. `P` is the payload delivered when a task becomes ready
/// (a closure + access grants in the runtime; `()` in benches).
pub struct ShardDispatcher<P> {
    shards: Box<[ShardCell<P>]>,
    capacity: ShardCapacity,
    wake_mode: WakeMode,
    wake_metrics: WakeMetrics,
    /// Lifecycle event sink. `None` (the default) is the zero-cost
    /// production shape: every emission site is one `Option` branch.
    /// Recording itself is lock-free (see `nexuspp_obs::Recorder`), so
    /// attaching an enabled recorder adds zero shard-lock acquisitions.
    obs: Option<Arc<Recorder>>,
}

impl<P> ShardDispatcher<P> {
    /// Build a dispatcher over `n_shards` engines configured by `cfg`.
    /// The configuration must be growable: the submit path holds no
    /// global lock, so a mid-admission table stall could not be resolved
    /// by waiting (the software structures virtualize table capacity; the
    /// *residency* bound is [`with_capacity`](Self::with_capacity)).
    pub fn new(n_shards: usize, cfg: &NexusConfig) -> Self {
        ShardDispatcher::with_capacity(n_shards, cfg, ShardCapacity::Unbounded)
    }

    /// Build a bounded dispatcher: each shard admits at most `capacity`
    /// resident tasks. A submission that would overflow any involved
    /// shard reserves nothing, parks on the first full shard, and retries
    /// when that shard's next finish record is drained — so submitters
    /// stall exactly like the paper's master core does on a full Task
    /// Pool, and resume on the shard's finish report.
    ///
    /// Deadlock contract: a task's producers must be submitted before it
    /// (StarSs program order) and completions must be driven from other
    /// threads (the runtime's workers); then the protocol is deadlock-free
    /// down to capacity 1, because a parked submitter holds no slots and
    /// every resident task can eventually run.
    pub fn with_capacity(n_shards: usize, cfg: &NexusConfig, capacity: ShardCapacity) -> Self {
        ShardDispatcher::with_mode(n_shards, cfg, capacity, WakeMode::default())
    }

    /// Build a dispatcher with every knob explicit, including the wake
    /// delivery mode (see [`WakeMode`]; the default is lock-free).
    pub fn with_mode(
        n_shards: usize,
        cfg: &NexusConfig,
        capacity: ShardCapacity,
        wake_mode: WakeMode,
    ) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(
            cfg.growable,
            "the dispatcher's lock-per-shard submit path cannot stall mid-admission; \
             use a growable config (bound residency via ShardCapacity)"
        );
        capacity.validate();
        ShardDispatcher {
            shards: (0..n_shards)
                .map(|_| ShardCell {
                    ring: SegQueue::new(),
                    wakes: PushList::new(),
                    wake_owner: AtomicBool::new(false),
                    state: Mutex::new(ShardState {
                        engine: DependencyEngine::new(cfg),
                        owner: Vec::new(),
                        kickoff: VecDeque::new(),
                    }),
                    resident: AtomicU32::new(0),
                    park: Mutex::new(()),
                    unpark: Condvar::new(),
                    stalls: AtomicU64::new(0),
                    retries_resolved: AtomicU64::new(0),
                    stall_ns: AtomicU64::new(0),
                })
                .collect(),
            capacity,
            wake_mode,
            wake_metrics: WakeMetrics::default(),
            obs: None,
        }
    }

    /// Attach a lifecycle event recorder: the dispatcher emits
    /// `Submitted`/`DepCheckStart`/`DepCheckDone`/`Stalled`/`Resumed`/
    /// `Ready`/`WakePosted`/`WakeDelivered`/`Finished` events into it.
    /// Pass [`Recorder::disabled`] to keep the no-op fast path while
    /// exercising the plumbing.
    pub fn with_recorder(mut self, obs: Arc<Recorder>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.obs.as_ref()
    }

    #[inline]
    fn emit(&self, kind: EventKind, task: u64, shard: u32) {
        if let Some(r) = &self.obs {
            r.emit(kind, task, shard);
        }
    }

    #[inline]
    fn emit_edge(&self, kind: EventKind, task: u64, aux: u64, shard: u32) {
        if let Some(r) = &self.obs {
            r.emit_edge(kind, task, aux, shard);
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard residency bound this dispatcher enforces.
    pub fn capacity(&self) -> ShardCapacity {
        self.capacity
    }

    /// The wake delivery mode this dispatcher runs.
    pub fn wake_mode(&self) -> WakeMode {
        self.wake_mode
    }

    /// Wake-path activity counters (see [`WakeCounts`]; exact at
    /// quiescence).
    pub fn wake_counts(&self) -> WakeCounts {
        WakeCounts {
            delivered: self.wake_metrics.delivered.load(Ordering::Relaxed),
            deliveries: self.wake_metrics.deliveries.load(Ordering::Relaxed),
            delivery_ns: self.wake_metrics.delivery_ns.load(Ordering::Relaxed),
            delivery_lock_acquisitions: self
                .wake_metrics
                .delivery_lock_acquisitions
                .load(Ordering::Relaxed),
        }
    }

    /// Undelivered wake records queued per shard (diagnostics; racy while
    /// finishers run, exact at quiescence — zero once every finish report
    /// has been consumed).
    pub fn wake_list_depths(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|c| match self.wake_mode {
                WakeMode::LockFree => c.wakes.len(),
                WakeMode::Locked => c.state.lock().kickoff.len(),
            })
            .collect()
    }

    /// Per-shard stall/retry counters (exact at quiescence; counters use
    /// relaxed atomics, so concurrent readers see a racy snapshot).
    pub fn capacity_counts(&self) -> Vec<CapacityCounts> {
        self.shards
            .iter()
            .map(|c| CapacityCounts {
                stalls_observed: c.stalls.load(Ordering::Relaxed),
                retries_resolved: c.retries_resolved.load(Ordering::Relaxed),
                stall_ns: c.stall_ns.load(Ordering::Relaxed),
                resident: c.resident.load(Ordering::Relaxed) as usize,
            })
            .collect()
    }

    /// Release `n` residency slots on `s` and wake parked submitters.
    /// The ordering here is the lost-wakeup guard: decrement first, then
    /// notify under the park mutex, so a submitter that observed "full"
    /// under that mutex is already inside `wait` when the notify lands.
    fn release_slots(&self, s: usize, n: u32) {
        let cell = &self.shards[s];
        cell.resident.fetch_sub(n, Ordering::AcqRel);
        let _guard = cell.park.lock();
        cell.unpark.notify_all();
    }

    /// Try to reserve one residency slot on every involved shard; on the
    /// first full shard, roll back (waking anyone the rollback frees a
    /// slot for) and report it.
    fn try_reserve(&self, groups: &[(u32, Vec<Param>)]) -> Result<(), u32> {
        for (i, (s, _)) in groups.iter().enumerate() {
            let cell = &self.shards[*s as usize];
            let reserved = cell
                .resident
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| {
                    self.capacity.admits(r as usize).then_some(r + 1)
                })
                .is_ok();
            if !reserved {
                for (t, _) in &groups[..i] {
                    self.release_slots(*t as usize, 1);
                }
                return Err(*s);
            }
        }
        Ok(())
    }

    /// Block until shard `s` has a free residency slot (the slot may be
    /// taken again before the caller's retry; callers loop).
    fn park_on(&self, s: u32) {
        let cell = &self.shards[s as usize];
        let mut guard = cell.park.lock();
        while !self
            .capacity
            .admits(cell.resident.load(Ordering::Acquire) as usize)
        {
            cell.unpark.wait(&mut guard);
        }
    }

    /// Submit a task. Takes each involved shard's lock once, one at a
    /// time in first-touch parameter order — never two locks at once, so
    /// no lock-ordering discipline is needed — and never blocks on other
    /// tasks' *dependency* progress. Under a bounded capacity it blocks
    /// until every involved shard grants a residency slot (stall/retry,
    /// counted per shard); unbounded dispatchers never block at all. If
    /// the task has no unresolved dependencies the payload comes straight
    /// back in [`SubmitResult::ready`].
    pub fn submit(&self, fptr: u64, tag: u64, params: &[Param], payload: P) -> SubmitResult<P> {
        let groups = route_params(params, self.shards.len());
        self.emit(
            EventKind::Submitted,
            tag,
            groups.first().map_or(NO_SHARD, |g| g.0),
        );
        if self.capacity.is_bounded() {
            // One stall episode per submit call: counted once against the
            // first full shard, resolved once when the reservation lands,
            // with the episode's wall time accrued to that shard.
            let mut episode: Option<(u32, std::time::Instant)> = None;
            loop {
                match self.try_reserve(&groups) {
                    Ok(()) => break,
                    Err(full) => {
                        if episode.is_none() {
                            episode = Some((full, std::time::Instant::now()));
                            self.shards[full as usize]
                                .stalls
                                .fetch_add(1, Ordering::Relaxed);
                            self.emit(EventKind::Stalled, tag, full);
                        }
                        self.park_on(full);
                    }
                }
            }
            if let Some((first, t0)) = episode {
                let cell = &self.shards[first as usize];
                cell.stall_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                cell.retries_resolved.fetch_add(1, Ordering::Relaxed);
                self.emit(EventKind::Resumed, tag, first);
            }
        }
        self.submit_reserved(fptr, tag, groups, payload)
    }

    /// Non-blocking [`submit`](Self::submit): where the blocking path
    /// parks the calling thread on a full shard, this returns
    /// [`SubmitError::CapacityFull`] (with the payload handed back) so
    /// the caller owns the retry policy. Also validates the parameter
    /// list — a duplicated address is [`SubmitError::DuplicateAddress`]
    /// instead of a downstream debug assertion. A rejection reserves
    /// nothing and is not counted as a stall episode.
    pub fn try_submit(
        &self,
        fptr: u64,
        tag: u64,
        params: &[Param],
        payload: P,
    ) -> Result<SubmitResult<P>, (SubmitError, P)> {
        {
            let mut addrs: Vec<u64> = params.iter().map(|p| p.addr).collect();
            addrs.sort_unstable();
            if let Some(w) = addrs.windows(2).find(|w| w[0] == w[1]) {
                return Err((SubmitError::DuplicateAddress { addr: w[0] }, payload));
            }
        }
        let groups = route_params(params, self.shards.len());
        if let Err(full) = self.try_reserve(&groups) {
            let limit = self.capacity.limit().expect("unbounded always admits");
            return Err((SubmitError::CapacityFull { shard: full, limit }, payload));
        }
        self.emit(
            EventKind::Submitted,
            tag,
            groups.first().map_or(NO_SHARD, |g| g.0),
        );
        Ok(self.submit_reserved(fptr, tag, groups, payload))
    }

    /// The shared admission body: residency slots already reserved.
    fn submit_reserved(
        &self,
        fptr: u64,
        tag: u64,
        groups: Vec<(u32, Vec<Param>)>,
        payload: P,
    ) -> SubmitResult<P> {
        let first_shard = groups.first().map_or(NO_SHARD, |g| g.0);
        self.emit(EventKind::DepCheckStart, tag, first_shard);
        let node = Arc::new(Node {
            tag,
            pending: AtomicU32::new(groups.len() as u32 + 1),
            parts_left: AtomicU32::new(groups.len() as u32),
            parts: OnceLock::new(),
            payload: Mutex::new(None),
        });
        let mut parts = Vec::with_capacity(groups.len());
        for (s, sub) in groups {
            let mut st = self.shards[s as usize].state.lock();
            let (td, slice_ready) = st
                .engine
                .submit(fptr, tag, sub)
                .expect("growable engine cannot reject");
            let i = td.0 as usize;
            if i >= st.owner.len() {
                st.owner.resize_with(i + 1, || None);
            }
            st.owner[i] = Some(Arc::clone(&node));
            drop(st);
            parts.push((s, td));
            if slice_ready {
                // Cannot reach zero: the submission guard is still held.
                node.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
        node.parts.set(parts).expect("parts set exactly once");
        *node.payload.lock() = Some(payload);
        // DepCheckDone is emitted before the guard release: the guard's
        // AcqRel decrement chain makes it happen-before any waker's
        // `Ready` emission for this task, so per-task event order holds.
        self.emit(EventKind::DepCheckDone, tag, first_shard);
        // Release the submission guard. Whoever performs the transition
        // to zero — this thread or a concurrent waker that decremented
        // first — takes the payload and schedules the task.
        let ready = if node.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            Some(node.payload.lock().take().expect("payload stored above"))
        } else {
            None
        };
        if ready.is_some() {
            self.emit(EventKind::Ready, tag, first_shard);
        }
        SubmitResult {
            ticket: TaskTicket(node),
            ready,
        }
    }

    /// Finish a task that ran: push its per-shard release records onto the
    /// submission rings and drain every involved shard. The report may
    /// include wakes and completions belonging to concurrent finishers
    /// (and this task's own may surface in theirs) — callers treat both
    /// uniformly, so nothing is lost.
    pub fn finish(&self, ticket: TaskTicket<P>) -> FinishReport<P> {
        let node = ticket.0;
        let parts = node
            .parts
            .get()
            .expect("finish called before submit completed");
        let mut report = FinishReport::default();
        if parts.is_empty() {
            // Parameterless task: no shard holds state for it.
            report.completed = 1;
            self.emit(EventKind::Finished, node.tag, NO_SHARD);
            return report;
        }
        for &(s, td) in parts {
            self.shards[s as usize].ring.push((Arc::clone(&node), td));
        }
        for &(s, _) in parts {
            self.drain_shard(s as usize, &mut report);
        }
        report
    }

    /// Drain one shard's ring (under its lock) and then deliver the
    /// shard's queued wakes. The ring drain skips entirely when a
    /// concurrent holder already consumed every queued record; each
    /// drained record releases one residency slot — the shard's "finish
    /// report" a parked submitter resumes on. Wake delivery always runs:
    /// this finisher's wakes may be sitting on the list even when its
    /// ring records were drained by someone else.
    fn drain_shard(&self, s: usize, report: &mut FinishReport<P>) {
        if !self.shards[s].ring.is_empty() {
            match self.wake_mode {
                WakeMode::Locked => self.drain_ring_locked(s, report),
                WakeMode::LockFree => self.drain_ring_lock_free(s, report),
            }
        }
        let m = &self.wake_metrics;
        m.deliveries.fetch_add(1, Ordering::Relaxed);
        if self.wake_mode == WakeMode::LockFree && self.shards[s].wakes.is_empty() {
            // The lock-free fast path: one atomic load proves there is
            // nothing to deliver anywhere, so the step costs nothing and
            // is not timed. (This is the same emptiness check the claim
            // loop starts with, hoisted; the locked mode has no such
            // path — it must take the shard lock just to look.)
            return;
        }
        let before = report.woken.len();
        let t0 = std::time::Instant::now();
        match self.wake_mode {
            WakeMode::Locked => self.deliver_wakes_locked(s, report),
            WakeMode::LockFree => self.deliver_wakes_lock_free(s, report),
        }
        m.delivery_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        m.delivered
            .fetch_add((report.woken.len() - before) as u64, Ordering::Relaxed);
    }

    /// Locked-mode ring drain: resolution *and* wake queueing happen
    /// under the shard lock — each ready task's remote decrement, payload
    /// handoff, and kick-off enqueue extend the critical section every
    /// submitter and finisher contends on.
    fn drain_ring_locked(&self, s: usize, report: &mut FinishReport<P>) {
        let cell = &self.shards[s];
        let mut drained = 0u32;
        let mut finished: Vec<u64> = Vec::new();
        let mut st = cell.state.lock();
        while let Some((node, td)) = cell.ring.pop() {
            let fin = st.engine.finish(td);
            st.owner[td.0 as usize] = None;
            drained += 1;
            for woken in fin.newly_ready {
                let wnode = st.owner[woken.0 as usize]
                    .as_ref()
                    .expect("woken sub-descriptor must have an owner")
                    .clone();
                if wnode.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let payload = wnode
                        .payload
                        .lock()
                        .take()
                        .expect("ready task must hold its payload");
                    self.emit_edge(EventKind::Ready, wnode.tag, node.tag, s as u32);
                    self.emit_edge(EventKind::WakePosted, wnode.tag, node.tag, s as u32);
                    st.kickoff.push_back((wnode, payload));
                }
            }
            if node.parts_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                report.completed += 1;
                finished.push(node.tag);
            }
        }
        drop(st);
        for tag in finished {
            self.emit(EventKind::Finished, tag, s as u32);
        }
        if drained > 0 && self.capacity.is_bounded() {
            self.release_slots(s, drained);
        }
    }

    /// Lock-free-mode ring drain: the lock covers only table access (the
    /// engine release and the owner lookup of each woken sub-descriptor).
    /// Everything wake-shaped — remote decrements, payload handoffs, the
    /// wake-list posts — happens after the lock is dropped.
    fn drain_ring_lock_free(&self, s: usize, report: &mut FinishReport<P>) {
        let cell = &self.shards[s];
        let mut drained = 0u32;
        // Each woken home record is carried with its waker's tag so the
        // post-lock wake path can stamp the realized dependence edge
        // onto the `Ready`/`WakePosted` events.
        let mut woken_nodes: Vec<(Arc<Node<P>>, u64)> = Vec::new();
        let mut finished: Vec<u64> = Vec::new();
        let mut st = cell.state.lock();
        while let Some((node, td)) = cell.ring.pop() {
            let fin = st.engine.finish(td);
            st.owner[td.0 as usize] = None;
            drained += 1;
            for woken in fin.newly_ready {
                woken_nodes.push((
                    st.owner[woken.0 as usize]
                        .as_ref()
                        .expect("woken sub-descriptor must have an owner")
                        .clone(),
                    node.tag,
                ));
            }
            if node.parts_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                report.completed += 1;
                finished.push(node.tag);
            }
        }
        drop(st);
        for tag in finished {
            self.emit(EventKind::Finished, tag, s as u32);
        }
        // Post wakes lock-free. Exactly one decrement per woken slice
        // (same as the locked path), and exactly one thread — whoever
        // performs the transition to zero — takes the payload and posts.
        for (wnode, waker) in woken_nodes {
            if wnode.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let payload = wnode
                    .payload
                    .lock()
                    .take()
                    .expect("ready task must hold its payload");
                self.emit_edge(EventKind::Ready, wnode.tag, waker, s as u32);
                self.emit_edge(EventKind::WakePosted, wnode.tag, waker, s as u32);
                cell.wakes.push((wnode, payload));
            }
        }
        if drained > 0 && self.capacity.is_bounded() {
            self.release_slots(s, drained);
        }
    }

    /// Locked-mode wake delivery: the kick-off `VecDeque` lives inside
    /// the shard state, so handing records to the report costs a second
    /// shard-lock acquisition (and blocks behind whoever is resolving).
    fn deliver_wakes_locked(&self, s: usize, report: &mut FinishReport<P>) {
        self.wake_metrics
            .delivery_lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
        let mut st = self.shards[s].state.lock();
        while let Some((node, payload)) = st.kickoff.pop_front() {
            self.emit(EventKind::WakeDelivered, node.tag, s as u32);
            report.woken.push((TaskTicket(node), payload));
        }
    }

    /// Lock-free-mode wake delivery: claim drain ownership by CAS (the
    /// wake list is MPSC — one consumer at a time), move every queued
    /// record into the report, release, and re-check. The re-check after
    /// release is the lost-wake guard: a finisher that posted during our
    /// drain and failed its own claim is guaranteed (SeqCst push before
    /// failed SeqCst claim, claim before our release) to have its record
    /// visible to this loop's next `is_empty`, so every posted wake is
    /// delivered by the poster or by a current-or-future owner. Never
    /// touches the shard lock.
    fn deliver_wakes_lock_free(&self, s: usize, report: &mut FinishReport<P>) {
        let cell = &self.shards[s];
        loop {
            if cell.wakes.is_empty() {
                return;
            }
            if cell.wake_owner.swap(true, Ordering::SeqCst) {
                // A concurrent owner is draining; it re-checks after
                // releasing, so our records cannot be stranded.
                return;
            }
            let before = report.woken.len();
            for (node, payload) in cell.wakes.drain() {
                self.emit(EventKind::WakeDelivered, node.tag, s as u32);
                report.woken.push((TaskTicket(node), payload));
            }
            cell.wake_owner.store(false, Ordering::SeqCst);
            if report.woken.len() == before {
                // Counted but not yet published: the list's length is
                // incremented before the head CAS, so a non-empty check
                // can race a push that has no node linked yet. Returning
                // here could strand that record (its poster may have
                // already lost the claim to us), so keep looping — but
                // hand the publisher the CPU instead of hot-claiming an
                // empty chain.
                std::thread::yield_now();
            }
        }
    }

    /// Tasks currently admitted and not yet fully retired, summed over
    /// shards as sub-descriptor counts (diagnostics; takes every lock).
    pub fn sub_descriptors_in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(|c| c.state.lock().engine.in_flight())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn dispatcher(n: usize) -> ShardDispatcher<u64> {
        ShardDispatcher::new(n, &NexusConfig::unbounded())
    }

    /// Run a ready task set to completion single-threadedly, returning
    /// completion count and the order tags became ready.
    fn drain(d: &ShardDispatcher<u64>, mut ready: Vec<(TaskTicket<u64>, u64)>) -> (u64, Vec<u64>) {
        let mut completed = 0;
        let mut order = Vec::new();
        while let Some((ticket, tag)) = ready.pop() {
            order.push(tag);
            let rep = d.finish(ticket);
            completed += rep.completed;
            ready.extend(rep.woken);
        }
        (completed, order)
    }

    #[test]
    fn chain_wakes_in_dependency_order() {
        for mode in [WakeMode::Locked, WakeMode::LockFree] {
            let d = ShardDispatcher::with_mode(
                4,
                &NexusConfig::unbounded(),
                ShardCapacity::Unbounded,
                mode,
            );
            let mut ready = Vec::new();
            let r0 = d.submit(1, 0, &[Param::output(0xA0, 4)], 0);
            if let Some(p) = r0.ready {
                ready.push((r0.ticket, p));
            }
            let r1 = d.submit(1, 1, &[Param::input(0xA0, 4), Param::output(0xB0, 4)], 1);
            assert!(r1.ready.is_none(), "t1 depends on t0");
            let r2 = d.submit(1, 2, &[Param::input(0xB0, 4)], 2);
            assert!(r2.ready.is_none(), "t2 depends on t1");
            drop((r1.ticket, r2.ticket)); // tickets resurface via woken
            let (completed, order) = drain(&d, ready);
            assert_eq!(completed, 3, "{}", mode.name());
            assert_eq!(order, vec![0, 1, 2], "{}", mode.name());
            assert_eq!(d.sub_descriptors_in_flight(), 0);
            let counts = d.wake_counts();
            assert_eq!(counts.delivered, 2, "{}: two dependents woken", mode.name());
            assert!(d.wake_list_depths().iter().all(|&n| n == 0));
            match mode {
                WakeMode::Locked => assert!(counts.delivery_lock_acquisitions > 0),
                WakeMode::LockFree => assert_eq!(counts.delivery_lock_acquisitions, 0),
            }
        }
    }

    #[test]
    fn parameterless_task_completes_immediately() {
        let d = dispatcher(2);
        let r = d.submit(1, 9, &[], 9);
        let p = r.ready.expect("no deps possible");
        let rep = d.finish(r.ticket);
        assert_eq!(p, 9);
        assert_eq!(rep.completed, 1);
        assert!(rep.woken.is_empty());
    }

    #[test]
    fn concurrent_independent_churn_conserves_completions() {
        for shards in [1usize, 4] {
            let d = Arc::new(ShardDispatcher::<u64>::new(
                shards,
                &NexusConfig::unbounded(),
            ));
            let total_completed = Arc::new(AtomicU64::new(0));
            const THREADS: u64 = 4;
            const PER_THREAD: u64 = 500;
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let d = Arc::clone(&d);
                    let total = Arc::clone(&total_completed);
                    std::thread::spawn(move || {
                        for i in 0..PER_THREAD {
                            let tag = t * PER_THREAD + i;
                            let addr = 0x10_0000 + tag * 64;
                            let r = d.submit(1, tag, &[Param::output(addr, 4)], tag);
                            // Independent tasks are always immediately ready.
                            let p = r.ready.expect("independent task must be ready");
                            assert_eq!(p, tag);
                            let rep = d.finish(r.ticket);
                            assert!(rep.woken.is_empty(), "no dependencies exist");
                            total.fetch_add(rep.completed, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                total_completed.load(Ordering::Relaxed),
                THREADS * PER_THREAD,
                "shards={shards}: every task completed exactly once"
            );
            assert_eq!(d.sub_descriptors_in_flight(), 0);
        }
    }

    #[test]
    fn unbounded_dispatcher_reports_zero_stalls() {
        let d = dispatcher(4);
        for i in 0..32u64 {
            let r = d.submit(1, i, &[Param::output(0x9000 + i * 64, 4)], i);
            d.finish(r.ticket);
        }
        for (s, c) in d.capacity_counts().iter().enumerate() {
            assert_eq!(*c, CapacityCounts::default(), "shard {s}");
        }
    }

    #[test]
    fn parked_submitter_resumes_on_finish_and_counts_one_episode() {
        // One shard, capacity 2: two residents fill it; a third submission
        // parks on another thread and resumes when a resident finishes.
        let d = Arc::new(ShardDispatcher::<u64>::with_capacity(
            1,
            &NexusConfig::unbounded(),
            ShardCapacity::Bounded(2),
        ));
        let r0 = d.submit(1, 0, &[Param::output(0x100, 4)], 0);
        let r1 = d.submit(1, 1, &[Param::output(0x200, 4)], 1);
        assert_eq!(d.capacity_counts()[0].resident, 2);
        let parked = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                let r = d.submit(1, 2, &[Param::output(0x300, 4)], 2);
                let p = r.ready.expect("independent task");
                (r.ticket, p)
            })
        };
        // Deterministic rendezvous: the stall is observed before we free
        // the slot the parked submitter needs.
        while d.capacity_counts()[0].stalls_observed == 0 {
            std::thread::yield_now();
        }
        assert_eq!(d.capacity_counts()[0].retries_resolved, 0);
        let rep = d.finish(r0.ticket);
        assert_eq!(rep.completed, 1);
        let (t2, p2) = parked.join().unwrap();
        assert_eq!(p2, 2);
        d.finish(r1.ticket);
        d.finish(t2);
        let c = &d.capacity_counts()[0];
        assert_eq!(
            (c.stalls_observed, c.retries_resolved, c.resident),
            (1, 1, 0)
        );
    }

    #[test]
    fn try_submit_hands_the_payload_back_instead_of_parking() {
        let d = ShardDispatcher::<u64>::with_capacity(
            1,
            &NexusConfig::unbounded(),
            ShardCapacity::Bounded(1),
        );
        // A duplicated address is rejected before any slot is reserved.
        let dup = [Param::input(0x100, 4), Param::output(0x100, 4)];
        match d.try_submit(1, 0, &dup, 7) {
            Err((SubmitError::DuplicateAddress { addr }, p)) => {
                assert_eq!((addr, p), (0x100, 7));
            }
            other => panic!("expected DuplicateAddress, got {other:?}"),
        }
        assert_eq!(d.capacity_counts()[0].resident, 0);

        let r0 = d
            .try_submit(1, 0, &[Param::output(0x100, 4)], 0)
            .expect("slot free");
        // The shard is now full: where submit() would park, try_submit
        // reports the full shard and returns the payload unchanged.
        match d.try_submit(1, 1, &[Param::output(0x200, 4)], 1) {
            Err((SubmitError::CapacityFull { shard, limit }, p)) => {
                assert_eq!((shard, limit, p), (0, 1, 1));
            }
            other => panic!("expected CapacityFull, got {other:?}"),
        }
        let c = &d.capacity_counts()[0];
        assert_eq!((c.stalls_observed, c.resident), (0, 1));

        d.finish(r0.ticket);
        let r1 = d
            .try_submit(1, 1, &[Param::output(0x200, 4)], 1)
            .expect("slot released by finish");
        assert_eq!(r1.ready, Some(1));
        d.finish(r1.ticket);
        assert_eq!(d.capacity_counts()[0].resident, 0);
    }

    #[test]
    fn capacity_one_concurrent_churn_is_deadlock_free_and_balanced() {
        // Four threads hammer a capacity-1 dispatcher with independent
        // tasks: every slot conflict parks a submitter that some other
        // thread's finish must resume. At quiescence every stall episode
        // is resolved and every task completed exactly once.
        for shards in [1usize, 4] {
            let d = Arc::new(ShardDispatcher::<u64>::with_capacity(
                shards,
                &NexusConfig::unbounded(),
                ShardCapacity::Bounded(1),
            ));
            let total = Arc::new(AtomicU64::new(0));
            const THREADS: u64 = 4;
            const PER_THREAD: u64 = 300;
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let d = Arc::clone(&d);
                    let total = Arc::clone(&total);
                    std::thread::spawn(move || {
                        for i in 0..PER_THREAD {
                            let tag = t * PER_THREAD + i;
                            let addr = 0x50_0000 + tag * 64;
                            let r = d.submit(1, tag, &[Param::output(addr, 4)], tag);
                            let p = r.ready.expect("independent task must be ready");
                            assert_eq!(p, tag);
                            total.fetch_add(d.finish(r.ticket).completed, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(total.load(Ordering::Relaxed), THREADS * PER_THREAD);
            for (s, c) in d.capacity_counts().iter().enumerate() {
                assert_eq!(
                    c.stalls_observed, c.retries_resolved,
                    "shards={shards} shard {s}: unresolved stall episodes"
                );
                assert_eq!(c.resident, 0, "shards={shards} shard {s} leaked slots");
            }
            assert_eq!(d.sub_descriptors_in_flight(), 0);
        }
    }

    #[test]
    fn concurrent_producer_consumer_fanout() {
        for mode in [WakeMode::Locked, WakeMode::LockFree] {
            concurrent_producer_consumer_fanout_in(mode);
        }
    }

    fn concurrent_producer_consumer_fanout_in(mode: WakeMode) {
        // One producer address per thread-pair; consumers park until the
        // producer finishes, then surface through some finisher's report.
        let d = Arc::new(ShardDispatcher::<u64>::with_mode(
            4,
            &NexusConfig::unbounded(),
            ShardCapacity::Unbounded,
            mode,
        ));
        let woken_total = Arc::new(AtomicU64::new(0));
        let completed_total = Arc::new(AtomicU64::new(0));
        const PAIRS: u64 = 8;
        const CONSUMERS: u64 = 16;
        let handles: Vec<_> = (0..PAIRS)
            .map(|p| {
                let d = Arc::clone(&d);
                let woken = Arc::clone(&woken_total);
                let completed = Arc::clone(&completed_total);
                std::thread::spawn(move || {
                    let addr = 0x20_0000 + p * 0x1000;
                    let prod = d.submit(1, p, &[Param::output(addr, 4)], p);
                    let prod_payload = prod.ready.expect("producer is independent");
                    let mut consumer_tickets = Vec::new();
                    for c in 0..CONSUMERS {
                        let tag = 1000 + p * CONSUMERS + c;
                        let r = d.submit(1, tag, &[Param::input(addr, 4)], tag);
                        assert!(r.ready.is_none(), "consumer must wait for producer");
                        consumer_tickets.push(r.ticket);
                    }
                    drop(consumer_tickets); // resurface via woken
                    assert_eq!(prod_payload, p);
                    let mut queue = vec![(prod.ticket, prod_payload)];
                    while let Some((t, _)) = queue.pop() {
                        let rep = d.finish(t);
                        woken.fetch_add(rep.woken.len() as u64, Ordering::Relaxed);
                        completed.fetch_add(rep.completed, Ordering::Relaxed);
                        queue.extend(rep.woken);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken_total.load(Ordering::Relaxed), PAIRS * CONSUMERS);
        assert_eq!(
            completed_total.load(Ordering::Relaxed),
            PAIRS * (CONSUMERS + 1)
        );
        assert_eq!(d.sub_descriptors_in_flight(), 0);
        assert_eq!(d.wake_counts().delivered, PAIRS * CONSUMERS);
        assert!(
            d.wake_list_depths().iter().all(|&n| n == 0),
            "every posted wake must be delivered by quiescence"
        );
    }
}
