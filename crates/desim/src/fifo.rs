//! Bounded FIFO lists with occupancy statistics.
//!
//! Nexus++ is plumbed together almost entirely with FIFO lists (`TDs Sizes`,
//! `New Tasks`, `TP Free indices`, `Global Ready Tasks`, `Worker Cores IDs`,
//! per-core `CiRdyTasks`/`CiFinTasks`). A full list stalls its producer —
//! e.g. "If this list is full, the Master Core stalls and stops sending new
//! Task Descriptors". [`Fifo`] models exactly that: a capacity-bounded queue
//! whose `push` fails (returning the item) when full, plus high-water and
//! throughput statistics used in the evaluation reports.

use std::collections::VecDeque;

/// Error returned by [`Fifo::push`] when the list is full; carries the
/// rejected item back to the caller so it can retry after a wake-up.
#[derive(Debug, PartialEq, Eq)]
pub struct FifoFull<T>(pub T);

/// A bounded FIFO with statistics.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    name: &'static str,
    cap: usize,
    q: VecDeque<T>,
    /// Largest occupancy ever observed.
    high_water: usize,
    /// Total number of successful pushes.
    pushes: u64,
    /// Number of rejected pushes (producer stalls).
    rejects: u64,
}

impl<T> Fifo<T> {
    /// A new FIFO holding at most `cap` items. `name` labels statistics.
    pub fn new(name: &'static str, cap: usize) -> Self {
        assert!(cap > 0, "FIFO {name} must have non-zero capacity");
        Fifo {
            name,
            cap,
            q: VecDeque::with_capacity(cap.min(4096)),
            high_water: 0,
            pushes: 0,
            rejects: 0,
        }
    }

    /// The list's label.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in items.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// True if at capacity (producer must stall).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.cap
    }

    /// Remaining free slots.
    #[inline]
    pub fn free(&self) -> usize {
        self.cap - self.q.len()
    }

    /// Append `item`, or return it in `FifoFull` if the list is full.
    #[inline]
    pub fn push(&mut self, item: T) -> Result<(), FifoFull<T>> {
        if self.is_full() {
            self.rejects += 1;
            return Err(FifoFull(item));
        }
        self.q.push_back(item);
        self.pushes += 1;
        if self.q.len() > self.high_water {
            self.high_water = self.q.len();
        }
        Ok(())
    }

    /// Append `item`, panicking if full. For lists whose producers are
    /// structurally unable to overflow them (e.g. `TP Free indices`, which
    /// can never hold more than `Task Pool` entries).
    #[inline]
    pub fn push_expect(&mut self, item: T) {
        if self.push(item).is_err() {
            panic!("FIFO {} overflow (cap {})", self.name, self.cap);
        }
    }

    /// Remove and return the head item.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.q.pop_front()
    }

    /// Peek at the head item.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.q.front()
    }

    /// Iterate items from head to tail (diagnostics only).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.q.iter()
    }

    /// Largest occupancy ever observed.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of successful pushes.
    #[inline]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Number of rejected pushes (each represents a producer stall attempt).
    #[inline]
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Drop all contents (statistics retained).
    pub fn clear(&mut self) {
        self.q.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut f = Fifo::new("t", 3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn rejects_when_full_and_returns_item() {
        let mut f = Fifo::new("t", 2);
        f.push(10).unwrap();
        f.push(11).unwrap();
        assert!(f.is_full());
        assert_eq!(f.push(12), Err(FifoFull(12)));
        assert_eq!(f.rejects(), 1);
        f.pop();
        f.push(12).unwrap();
        assert_eq!(f.pop(), Some(11));
        assert_eq!(f.pop(), Some(12));
    }

    #[test]
    fn statistics() {
        let mut f = Fifo::new("t", 4);
        for i in 0..3 {
            f.push(i).unwrap();
        }
        f.pop();
        f.push(9).unwrap();
        assert_eq!(f.high_water(), 3);
        assert_eq!(f.pushes(), 4);
        assert_eq!(f.free(), 1);
        assert_eq!(f.peek(), Some(&1));
    }

    #[test]
    #[should_panic]
    fn push_expect_overflow_panics() {
        let mut f = Fifo::new("t", 1);
        f.push_expect(1);
        f.push_expect(2);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new("t", 0);
    }
}
