//! Counting resources with FIFO admission.
//!
//! The paper models off-chip memory contention as a hard concurrency limit:
//! "The off-chip memory is assumed to have 32 banks, each having one
//! read/write port. Therefore, no more than 32 tasks can access the memory
//! at a given time, and this is how contention accessing off-chip memory is
//! modeled." [`SlotPool`] implements that limiter: `acquire` grants one of
//! `n` slots immediately, or queues the requester (identified by an opaque
//! token) in FIFO order; `release` hands the slot to the oldest waiter.

use std::collections::VecDeque;

/// Result of a successful slot acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotGrant {
    /// A slot was free; the requester may proceed immediately.
    Granted,
    /// All slots are busy; the requester was queued and will be returned by
    /// a future [`SlotPool::release`].
    Queued,
}

/// A pool of identical slots with FIFO waiting.
///
/// Waiters are opaque `u64` tokens chosen by the model (e.g. a worker-core
/// id or an event key); the pool never interprets them.
#[derive(Debug, Clone)]
pub struct SlotPool {
    name: &'static str,
    total: usize,
    in_use: usize,
    waiters: VecDeque<u64>,
    // statistics
    grants: u64,
    queued: u64,
    high_water_waiters: usize,
}

impl SlotPool {
    /// A pool of `total` slots.
    pub fn new(name: &'static str, total: usize) -> Self {
        assert!(total > 0, "slot pool {name} needs at least one slot");
        SlotPool {
            name,
            total,
            in_use: 0,
            waiters: VecDeque::new(),
            grants: 0,
            queued: 0,
            high_water_waiters: 0,
        }
    }

    /// The pool's label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total number of slots.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Slots currently held.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Requesters currently queued.
    #[inline]
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Total immediate grants.
    #[inline]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total requests that had to queue (a direct measure of contention).
    #[inline]
    pub fn queued_total(&self) -> u64 {
        self.queued
    }

    /// Largest waiter-queue length observed.
    #[inline]
    pub fn high_water_waiters(&self) -> usize {
        self.high_water_waiters
    }

    /// Request a slot for `waiter`. Returns [`SlotGrant::Granted`] if a slot
    /// was free (the caller now holds it), or [`SlotGrant::Queued`] if the
    /// waiter joined the FIFO queue.
    pub fn acquire(&mut self, waiter: u64) -> SlotGrant {
        if self.in_use < self.total {
            self.in_use += 1;
            self.grants += 1;
            SlotGrant::Granted
        } else {
            self.waiters.push_back(waiter);
            self.queued += 1;
            if self.waiters.len() > self.high_water_waiters {
                self.high_water_waiters = self.waiters.len();
            }
            SlotGrant::Queued
        }
    }

    /// Release a held slot. If waiters are queued, the oldest one is granted
    /// the slot and returned — the model must then resume that waiter.
    pub fn release(&mut self) -> Option<u64> {
        debug_assert!(self.in_use > 0, "release on idle pool {}", self.name);
        if let Some(w) = self.waiters.pop_front() {
            // Slot passes directly to the waiter; `in_use` is unchanged.
            self.grants += 1;
            Some(w)
        } else {
            self.in_use -= 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_full_then_queues() {
        let mut p = SlotPool::new("mem", 2);
        assert_eq!(p.acquire(1), SlotGrant::Granted);
        assert_eq!(p.acquire(2), SlotGrant::Granted);
        assert_eq!(p.acquire(3), SlotGrant::Queued);
        assert_eq!(p.acquire(4), SlotGrant::Queued);
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.waiting(), 2);
        assert_eq!(p.queued_total(), 2);
    }

    #[test]
    fn release_hands_slot_to_oldest_waiter() {
        let mut p = SlotPool::new("mem", 1);
        assert_eq!(p.acquire(10), SlotGrant::Granted);
        assert_eq!(p.acquire(11), SlotGrant::Queued);
        assert_eq!(p.acquire(12), SlotGrant::Queued);
        assert_eq!(p.release(), Some(11));
        assert_eq!(p.release(), Some(12));
        assert_eq!(p.release(), None);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn slot_count_conserved() {
        let mut p = SlotPool::new("mem", 3);
        for i in 0..3 {
            assert_eq!(p.acquire(i), SlotGrant::Granted);
        }
        assert_eq!(p.acquire(99), SlotGrant::Queued);
        // Handoff keeps in_use at the cap.
        assert_eq!(p.release(), Some(99));
        assert_eq!(p.in_use(), 3);
        for _ in 0..3 {
            assert_eq!(p.release(), None);
        }
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn high_water_tracks_worst_contention() {
        let mut p = SlotPool::new("mem", 1);
        p.acquire(0);
        for i in 1..=5 {
            p.acquire(i);
        }
        assert_eq!(p.high_water_waiters(), 5);
    }
}
