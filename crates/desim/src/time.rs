//! Simulation time.
//!
//! Time is kept in integer **picoseconds**. The two clock domains of the
//! paper (worker cores at 2 GHz → 500 ps period, Nexus++ at 500 MHz →
//! 2000 ps period) and the memory timings (12 ns per 128-byte chunk) are all
//! exact in picoseconds, so no rounding ever accumulates.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in picoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic is the same and the paper's model never needs a calendar.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// One picosecond.
    pub const PS: SimTime = SimTime(1);
    /// One nanosecond.
    pub const NS: SimTime = SimTime(1_000);
    /// One microsecond.
    pub const US: SimTime = SimTime(1_000_000);
    /// One millisecond.
    pub const MS: SimTime = SimTime(1_000_000_000);
    /// One second.
    pub const S: SimTime = SimTime(1_000_000_000_000);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from a floating-point number of nanoseconds (rounded to the
    /// nearest picosecond). Intended for workload generators that compute
    /// durations from FLOP counts; the simulator core never uses floats.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimTime((ns * 1_000.0).round() as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn ps(self) -> u64 {
        self.0
    }

    /// Time as floating-point nanoseconds (for reporting only).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as floating-point microseconds (for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time as floating-point milliseconds (for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction (useful for "time remaining" computations).
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// Multiply a duration by an integer count.
    #[inline]
    pub const fn times(self, n: u64) -> SimTime {
        SimTime(self.0 * n)
    }

    /// True if this is time zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {self:?} - {rhs:?}");
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    /// Ratio of two times (e.g. makespan / makespan for speedups).
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimTime) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    /// Human-friendly rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0ps")
        } else if ps.is_multiple_of(1_000_000_000_000) {
            write!(f, "{}s", ps / 1_000_000_000_000)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_ns(12).ps(), 12_000);
        assert_eq!(SimTime::from_us(3).ps(), 3_000_000);
        assert_eq!(SimTime::NS.times(12), SimTime::from_ns(12));
        assert_eq!(SimTime::from_ns_f64(11.8).ps(), 11_800);
        assert_eq!(SimTime::from_ns_f64(0.5).ps(), 500);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!(a + b, SimTime::from_ns(14));
        assert_eq!(a - b, SimTime::from_ns(6));
        assert_eq!(a * 3, SimTime::from_ns(30));
        assert_eq!(a / 2, SimTime::from_ns(5));
        assert!((a / b - 2.5).abs() < 1e-12);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_and_compare() {
        let total: SimTime = [SimTime::NS, SimTime::US, SimTime::from_ns(1)]
            .into_iter()
            .sum();
        assert_eq!(total.ps(), 1_000 + 1_000_000 + 1_000);
        assert!(SimTime::NS < SimTime::US);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::ZERO.to_string(), "0ps");
        assert_eq!(SimTime::from_ns(2).to_string(), "2.000ns");
        assert_eq!(SimTime::from_us(7).to_string(), "7.000us");
        assert_eq!(SimTime(500).to_string(), "500ps");
        assert_eq!(SimTime::S.to_string(), "1s");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }
}
