//! Clock-domain helpers.
//!
//! The modeled system has two clock domains: worker cores at 2 GHz and the
//! Nexus++ logic at 500 MHz ("Nexus++ is simulated assuming a clock cycle
//! time of 2 ns"). [`Clock`] converts cycle counts to [`SimTime`] and aligns
//! event times up to clock edges, keeping all block service times quantized
//! to whole cycles like the SystemC model.

use crate::time::SimTime;

/// A clock domain defined by its period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    period: SimTime,
}

impl Clock {
    /// A clock with the given period.
    pub const fn from_period(period: SimTime) -> Self {
        Clock { period }
    }

    /// A clock from a frequency in MHz (must divide 1e6 ps evenly for an
    /// exact period; 500 MHz → 2000 ps, 2000 MHz → 500 ps).
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0);
        let ps = 1_000_000 / mhz;
        assert_eq!(
            ps * mhz,
            1_000_000,
            "{mhz} MHz does not have an integral picosecond period"
        );
        Clock {
            period: SimTime::from_ps(ps),
        }
    }

    /// The clock period.
    #[inline]
    pub const fn period(&self) -> SimTime {
        self.period
    }

    /// Duration of `n` cycles.
    #[inline]
    pub fn cycles(&self, n: u64) -> SimTime {
        self.period * n
    }

    /// The number of whole cycles needed to cover `t` (ceiling division) —
    /// how a hardware block quantizes an analog duration.
    #[inline]
    pub fn cycles_ceil(&self, t: SimTime) -> u64 {
        t.ps().div_ceil(self.period.ps())
    }

    /// Align `t` up to the next clock edge (identity if already aligned).
    #[inline]
    pub fn align_up(&self, t: SimTime) -> SimTime {
        let p = self.period.ps();
        SimTime::from_ps(t.ps().div_ceil(p) * p)
    }
}

/// The paper's worker-core clock: 2 GHz.
pub const CORE_CLOCK_MHZ: u64 = 2_000;
/// The paper's Nexus++ clock: 500 MHz (2 ns cycle).
pub const NEXUS_CLOCK_MHZ: u64 = 500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_periods() {
        assert_eq!(
            Clock::from_mhz(NEXUS_CLOCK_MHZ).period(),
            SimTime::from_ns(2)
        );
        assert_eq!(
            Clock::from_mhz(CORE_CLOCK_MHZ).period(),
            SimTime::from_ps(500)
        );
    }

    #[test]
    fn cycles_to_time() {
        let c = Clock::from_mhz(500);
        assert_eq!(c.cycles(0), SimTime::ZERO);
        assert_eq!(c.cycles(5), SimTime::from_ns(10));
        // Worked example from the paper: a 4-parameter submission takes
        // 10 cycles = 20 ns, an 8-parameter one 14 cycles = 28 ns.
        assert_eq!(c.cycles(10), SimTime::from_ns(20));
        assert_eq!(c.cycles(14), SimTime::from_ns(28));
    }

    #[test]
    fn ceil_and_align() {
        let c = Clock::from_mhz(500); // 2 ns
        assert_eq!(c.cycles_ceil(SimTime::from_ns(3)), 2);
        assert_eq!(c.cycles_ceil(SimTime::from_ns(4)), 2);
        assert_eq!(c.cycles_ceil(SimTime::from_ps(1)), 1);
        assert_eq!(c.align_up(SimTime::from_ns(3)), SimTime::from_ns(4));
        assert_eq!(c.align_up(SimTime::from_ns(4)), SimTime::from_ns(4));
        assert_eq!(c.align_up(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn non_integral_period_rejected() {
        let _ = Clock::from_mhz(3_000); // 333.33 ps
    }
}
