//! Deterministic pseudo-random numbers for workload generation.
//!
//! The synthetic trace that substitutes for the paper's Cell H.264 decode
//! trace draws per-task execution and memory times from distributions fitted
//! to the published averages (11.8 µs execution, 7.5 µs memory access). To
//! make every figure bit-reproducible forever we implement a small
//! xoshiro256++ generator here instead of depending on an external RNG crate
//! whose stream might change between versions.
//!
//! Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators" (the public-domain xoshiro256++ algorithm).

/// xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator. Any seed (including 0) yields a good state via
    /// SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method for unbiased results.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + self.gen_f64() * (hi - lo)
    }

    /// Standard normal sample (Box–Muller; one value per call, the pair's
    /// second value is discarded to keep the state machine simple and the
    /// stream position predictable: exactly two `next_u64` per sample).
    pub fn gen_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (self.gen_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation, truncated
    /// to `[min, max]` by clamping. Used for per-task time jitter around the
    /// published trace averages.
    pub fn gen_normal_clamped(&mut self, mean: f64, sd: f64, min: f64, max: f64) -> f64 {
        debug_assert!(min <= max);
        (mean + sd * self.gen_normal()).clamp(min, max)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_xoshiro_vector() {
        // First output for the state produced by splitmix64-expanding seed 0
        // must be stable across builds (regression pin).
        let mut r = Rng::new(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(0);
        let v2: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(v, v2);
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_statistics_roughly_correct() {
        let mut r = Rng::new(1234);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let v = r.gen_normal_clamped(10.0, 100.0, 2.0, 12.0);
            assert!((2.0..=12.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }
}
