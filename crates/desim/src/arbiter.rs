//! Round-robin arbitration.
//!
//! The `Send TDs` and `Handle Finished` blocks of the Task Maestro "work in
//! a round-robin fashion": they continuously scan the request/notification
//! signals of the worker cores and serve the next active one. The paper
//! also uses round-robin task placement via the `Worker Cores IDs` list.
//! [`RoundRobinArbiter`] captures the scan: starting after the last grantee,
//! find the first index whose request line is active.

/// A round-robin scanner over `n` request lines.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index after which the next scan starts (last granted index).
    last: usize,
    grants: u64,
}

impl RoundRobinArbiter {
    /// An arbiter over `n` lines. The first scan starts at line 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one line");
        RoundRobinArbiter {
            n,
            last: n - 1, // so the first grant scan starts at 0
            grants: 0,
        }
    }

    /// Number of lines.
    #[inline]
    pub fn lines(&self) -> usize {
        self.n
    }

    /// Total grants issued.
    #[inline]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Scan the lines round-robin and grant the first one for which
    /// `active(i)` returns true. Returns the granted line, advancing the
    /// scan position, or `None` if no line is active.
    pub fn grant<F: FnMut(usize) -> bool>(&mut self, mut active: F) -> Option<usize> {
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if active(i) {
                self.last = i;
                self.grants += 1;
                return Some(i);
            }
        }
        None
    }

    /// Like [`grant`](Self::grant) but over an explicit slice of request
    /// flags.
    pub fn grant_flags(&mut self, flags: &[bool]) -> Option<usize> {
        debug_assert_eq!(flags.len(), self.n);
        self.grant(|i| flags[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_rotation_over_all_active() {
        let mut a = RoundRobinArbiter::new(4);
        let all = [true; 4];
        let seq: Vec<_> = (0..8).map(|_| a.grant_flags(&all).unwrap()).collect();
        assert_eq!(seq, [0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(a.grants(), 8);
    }

    #[test]
    fn skips_inactive_lines() {
        let mut a = RoundRobinArbiter::new(4);
        let flags = [false, true, false, true];
        assert_eq!(a.grant_flags(&flags), Some(1));
        assert_eq!(a.grant_flags(&flags), Some(3));
        assert_eq!(a.grant_flags(&flags), Some(1));
    }

    #[test]
    fn none_when_idle() {
        let mut a = RoundRobinArbiter::new(3);
        assert_eq!(a.grant_flags(&[false; 3]), None);
        assert_eq!(a.grants(), 0);
    }

    #[test]
    fn resumes_after_last_grantee() {
        let mut a = RoundRobinArbiter::new(5);
        assert_eq!(a.grant_flags(&[true, false, false, false, false]), Some(0));
        // Line 0 is still active but 2 is next in rotation order.
        assert_eq!(a.grant_flags(&[true, false, true, false, false]), Some(2));
        assert_eq!(a.grant_flags(&[true, false, true, false, false]), Some(0));
    }

    #[test]
    fn single_line() {
        let mut a = RoundRobinArbiter::new(1);
        assert_eq!(a.grant_flags(&[true]), Some(0));
        assert_eq!(a.grant_flags(&[true]), Some(0));
        assert_eq!(a.grant_flags(&[false]), None);
    }
}
