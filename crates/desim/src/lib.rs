//! # nexuspp-desim — discrete-event simulation kernel
//!
//! A small, deterministic discrete-event simulation (DES) kernel that plays
//! the role SystemC plays in the Nexus++ paper ("Hardware-Based Task
//! Dependency Resolution for the StarSs Programming Model", ICPPW 2012).
//!
//! The paper's "Task Machine" is not an RTL model: hardware blocks are
//! processes that *wait* for computed amounts of time and communicate through
//! FIFO lists and one-bit signals. This crate provides exactly the
//! primitives needed to express that style of model:
//!
//! * [`SimTime`] — picosecond-resolution simulation time (integer, no
//!   floating-point drift),
//! * [`Scheduler`] — a deterministic event queue (ties broken by insertion
//!   order),
//! * [`Fifo`] — bounded FIFO lists with occupancy statistics and
//!   backpressure helpers (the paper's `TDs Sizes`, `New Tasks`,
//!   `Global Ready Tasks`, … lists),
//! * [`RoundRobinArbiter`] — the scan order used by the `Send TDs` and
//!   `Handle Finished` blocks,
//! * [`SlotPool`] — a counting resource with FIFO admission, used for the
//!   32-bank off-chip memory contention model,
//! * [`Clock`] — clock-domain helpers (cores at 2 GHz, Nexus++ at 500 MHz),
//! * [`stats`] — counters, histograms and time-weighted statistics,
//! * [`rng`] — a tiny, self-contained xoshiro256++ PRNG plus the
//!   distributions the workload generators need, so simulations are
//!   bit-reproducible forever (no external RNG crate whose stream might
//!   change between versions).
//!
//! The kernel is intentionally *not* a framework: models own their state and
//! drive the scheduler from a plain `while let Some(..) = sched.pop()` loop.
//! This keeps the hot path free of dynamic dispatch and makes the whole
//! simulation a single-threaded, deterministic state machine.

pub mod arbiter;
pub mod clock;
pub mod fifo;
pub mod rng;
pub mod sched;
pub mod slots;
pub mod stats;
pub mod time;

pub use arbiter::RoundRobinArbiter;
pub use clock::Clock;
pub use fifo::Fifo;
pub use rng::Rng;
pub use sched::Scheduler;
pub use slots::{SlotGrant, SlotPool};
pub use time::SimTime;
