//! Deterministic event scheduler.
//!
//! A binary-heap event queue keyed by `(time, sequence)`. The sequence
//! number makes simultaneous events pop in insertion order, so a simulation
//! run is a pure function of its inputs — the determinism requirement the
//! paper's SystemC model gets from SystemC's fixed evaluation order.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Key {
    at: SimTime,
    seq: u64,
}

/// The event scheduler. `E` is the model's event type (typically a small
/// enum). The model drives the simulation with a `while let Some((t, ev)) =
/// sched.pop()` loop.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<(Key, EventSlot<E>)>>,
    processed: u64,
}

/// Wrapper that keeps `BinaryHeap` ordering independent of `E` (events are
/// never compared; the key decides).
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// A new scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            processed: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `ev` to fire `delay` after the current time.
    #[inline]
    pub fn schedule(&mut self, delay: SimTime, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Schedule `ev` at an absolute time `at` (must not be in the past).
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let key = Key { at, seq: self.seq };
        self.seq += 1;
        self.heap.push(Reverse((key, EventSlot(ev))));
    }

    /// Schedule `ev` to fire "now" (after all already-queued events at the
    /// current timestamp — used for poll-on-change activations).
    #[inline]
    pub fn schedule_now(&mut self, ev: E) {
        self.schedule_at(self.now, ev);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((key, EventSlot(ev))) = self.heap.pop()?;
        debug_assert!(key.at >= self.now);
        self.now = key.at;
        self.processed += 1;
        Some((key.at, ev))
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((k, _))| k.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(5), "c");
        s.schedule(SimTime::from_ns(1), "a");
        s.schedule(SimTime::from_ns(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_ns(5));
        assert_eq!(s.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule(SimTime::from_ns(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_now_runs_after_earlier_same_time_events() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_ns(2), 1);
        s.schedule_at(SimTime::from_ns(2), 2);
        let (_, first) = s.pop().unwrap();
        assert_eq!(first, 1);
        s.schedule_now(3);
        let rest: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, [2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(1), ());
        s.schedule(SimTime::from_ns(1), ());
        s.schedule(SimTime::from_ns(2), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = s.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn peek_time() {
        let mut s = Scheduler::new();
        assert_eq!(s.peek_time(), None);
        s.schedule(SimTime::from_ns(9), ());
        s.schedule(SimTime::from_ns(4), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_ns(4)));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn scheduling_into_the_past_panics_in_debug() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(10), ());
        s.pop();
        s.schedule_at(SimTime::from_ns(5), ());
    }
}
