//! Simulation statistics: counters, histograms, time-weighted values and
//! busy-time (utilization) trackers.
//!
//! The evaluation reports need more than makespans: per-block utilization
//! explains *which* pipeline stage bottlenecks the Maestro, occupancy
//! high-water marks justify the Table IV structure sizes, and chain-length
//! histograms reproduce the third series of Figure 6.

use crate::time::SimTime;

/// A simple named event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// Min/max/mean/total summary of a stream of `u64` samples.
#[derive(Debug, Clone)]
pub struct Summary {
    n: u64,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            n: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.n += 1;
        self.total += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.n > 0).then_some(self.max)
    }

    /// Mean of samples (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.total as f64 / self.n as f64)
    }
}

/// A power-of-two bucketed histogram of `u64` samples; bucket `i` counts
/// samples in `[2^(i-1)+1 ..= 2^i]` with bucket 0 counting zeros and ones.
/// Compact, allocation-free after construction, good enough for chain-length
/// and queue-depth distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    summary: Summary,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            summary: Summary::new(),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = if v <= 1 {
            0
        } else {
            64 - (v - 1).leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.summary.record(v);
    }

    /// The min/max/mean summary of everything recorded.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Iterate `(bucket_upper_bound, count)` over non-empty buckets.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i >= 64 { u64::MAX } else { 1u64 << i }, c))
    }
}

/// Tracks the fraction of simulated time a block was busy, and how often it
/// was stalled waiting for a full downstream FIFO.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    busy: SimTime,
    ops: u64,
    stalls: u64,
}

impl BusyTracker {
    /// A new idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operation that kept the block busy for `dur`.
    #[inline]
    pub fn record_busy(&mut self, dur: SimTime) {
        self.busy += dur;
        self.ops += 1;
    }

    /// Record a stall (block had work but could not proceed).
    #[inline]
    pub fn record_stall(&mut self) {
        self.stalls += 1;
    }

    /// Total busy time.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Operations completed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Stall events.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Busy time as a fraction of `total` elapsed time.
    pub fn utilization(&self, total: SimTime) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            self.busy / total
        }
    }
}

/// High-water-mark tracker for an occupancy-style value.
#[derive(Debug, Clone, Default)]
pub struct HighWater {
    current: usize,
    peak: usize,
}

impl HighWater {
    /// A zeroed tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increase occupancy by `n`.
    #[inline]
    pub fn add(&mut self, n: usize) {
        self.current += n;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Decrease occupancy by `n`.
    #[inline]
    pub fn sub(&mut self, n: usize) {
        debug_assert!(self.current >= n, "occupancy underflow");
        self.current -= n;
    }

    /// Current occupancy.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak occupancy.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_empty_and_filled() {
        let mut s = Summary::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), None);
        for v in [3, 1, 8] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(8));
        assert_eq!(s.total(), 12);
        assert!((s.mean().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1000] {
            h.record(v);
        }
        let buckets: Vec<_> = h.iter_buckets().collect();
        // 0,1 → bucket 1; 2 → 2; 3,4 → 4; 5,8 → 8; 9 → 16; 1000 → 1024
        assert_eq!(
            buckets,
            vec![(1, 2), (2, 1), (4, 2), (8, 2), (16, 1), (1024, 1)]
        );
        assert_eq!(h.summary().max(), Some(1000));
    }

    #[test]
    fn busy_tracker_utilization() {
        let mut b = BusyTracker::new();
        b.record_busy(SimTime::from_ns(30));
        b.record_busy(SimTime::from_ns(20));
        b.record_stall();
        assert_eq!(b.ops(), 2);
        assert_eq!(b.stalls(), 1);
        assert!((b.utilization(SimTime::from_ns(100)) - 0.5).abs() < 1e-12);
        assert_eq!(b.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn high_water() {
        let mut hw = HighWater::new();
        hw.add(3);
        hw.add(2);
        hw.sub(4);
        hw.add(1);
        assert_eq!(hw.current(), 2);
        assert_eq!(hw.peak(), 5);
    }
}
