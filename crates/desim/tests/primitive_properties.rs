//! Property tests of the simulation primitives: scheduler ordering laws,
//! FIFO conservation, arbiter fairness and slot-pool conservation under
//! arbitrary operation sequences.

use nexuspp_desim::{Fifo, RoundRobinArbiter, Scheduler, SimTime, SlotGrant, SlotPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events pop in nondecreasing time order, with ties broken by
    /// insertion order, and nothing is lost or duplicated.
    #[test]
    fn scheduler_total_order(delays in prop::collection::vec(0u64..1000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &d) in delays.iter().enumerate() {
            s.schedule(SimTime::from_ns(d), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, id)) = s.pop() {
            prop_assert!(t >= last);
            if t == last {
                if let Some(prev) = last_seq_at_time {
                    // Same timestamp ⇒ insertion order (ids ascending,
                    // since all events were scheduled from time zero).
                    prop_assert!(id > prev, "tie-break violated: {prev} then {id}");
                }
            } else {
                last_seq_at_time = None;
            }
            if delays[id] == last.ps() / 1000 || t == last {
                last_seq_at_time = Some(id);
            }
            last = t;
            popped.push(id);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..delays.len()).collect::<Vec<_>>());
    }

    /// FIFO preserves order and never exceeds capacity; rejected items are
    /// returned intact.
    #[test]
    fn fifo_conservation(
        cap in 1usize..16,
        ops in prop::collection::vec(prop::bool::ANY, 1..200),
    ) {
        let mut f = Fifo::new("prop", cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for push in ops {
            if push {
                match f.push(next) {
                    Ok(()) => {
                        prop_assert!(model.len() < cap);
                        model.push_back(next);
                    }
                    Err(rejected) => {
                        prop_assert_eq!(rejected.0, next);
                        prop_assert_eq!(model.len(), cap);
                    }
                }
                next += 1;
            } else {
                prop_assert_eq!(f.pop(), model.pop_front());
            }
            prop_assert_eq!(f.len(), model.len());
            prop_assert!(f.len() <= cap);
        }
    }

    /// The arbiter grants every persistently-active line within one full
    /// rotation (no starvation) and never grants inactive lines.
    #[test]
    fn arbiter_no_starvation(
        n in 1usize..12,
        active_bits in prop::collection::vec(prop::bool::ANY, 1..12),
    ) {
        let flags: Vec<bool> = (0..n).map(|i| *active_bits.get(i).unwrap_or(&false)).collect();
        let mut arb = RoundRobinArbiter::new(n);
        let active_count = flags.iter().filter(|&&b| b).count();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            match arb.grant_flags(&flags) {
                Some(i) => {
                    prop_assert!(flags[i], "granted inactive line {i}");
                    seen.insert(i);
                }
                None => prop_assert_eq!(active_count, 0),
            }
        }
        prop_assert_eq!(seen.len(), active_count, "every active line within one rotation");
    }

    /// Slot pool: grants + queue handoffs conserve slots; waiters release
    /// in FIFO order.
    #[test]
    fn slot_pool_conservation(
        slots in 1usize..8,
        ops in prop::collection::vec(prop::bool::ANY, 1..200),
    ) {
        let mut p = SlotPool::new("prop", slots);
        let mut held = 0usize; // grants outstanding (incl. handoffs)
        let mut queued: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for acquire in ops {
            if acquire {
                match p.acquire(next) {
                    SlotGrant::Granted => {
                        prop_assert!(held < slots);
                        held += 1;
                    }
                    SlotGrant::Queued => {
                        prop_assert_eq!(held, slots);
                        queued.push_back(next);
                    }
                }
                next += 1;
            } else if held > 0 {
                match p.release() {
                    Some(w) => {
                        prop_assert_eq!(Some(w), queued.pop_front());
                        // Slot handed over: held count unchanged.
                    }
                    None => {
                        prop_assert!(queued.is_empty());
                        held -= 1;
                    }
                }
            }
            prop_assert_eq!(p.in_use(), held);
            prop_assert_eq!(p.waiting(), queued.len());
        }
    }
}
