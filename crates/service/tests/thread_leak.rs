//! Thread-leak check for the full service lifecycle, in its own test
//! binary so no sibling test's threads perturb the process count.

use nexuspp_core::testsupport::wait_until;
use nexuspp_core::TaskBuilder;
use nexuspp_service::{ResolverService, ServiceConfig, ServiceTask, TenantId};
use std::time::Duration;

/// Live threads in this process (Linux: one entry per task).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(1)
}

#[test]
fn service_lifecycle_leaks_no_threads() {
    let baseline = thread_count();
    for round in 0..3 {
        let svc = ResolverService::start(
            ServiceConfig::new(4, 4)
                .tenant(TenantId(1), 8)
                .tenant(TenantId(2), 8),
        );
        for t in 1..=2u32 {
            let h = svc.handle(TenantId(t)).unwrap();
            for i in 0..100u64 {
                let sub = TaskBuilder::new(1)
                    .tag(i)
                    .read_writes(((t as u64) << 32) | (i % 4), 8)
                    .build();
                h.submit_blocking(ServiceTask::new(sub, || {}))
                    .expect("accepted");
            }
        }
        let report = svc.shutdown();
        assert!(report.graceful, "round {round}");
        assert_eq!(report.runtime.executed, 200, "round {round}");
        drop(svc);
        // Worker + ingress threads must all be joined; give the OS a
        // moment to reap, then insist on the baseline.
        wait_until(
            Duration::from_secs(10),
            &format!("round {round}: thread count back to baseline {baseline}"),
            || thread_count() <= baseline,
        );
    }
}
