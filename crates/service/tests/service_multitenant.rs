//! Multi-tenant service behavior: admission isolation, client-visible
//! backpressure, and both shutdown phases' exactly-once accounting.

use nexuspp_core::testsupport::with_watchdog;
use nexuspp_core::TaskBuilder;
use nexuspp_service::{IngressError, ResolverService, ServiceConfig, ServiceTask, TenantId};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tenant-scoped address: tenants touch disjoint address spaces, so
/// cross-tenant tasks are independent by construction.
fn addr(tenant: u32, slot: u64) -> u64 {
    ((tenant as u64) << 32) | slot
}

/// An inout task on the tenant's `slot` address running `job`.
fn task(tenant: u32, slot: u64, tag: u64, job: impl FnOnce() + Send + 'static) -> ServiceTask {
    ServiceTask::new(
        TaskBuilder::new(1)
            .tag(tag)
            .read_writes(addr(tenant, slot), 8)
            .build(),
        job,
    )
}

#[test]
fn saturating_tenant_cannot_block_another() {
    with_watchdog(60, "tenant isolation", || {
        // Tenant 1's chain sits behind a gated head and its budget is
        // tiny; tenant 2 streams freely. 4 workers so the single gated
        // body cannot starve execution.
        let svc = ResolverService::start(
            ServiceConfig::new(4, 4)
                .tenant(TenantId(1), 4)
                .tenant(TenantId(2), 64)
                .lane_capacity(8),
        );
        let h1 = svc.handle(TenantId(1)).unwrap();
        let h2 = svc.handle(TenantId(2)).unwrap();
        let gate = Arc::new(AtomicBool::new(false));
        let t1_ran = Arc::new(AtomicU32::new(0));

        // Head: occupies one budget slot and blocks the whole chain.
        {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&t1_ran);
            h1.try_submit(task(1, 0, 0, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("head accepted");
        }
        // Saturate tenant 1: chain tasks pile into budget, then the
        // hold slot, then the lane, then client-visible backpressure.
        let mut accepted1 = 1u64;
        let mut backpressured = 0u64;
        for i in 1..64u64 {
            let ran = Arc::clone(&t1_ran);
            match h1.try_submit(task(1, 0, i, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })) {
                Ok(()) => accepted1 += 1,
                Err(e) => {
                    assert!(e.is_retryable(), "only backpressure expected");
                    backpressured += 1;
                }
            }
            std::thread::yield_now();
        }
        assert!(
            backpressured > 0,
            "tenant 1 never saw backpressure (accepted {accepted1})"
        );

        // Tenant 2 must stream through undisturbed *while tenant 1 is
        // wedged*: every submit lands (bounded retries only against
        // transient lane fill) and completes.
        let t2_ran = Arc::new(AtomicU32::new(0));
        for i in 0..200u64 {
            let ran = Arc::clone(&t2_ran);
            h2.submit_blocking(task(2, i % 8, i, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("tenant 2 must not be refused");
        }
        // Poll the executed *counter* (bumped after the body returns),
        // so the later metric assertions are race-free.
        let deadline = Instant::now() + Duration::from_secs(30);
        while svc.metrics_snapshot().get("tenant2", "executed") != Some(200) {
            assert!(
                Instant::now() < deadline,
                "tenant 2 starved behind tenant 1 ({} of 200 ran)",
                t2_ran.load(Ordering::SeqCst)
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Tenant 1 is still wedged behind its gate the whole time.
        assert_eq!(t1_ran.load(Ordering::SeqCst), 0);

        // Budgets were actually the limiting factor, and enforced.
        let snap = svc.metrics_snapshot();
        assert!(snap.get("tenant1", "budget_denied").unwrap() > 0);
        assert!(snap.get("tenant1", "in_flight_peak").unwrap() <= 4);
        assert_eq!(snap.get("tenant2", "executed"), Some(200));

        // Release and drain: every accepted tenant-1 task executes.
        gate.store(true, Ordering::SeqCst);
        let report = svc.shutdown();
        assert!(report.graceful);
        assert_eq!(report.dropped_ingress, 0);
        assert_eq!(t1_ran.load(Ordering::SeqCst) as u64, accepted1);
        assert_eq!(t2_ran.load(Ordering::SeqCst), 200);
        assert_eq!(
            report.runtime.executed,
            accepted1 + 200,
            "every accepted task executed exactly once"
        );
        assert_eq!(report.runtime.cancelled, 0);
    });
}

#[test]
fn backpressure_is_retryable_and_clears() {
    with_watchdog(60, "backpressure retry", || {
        let svc = ResolverService::start(
            ServiceConfig::new(2, 2)
                .tenant(TenantId(1), 1)
                .lane_capacity(2),
        );
        let h = svc.handle(TenantId(1)).unwrap();
        let gate = Arc::new(AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            h.try_submit(task(1, 0, 0, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }))
            .expect("head accepted");
        }
        // Budget 1 is held by the head; fill the hold slot + lane until
        // the client sees Backpressure, holding the task back intact.
        let mut pending = Vec::new();
        let rejected = loop {
            match h.try_submit(task(1, 0, 99, || {})) {
                Ok(()) => pending.push(()),
                Err(e) => break e,
            }
            assert!(pending.len() < 64, "lane never filled");
        };
        assert!(rejected.is_retryable());
        assert_eq!(rejected.into_task().tag(), 99, "task handed back intact");

        // Clear the wedge; the freed budget drains the lane and the
        // retry then succeeds.
        gate.store(true, Ordering::SeqCst);
        h.submit_blocking(task(1, 0, 100, || {}))
            .expect("retry after backpressure must land");
        let report = svc.shutdown();
        assert!(report.graceful);
        assert_eq!(
            report.runtime.executed,
            2 + pending.len() as u64,
            "head + queued + retried all ran"
        );
    });
}

#[test]
fn graceful_shutdown_under_load_executes_accepted_work_exactly_once() {
    with_watchdog(60, "graceful under load", || {
        const TENANTS: u32 = 4;
        const PER_TENANT: u64 = 300;
        let mut cfg = ServiceConfig::new(4, 4).lane_capacity(32);
        for t in 1..=TENANTS {
            cfg = cfg.tenant(TenantId(t), 16);
        }
        let svc = Arc::new(ResolverService::start(cfg));
        // One execution counter per (tenant, task): exactly-once is a
        // per-cell assertion, not an aggregate.
        let ran: Arc<Vec<AtomicU32>> = Arc::new(
            (0..TENANTS as u64 * PER_TENANT)
                .map(|_| AtomicU32::new(0))
                .collect(),
        );
        let clients: Vec<_> = (1..=TENANTS)
            .map(|t| {
                let h = svc.handle(TenantId(t)).unwrap();
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || {
                    let mut accepted = 0u64;
                    for i in 0..PER_TENANT {
                        let cell = (t - 1) as u64 * PER_TENANT + i;
                        let ran = Arc::clone(&ran);
                        // Chains within a tenant (slot reuse) exercise
                        // parked wakes under the drain.
                        let job = move || {
                            ran[cell as usize].fetch_add(1, Ordering::SeqCst);
                        };
                        if h.submit_blocking(task(t, i % 4, cell, job)).is_ok() {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(accepted, TENANTS as u64 * PER_TENANT);
        let report = svc.shutdown();
        assert!(report.graceful);
        assert_eq!(report.dropped_ingress, 0);
        assert_eq!(report.runtime.executed, accepted);
        assert_eq!(report.runtime.cancelled, 0);
        for (cell, c) in ran.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "task {cell} must run exactly once"
            );
        }
        // Shutdown settled every budget lane.
        for (t, counts) in &report.tenants {
            assert_eq!(counts.in_flight, 0, "{t} still holds budget");
        }
        // Idempotent: a second shutdown reports the same totals.
        let again = svc.shutdown();
        assert_eq!(again.runtime.executed, report.runtime.executed);
    });
}

#[test]
fn hard_deadline_shutdown_accounts_for_every_accepted_task() {
    with_watchdog(60, "hard deadline accounting", || {
        let svc = ResolverService::start(
            ServiceConfig::new(1, 2)
                .tenant(TenantId(1), 4)
                .lane_capacity(64),
        );
        let h = svc.handle(TenantId(1)).unwrap();
        let gate = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicU32::new(0));
        {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            h.try_submit(task(1, 0, 0, move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("head accepted");
        }
        // A chain behind the head: some will be admitted (filling the
        // budget), the rest wedge in the lane, un-admittable.
        let mut accepted = 1u64;
        for i in 1..40u64 {
            let ran = Arc::clone(&ran);
            if h.try_submit(task(1, 0, i, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .is_ok()
            {
                accepted += 1;
            }
        }
        // Release the running body after the deadline has fired.
        let release = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                gate.store(true, Ordering::SeqCst);
            })
        };
        let report = svc.shutdown_deadline(Duration::from_millis(40));
        release.join().unwrap();
        assert!(!report.graceful, "deadline should have fired");
        // Exactly-once ledger: every accepted task is executed,
        // cancelled, or dropped at ingress — and nothing is counted
        // twice.
        assert_eq!(
            report.runtime.executed + report.runtime.cancelled + report.dropped_ingress,
            accepted,
            "{report:?}"
        );
        assert!(report.runtime.executed >= 1, "the gated head ran");
        assert!(report.dropped_ingress > 0, "the wedged lane was dropped");
        assert_eq!(report.runtime.executed, ran.load(Ordering::SeqCst) as u64);
        let snap = svc.metrics_snapshot();
        assert_eq!(
            snap.get("tenant1", "admitted").unwrap(),
            report.runtime.executed + report.runtime.cancelled
        );
        assert_eq!(snap.get("tenant1", "dropped"), Some(report.dropped_ingress));
        // Budget fully settled even on the abort path.
        assert_eq!(report.tenants[0].1.in_flight, 0);
    });
}

#[test]
fn closed_ingress_refuses_with_non_retryable_error() {
    with_watchdog(60, "closed ingress", || {
        let svc = ResolverService::start(ServiceConfig::new(1, 2).tenant(TenantId(1), 8));
        let h = svc.handle(TenantId(1)).unwrap();
        h.try_submit(task(1, 0, 0, || {})).expect("accepted");
        let report = svc.shutdown();
        assert!(report.graceful);
        match h.try_submit(task(1, 0, 1, || {})) {
            Err(IngressError::Closed(t)) => assert_eq!(t.tag(), 1),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert!(h.submit_blocking(task(1, 0, 2, || {})).is_err());
    });
}

#[test]
fn collector_samples_per_tenant_groups_live() {
    with_watchdog(60, "live tenant metrics", || {
        let collector = nexuspp_obs::Collector::spawn(
            Arc::new(nexuspp_obs::Recorder::with_capacity(4, 1 << 14)),
            nexuspp_obs::CollectorConfig {
                interval: Duration::from_millis(1),
                ..nexuspp_obs::CollectorConfig::default()
            },
        );
        let svc = ResolverService::with_observer(
            ServiceConfig::new(2, 2)
                .tenant(TenantId(1), 8)
                .tenant(TenantId(2), 8),
            &collector,
        );
        let h = svc.handle(TenantId(1)).unwrap();
        for i in 0..50u64 {
            h.submit_blocking(task(1, i % 4, i, || {})).unwrap();
        }
        // The sampler must observe tenant 1's counters move *while the
        // service is live* — that is the whole point of the wiring.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let seen = collector
                .with_sampler(|s| {
                    s.latest()
                        .and_then(|smp| smp.snap.get("tenant1", "executed"))
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            if seen == 50 {
                break;
            }
            assert!(Instant::now() < deadline, "sampler never saw tenant1");
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = svc.shutdown();
        assert!(report.graceful);
        let obs_report = collector.finish();
        let sampler = obs_report.sampler.expect("registry attached");
        let last = sampler.latest().unwrap();
        assert_eq!(last.snap.get("tenant1", "executed"), Some(50));
        assert_eq!(last.snap.get("tenant2", "executed"), Some(0));
        // The runtime groups ride along in the same registry, and the
        // event stream saw the lifecycle.
        assert_eq!(last.snap.get("tasks", "executed"), Some(50));
        assert!(obs_report.tracker.snapshot().tasks_seen >= 50);
    });
}

#[test]
fn unknown_tenant_has_no_handle() {
    let svc = ResolverService::start(ServiceConfig::new(1, 2).tenant(TenantId(1), 8));
    assert!(svc.handle(TenantId(9)).is_none());
    assert!(svc.handle(TenantId(1)).is_some());
}
