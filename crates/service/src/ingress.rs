//! The admission sweep: one thread, all tenant lanes, program order
//! per tenant.
//!
//! The ingress thread is the only caller of the runtime's non-blocking
//! submission API, which keeps the two backpressure layers composable
//! without ever parking a client:
//!
//! 1. **Budget** — before a task may occupy runtime state it is charged
//!    against its tenant's [`TenantBudgets`] lane. A denial leaves the
//!    task in a per-lane *hold slot* (program order is part of the
//!    dependence semantics, so a lane never reorders); the charge is
//!    retried once retirements credit the lane back.
//! 2. **Capacity** — the runtime's retryable
//!    [`SubmitError`](nexuspp_core::SubmitError) hands the lowered task
//!    back as a [`PendingSpawn`]; it parks in the lane's *retry slot*
//!    until a finish frees shard slots.
//!
//! Both slots block only their own lane; the sweep moves on to the next
//! tenant either way, which is exactly the isolation property the
//! multi-tenant tests assert. Every admission wraps the client job in a
//! [`CreditGuard`] whose `Drop` credits the budget and classifies the
//! outcome (executed vs cancelled) — dropping a job unexecuted on the
//! abort path settles the ledger exactly like running it.

use crate::metrics::TenantMetrics;
use crate::task::{IngressSignal, ServiceTask};
use crossbeam::channel::Receiver;
use nexuspp_core::TenantId;
use nexuspp_runtime::{PendingSpawn, ShardedRuntime};
use nexuspp_shard::TenantBudgets;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Settles one admitted task's ledger entry from `Drop`, so the
/// accounting holds on every exit path: normal completion, a panicking
/// body, or a cancel-finish that drops the job unexecuted.
struct CreditGuard {
    budgets: Arc<TenantBudgets>,
    tenant: TenantId,
    metrics: Arc<TenantMetrics>,
    signal: Arc<IngressSignal>,
    ran: bool,
}

impl Drop for CreditGuard {
    fn drop(&mut self) {
        if self.ran {
            self.metrics.executed.inc();
        } else {
            self.metrics.cancelled.inc();
        }
        self.budgets.credit(self.tenant);
        // A retirement frees budget and (on bounded runtimes) shard
        // capacity — exactly what a parked hold/retry slot waits for.
        self.signal.notify();
    }
}

/// One tenant's server-side lane state (owned by the ingress thread).
pub(crate) struct Lane {
    pub(crate) tenant: TenantId,
    pub(crate) rx: Receiver<ServiceTask>,
    /// Popped but budget-denied: admitted before anything newer.
    pub(crate) hold: Option<ServiceTask>,
    /// Budget-charged but capacity-rejected: resubmitted before the
    /// hold slot or anything newer.
    pub(crate) retry: Option<PendingSpawn>,
    pub(crate) metrics: Arc<TenantMetrics>,
}

impl Lane {
    fn has_backlog(&self) -> bool {
        self.retry.is_some() || self.hold.is_some() || !self.rx.is_empty()
    }
}

/// State shared between the service front and the ingress thread.
pub(crate) struct IngressShared {
    pub(crate) rt: Arc<ShardedRuntime>,
    pub(crate) budgets: Arc<TenantBudgets>,
    pub(crate) signal: Arc<IngressSignal>,
    /// Raised (after sealing the gate) to ask the sweep to drain out.
    pub(crate) stop: AtomicBool,
    /// Hard shutdown deadline; past it a draining sweep discards its
    /// backlog instead of admitting it.
    pub(crate) deadline: Mutex<Option<Instant>>,
}

/// What the ingress thread hands back when it exits.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct IngressStats {
    /// Accepted tasks discarded un-admitted by the hard-deadline path.
    pub(crate) dropped: u64,
    /// Total sweep iterations (coarse liveness signal for tests).
    pub(crate) sweeps: u64,
}

/// The sweep loop. Exits when `stop` is raised and every lane is fully
/// drained — or immediately past the hard deadline, discarding backlog.
pub(crate) fn run(
    shared: &Arc<IngressShared>,
    mut lanes: Vec<Lane>,
    sweep_batch: usize,
) -> IngressStats {
    let mut stats = IngressStats::default();
    loop {
        stats.sweeps += 1;
        let stop = shared.stop.load(Ordering::SeqCst);
        let past_deadline = stop && shared.deadline.lock().is_some_and(|d| Instant::now() >= d);
        if past_deadline {
            for lane in &mut lanes {
                if let Some(t) = lane.hold.take() {
                    lane.metrics.dropped.inc();
                    stats.dropped += 1;
                    drop(t);
                }
                while let Ok(t) = lane.rx.try_recv() {
                    lane.metrics.dropped.inc();
                    stats.dropped += 1;
                    drop(t);
                }
                // The retry slot was budget-charged already; dropping
                // it settles through its CreditGuard (as cancelled).
                lane.retry.take();
            }
            return stats;
        }

        let mut progress = false;
        for lane in &mut lanes {
            // Order within a lane is dependence order: the retry slot
            // precedes the hold slot precedes the queue, and a parked
            // slot parks the whole lane (only that lane).
            if let Some(p) = lane.retry.take() {
                match shared.rt.try_respawn(p) {
                    Ok(()) => {
                        lane.metrics.admitted.inc();
                        progress = true;
                    }
                    Err((_e, p)) => {
                        lane.retry = Some(p);
                        continue;
                    }
                }
            }
            let mut quota = sweep_batch;
            while quota > 0 {
                let task = match lane.hold.take() {
                    Some(t) => t,
                    None => match lane.rx.try_recv() {
                        Ok(t) => t,
                        Err(_) => break,
                    },
                };
                if shared.budgets.charge(lane.tenant).is_err() {
                    lane.metrics.budget_denied.inc();
                    lane.hold = Some(task);
                    break;
                }
                let guard = CreditGuard {
                    budgets: Arc::clone(&shared.budgets),
                    tenant: lane.tenant,
                    metrics: Arc::clone(&lane.metrics),
                    signal: Arc::clone(&shared.signal),
                    ran: false,
                };
                let ServiceTask { sub, job } = task;
                let wrapped = move || {
                    let mut guard = guard;
                    guard.ran = true;
                    job();
                };
                match shared.rt.try_spawn_lowered(sub, wrapped) {
                    Ok(()) => {
                        lane.metrics.admitted.inc();
                        progress = true;
                        quota -= 1;
                    }
                    Err((e, p)) if e.is_retryable() => {
                        lane.metrics.capacity_retries.inc();
                        lane.retry = Some(p);
                        break;
                    }
                    Err((_e, p)) => {
                        // Non-retryable (invalid submission): discard;
                        // the guard settles it as cancelled.
                        drop(p);
                        progress = true;
                        quota -= 1;
                    }
                }
            }
        }

        if stop && lanes.iter().all(|l| !l.has_backlog()) {
            return stats;
        }
        if !progress {
            shared.signal.wait(Duration::from_millis(1));
        }
    }
}
