//! The [`ResolverService`] front: construction, handle vending,
//! two-phase shutdown.

use crate::config::ServiceConfig;
use crate::ingress::{self, IngressShared, IngressStats, Lane};
use crate::metrics::TenantMetrics;
use crate::task::{IngressGate, IngressSignal, SubmissionHandle};
use nexuspp_core::TenantId;
use nexuspp_obs::{Collector, MetricsRegistry, MetricsSnapshot};
use nexuspp_runtime::{ShardedRuntime, ShutdownReport};
use nexuspp_shard::{TenantBudgets, TenantCounts};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What [`ResolverService::shutdown`] /
/// [`shutdown_deadline`](ResolverService::shutdown_deadline) hands
/// back. Every task a client got `Ok` for is accounted exactly once:
/// `runtime.executed` (body ran), `runtime.cancelled` (admitted, then
/// cancel-finished by the abort path), or `dropped_ingress` (accepted
/// into a lane, discarded un-admitted by the hard deadline).
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// `true` iff the drain stayed graceful end to end: no ingress
    /// drops and a graceful runtime quiesce.
    pub graceful: bool,
    /// The wrapped runtime's own shutdown accounting.
    pub runtime: ShutdownReport,
    /// Accepted tasks discarded before admission (hard deadline only).
    pub dropped_ingress: u64,
    /// Final per-tenant budget ledgers, sorted by tenant.
    pub tenants: Vec<(TenantId, TenantCounts)>,
}

/// A persistent, multi-tenant resolver: the sharded runtime behind a
/// streaming ingress. See the crate docs for the architecture.
pub struct ResolverService {
    rt: Arc<ShardedRuntime>,
    registry: Arc<MetricsRegistry>,
    shared: Arc<IngressShared>,
    gate: Arc<IngressGate>,
    handles: HashMap<TenantId, SubmissionHandle>,
    ingress: Mutex<Option<JoinHandle<IngressStats>>>,
    /// Stats captured by whichever call actually performed shutdown.
    finished: Mutex<Option<IngressStats>>,
}

impl ResolverService {
    /// Start a service (runtime workers spawned, ingress thread
    /// running, handles ready to vend).
    pub fn start(cfg: ServiceConfig) -> ResolverService {
        ResolverService::build(cfg, None)
    }

    /// As [`start`](Self::start), wired into an observability
    /// [`Collector`]: the runtime emits lifecycle events into it and
    /// the service's full registry (runtime groups + one group per
    /// tenant) replaces the collector's sampled registry.
    pub fn with_observer(cfg: ServiceConfig, collector: &Collector) -> ResolverService {
        ResolverService::build(cfg, Some(collector))
    }

    fn build(cfg: ServiceConfig, collector: Option<&Collector>) -> ResolverService {
        let rt = Arc::new(match collector {
            Some(c) => ShardedRuntime::with_observer(
                cfg.workers,
                cfg.shards,
                cfg.scheduler,
                cfg.capacity,
                cfg.wake_mode,
                c,
            ),
            None => ShardedRuntime::with_options(
                cfg.workers,
                cfg.shards,
                cfg.scheduler,
                cfg.capacity,
                cfg.wake_mode,
            ),
        });
        let registry = Arc::new(rt.metrics());
        let budgets = Arc::new(TenantBudgets::new(cfg.tenants.iter().copied()));
        let signal = Arc::new(IngressSignal::new());
        let gate = Arc::new(IngressGate::new());
        let mut lanes = Vec::new();
        let mut handles = HashMap::new();
        for (tenant, _budget) in cfg.tenants() {
            if handles.contains_key(&tenant) {
                continue; // duplicate registration: first entry wins
            }
            let (tx, rx) = crossbeam::channel::bounded(cfg.lane_capacity);
            let metrics = Arc::new(TenantMetrics::new());
            metrics.register_in(&registry, tenant, &budgets);
            lanes.push(Lane {
                tenant,
                rx,
                hold: None,
                retry: None,
                metrics: Arc::clone(&metrics),
            });
            handles.insert(
                tenant,
                SubmissionHandle {
                    tenant,
                    tx,
                    gate: Arc::clone(&gate),
                    signal: Arc::clone(&signal),
                    metrics,
                },
            );
        }
        if let Some(c) = collector {
            c.attach_registry(Arc::clone(&registry));
        }
        let shared = Arc::new(IngressShared {
            rt: Arc::clone(&rt),
            budgets,
            signal,
            stop: AtomicBool::new(false),
            deadline: Mutex::new(None),
        });
        let sweep_batch = cfg.sweep_batch;
        let thread_shared = Arc::clone(&shared);
        let ingress = std::thread::Builder::new()
            .name("nexuspp-ingress".into())
            .spawn(move || ingress::run(&thread_shared, lanes, sweep_batch))
            .expect("failed to spawn ingress thread");
        ResolverService {
            rt,
            registry,
            shared,
            gate,
            handles,
            ingress: Mutex::new(Some(ingress)),
            finished: Mutex::new(None),
        }
    }

    /// The ingress endpoint for `tenant` (registered at construction).
    /// Clone-and-move into as many client threads as needed.
    pub fn handle(&self, tenant: TenantId) -> Option<SubmissionHandle> {
        self.handles.get(&tenant).cloned()
    }

    /// The wrapped runtime (read-side introspection; submitting around
    /// the ingress defeats the tenant accounting).
    pub fn runtime(&self) -> &Arc<ShardedRuntime> {
        &self.rt
    }

    /// The service's metrics registry: the runtime's groups plus one
    /// live group per tenant.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Convenience: snapshot the full registry now.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Per-tenant budget ledgers, sorted by tenant.
    pub fn tenant_counts(&self) -> Vec<(TenantId, TenantCounts)> {
        self.shared.budgets.all_counts()
    }

    /// Graceful two-phase shutdown: seal ingress (new `try_submit`s
    /// refuse with `Closed`), drain every lane through admission, then
    /// quiesce the runtime and join its workers. Blocks until done;
    /// every accepted task has executed when it returns.
    pub fn shutdown(&self) -> ServiceReport {
        self.shutdown_with(None)
    }

    /// Shutdown with a hard deadline across both phases. Past the
    /// deadline, un-admitted ingress is discarded (counted in
    /// [`ServiceReport::dropped_ingress`] and the per-tenant `dropped`
    /// counters) and the runtime cancel-finishes queued tasks; bodies
    /// already running are never interrupted.
    pub fn shutdown_deadline(&self, deadline: Duration) -> ServiceReport {
        self.shutdown_with(Some(deadline))
    }

    fn shutdown_with(&self, deadline: Option<Duration>) -> ServiceReport {
        let start = Instant::now();
        if let Some(d) = deadline {
            *self.shared.deadline.lock() = Some(start + d);
        }
        // Phase 1: seal + drain. After seal() returns, every send a
        // client got Ok for is visible to the ingress drain.
        self.gate.seal();
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.signal.notify();
        let stats = {
            let joined = self.ingress.lock().take().and_then(|h| h.join().ok());
            let mut finished = self.finished.lock();
            if let Some(s) = joined {
                *finished = Some(s);
            }
            finished.unwrap_or_default()
        };
        // Phase 2: quiesce the runtime within whatever deadline is
        // left (the drain above consumed part of it).
        let runtime = match deadline {
            None => self.rt.shutdown(),
            Some(d) => self.rt.shutdown_deadline(d.saturating_sub(start.elapsed())),
        };
        ServiceReport {
            graceful: runtime.graceful && stats.dropped == 0,
            runtime,
            dropped_ingress: stats.dropped,
            tenants: self.shared.budgets.all_counts(),
        }
    }
}

impl Drop for ResolverService {
    fn drop(&mut self) {
        // Equivalent to an explicit graceful shutdown; a no-op beyond
        // the runtime's own Drop if one already ran.
        if self.ingress.lock().is_some() {
            let _ = self.shutdown();
        }
    }
}
