//! # nexuspp-service — the resolver as a long-running service
//!
//! Everything below this crate treats the Nexus++ resolver as a
//! library: one program builds a runtime, submits its graph, and tears
//! the runtime down. The paper's hardware, though, is a *shared
//! facility* — one task manager serving every core that submits to it.
//! This crate is the software analogue at the process level: a
//! persistent [`ResolverService`] wrapping an
//! `Arc<`[`ShardedRuntime`](nexuspp_runtime::ShardedRuntime)`>` that
//! accepts **streaming submissions from many concurrent clients**,
//! meters them per tenant, and shuts down without losing accepted work.
//!
//! The moving parts:
//!
//! * [`SubmissionHandle`] — a tenant's cheaply-clonable ingress
//!   endpoint: a bounded channel into the service. A full lane surfaces
//!   as a **retryable** [`IngressError::Backpressure`] carrying the
//!   task back to the caller; clients are never parked.
//! * Admission — one ingress thread sweeps the tenant lanes round-robin
//!   and admits in program order per tenant, charging each task against
//!   the tenant's [`TenantBudgets`](nexuspp_shard::TenantBudgets) lane
//!   before it may occupy runtime state, and absorbing the runtime's
//!   retryable [`SubmitError`](nexuspp_core::SubmitError) capacity
//!   rejections into a per-lane retry slot. A saturating tenant
//!   therefore stalls *its own lane only*: its queue fills, its clients
//!   see backpressure, and every other lane keeps flowing.
//! * Metrics — a per-tenant
//!   [`CounterGroup`](nexuspp_obs::CounterGroup) (submitted,
//!   backpressured, admitted, executed, …) merged with the live budget
//!   gauges into the service's
//!   [`MetricsRegistry`](nexuspp_obs::MetricsRegistry), sampled by the
//!   [`Collector`](nexuspp_obs::Collector) when the service is started
//!   with [`ResolverService::with_observer`].
//! * Shutdown — two-phase: [`ResolverService::shutdown`] first seals
//!   ingress (a write-lock barrier guarantees no in-flight
//!   `try_submit` races past the closed flag), drains every lane, then
//!   quiesces the runtime and joins its workers. The
//!   [`shutdown_deadline`](ResolverService::shutdown_deadline) form
//!   adds the hard-abort path: past the deadline, still-queued ingress
//!   is dropped (counted) and the runtime cancel-finishes queued tasks
//!   via [`shutdown_deadline`](nexuspp_runtime::ShardedRuntime::shutdown_deadline).
//!   Either way the [`ServiceReport`] accounts for every accepted task
//!   exactly once: executed, cancelled, or dropped-at-ingress.

#![deny(missing_docs)]

mod config;
mod ingress;
mod metrics;
mod service;
mod task;

pub use config::ServiceConfig;
pub use nexuspp_core::TenantId;
pub use service::{ResolverService, ServiceReport};
pub use task::{IngressError, ServiceTask, SubmissionHandle};
