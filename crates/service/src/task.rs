//! The client-facing ingress surface: tasks, errors, handles.

use crate::metrics::TenantMetrics;
use crossbeam::channel::{Sender, TrySendError};
use nexuspp_core::{Submission, TenantId};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// One streamed task: a pre-addressed [`Submission`] (the dependence
/// declaration) plus the closure to run when it becomes ready. Built by
/// clients, carried through a tenant lane, admitted by the ingress
/// thread.
pub struct ServiceTask {
    pub(crate) sub: Submission,
    pub(crate) job: Box<dyn FnOnce() + Send + 'static>,
}

impl ServiceTask {
    /// Bundle a submission with its body. The submission's `tenant`
    /// field is overwritten by the handle it is submitted through — the
    /// handle, not the payload, is the identity.
    pub fn new(sub: Submission, job: impl FnOnce() + Send + 'static) -> ServiceTask {
        ServiceTask {
            sub,
            job: Box::new(job),
        }
    }

    /// The caller tag of the wrapped submission.
    pub fn tag(&self) -> u64 {
        self.sub.tag
    }
}

impl std::fmt::Debug for ServiceTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceTask")
            .field("tag", &self.sub.tag)
            .field("tenant", &self.sub.tenant)
            .field("params", &self.sub.params.len())
            .finish()
    }
}

/// Why [`SubmissionHandle::try_submit`] handed the task back.
pub enum IngressError {
    /// The tenant's lane is full. **Retryable**: the task is returned
    /// untouched; resubmit after backing off (lane slots free as the
    /// ingress thread admits work).
    Backpressure(ServiceTask),
    /// The service sealed its ingress (shutdown started or completed).
    /// Not retryable.
    Closed(ServiceTask),
}

impl IngressError {
    /// Recover the task for retry or disposal.
    pub fn into_task(self) -> ServiceTask {
        match self {
            IngressError::Backpressure(t) | IngressError::Closed(t) => t,
        }
    }

    /// `true` for [`Backpressure`](Self::Backpressure).
    pub fn is_retryable(&self) -> bool {
        matches!(self, IngressError::Backpressure(_))
    }
}

impl std::fmt::Debug for IngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngressError::Backpressure(t) => f.debug_tuple("Backpressure").field(t).finish(),
            IngressError::Closed(t) => f.debug_tuple("Closed").field(t).finish(),
        }
    }
}

/// Wakeup plumbing for the ingress thread: clients notify after a send,
/// credit guards notify after a retirement (slots freed), shutdown
/// notifies to deliver the stop flag. The ingress loop pairs waits with
/// a short timeout, so a lost race costs one tick, never a hang.
pub(crate) struct IngressSignal {
    lock: Mutex<()>,
    cv: Condvar,
}

impl IngressSignal {
    pub(crate) fn new() -> IngressSignal {
        IngressSignal {
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn notify(&self) {
        let _g = self.lock.lock();
        self.cv.notify_all();
    }

    pub(crate) fn wait(&self, timeout: Duration) {
        let mut g = self.lock.lock();
        let _ = self.cv.wait_for(&mut g, timeout);
    }
}

/// The gate `try_submit` threads hold (shared) while checking the
/// accepting flag and sending. Shutdown flips the flag and then takes
/// it exclusively once, which linearizes sealing: afterwards, anything
/// a client managed to enqueue is provably visible to the drain.
pub(crate) struct IngressGate {
    accepting: AtomicBool,
    gate: RwLock<()>,
}

impl IngressGate {
    pub(crate) fn new() -> IngressGate {
        IngressGate {
            accepting: AtomicBool::new(true),
            gate: RwLock::new(()),
        }
    }

    /// Seal ingress. After this returns, no `try_submit` can succeed,
    /// and every previously successful send is visible in its lane.
    pub(crate) fn seal(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        let _w = self
            .gate
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }

    pub(crate) fn is_accepting(&self) -> bool {
        self.accepting.load(Ordering::SeqCst)
    }
}

/// A tenant's ingress endpoint: clone freely, send from any thread.
/// Submissions stream into a bounded per-tenant lane; the service's
/// ingress thread admits them in send order.
#[derive(Clone)]
pub struct SubmissionHandle {
    pub(crate) tenant: TenantId,
    pub(crate) tx: Sender<ServiceTask>,
    pub(crate) gate: Arc<IngressGate>,
    pub(crate) signal: Arc<IngressSignal>,
    pub(crate) metrics: Arc<TenantMetrics>,
}

impl SubmissionHandle {
    /// The tenant this handle submits as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Non-blocking submit. `Ok(())` means *accepted*: the task is in
    /// the tenant's lane and — unless a hard-deadline shutdown drops
    /// it — will be admitted and retired exactly once. Errors hand the
    /// task back; see [`IngressError`] for which are retryable.
    pub fn try_submit(&self, mut task: ServiceTask) -> Result<(), IngressError> {
        let _r = self
            .gate
            .gate
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !self.gate.is_accepting() {
            return Err(IngressError::Closed(task));
        }
        task.sub.tenant = self.tenant;
        match self.tx.try_send(task) {
            Ok(()) => {
                self.metrics.submitted.inc();
                self.signal.notify();
                Ok(())
            }
            Err(TrySendError::Full(t)) => {
                self.metrics.backpressured.inc();
                Err(IngressError::Backpressure(t))
            }
            Err(TrySendError::Disconnected(t)) => Err(IngressError::Closed(t)),
        }
    }

    /// Convenience retry loop around [`try_submit`](Self::try_submit):
    /// backs off (yield, then 100µs sleeps) while backpressured.
    /// Returns the task only if ingress closed.
    pub fn submit_blocking(&self, task: ServiceTask) -> Result<(), ServiceTask> {
        let mut task = task;
        let mut attempts = 0u32;
        loop {
            match self.try_submit(task) {
                Ok(()) => return Ok(()),
                Err(IngressError::Closed(t)) => return Err(t),
                Err(IngressError::Backpressure(t)) => {
                    task = t;
                    if attempts < 16 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    attempts = attempts.saturating_add(1);
                }
            }
        }
    }
}
