//! Service construction parameters.

use nexuspp_core::{ShardCapacity, TenantId};
use nexuspp_sched::SchedulerKind;
use nexuspp_shard::WakeMode;

/// Everything a [`ResolverService`](crate::ResolverService) is built
/// from: the wrapped runtime's shape plus the tenant roster.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the wrapped runtime.
    pub workers: usize,
    /// Dependency-resolution shards.
    pub shards: usize,
    /// Ready-task scheduler kind.
    pub scheduler: SchedulerKind,
    /// Per-shard residency bound. Bounded capacity is what makes the
    /// ingress retry slot earn its keep; unbounded never rejects.
    pub capacity: ShardCapacity,
    /// Wake-delivery mode of the dispatcher.
    pub wake_mode: WakeMode,
    /// Bound of each tenant's ingress lane (queued, not yet admitted).
    /// A full lane is client-visible backpressure.
    pub lane_capacity: usize,
    /// Max tasks admitted from one lane per ingress sweep before moving
    /// to the next lane (round-robin fairness quantum).
    pub sweep_batch: usize,
    pub(crate) tenants: Vec<(TenantId, u64)>,
}

impl ServiceConfig {
    /// A config with `workers` workers and `shards` shards, default
    /// scheduler/capacity/wake mode, and no tenants yet (add with
    /// [`tenant`](Self::tenant)).
    pub fn new(workers: usize, shards: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            shards,
            scheduler: SchedulerKind::default(),
            capacity: ShardCapacity::Unbounded,
            wake_mode: WakeMode::default(),
            lane_capacity: 256,
            sweep_batch: 32,
            tenants: Vec::new(),
        }
    }

    /// Register a tenant with an in-flight budget (tasks admitted into
    /// the runtime but not yet retired). Only registered tenants get a
    /// [`SubmissionHandle`](crate::SubmissionHandle).
    pub fn tenant(mut self, id: TenantId, budget: u64) -> Self {
        self.tenants.push((id, budget));
        self
    }

    /// Select the ready-task scheduler.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Bound each shard's resident tasks (exercises the capacity-retry
    /// ingress path).
    pub fn capacity(mut self, cap: ShardCapacity) -> Self {
        self.capacity = cap;
        self
    }

    /// Select the wake-delivery mode.
    pub fn wake_mode(mut self, mode: WakeMode) -> Self {
        self.wake_mode = mode;
        self
    }

    /// Bound each tenant's ingress lane.
    pub fn lane_capacity(mut self, cap: usize) -> Self {
        self.lane_capacity = cap.max(1);
        self
    }

    /// Set the per-lane fairness quantum.
    pub fn sweep_batch(mut self, batch: usize) -> Self {
        self.sweep_batch = batch.max(1);
        self
    }

    /// The registered tenants, in registration order.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, u64)> + '_ {
        self.tenants.iter().copied()
    }
}
