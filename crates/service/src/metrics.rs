//! Per-tenant live counters, registered as one metrics group each.

use nexuspp_core::TenantId;
use nexuspp_obs::{Counter, CounterGroup, MetricsRegistry};
use nexuspp_shard::TenantBudgets;
use std::sync::Arc;

/// Extracted live handles over one tenant's [`CounterGroup`] — the
/// service's side of the ledger (the budget side lives in
/// [`TenantBudgets`]).
pub(crate) struct TenantMetrics {
    group: Arc<CounterGroup>,
    /// Tasks accepted into the lane by `try_submit`.
    pub(crate) submitted: Counter,
    /// `try_submit` refusals on a full lane.
    pub(crate) backpressured: Counter,
    /// Tasks admitted into the runtime (budget charged, submit landed).
    pub(crate) admitted: Counter,
    /// Sweeps that found the tenant at its budget cap.
    pub(crate) budget_denied: Counter,
    /// Runtime capacity rejections absorbed into the retry slot.
    pub(crate) capacity_retries: Counter,
    /// Admitted tasks whose bodies ran.
    pub(crate) executed: Counter,
    /// Admitted tasks cancel-finished by a hard-deadline shutdown.
    pub(crate) cancelled: Counter,
    /// Accepted-but-never-admitted tasks discarded by a hard-deadline
    /// shutdown.
    pub(crate) dropped: Counter,
}

const COUNTERS: &[&str] = &[
    "submitted",
    "backpressured",
    "admitted",
    "budget_denied",
    "capacity_retries",
    "executed",
    "cancelled",
    "dropped",
];

impl TenantMetrics {
    pub(crate) fn new() -> TenantMetrics {
        let group = Arc::new(CounterGroup::new(COUNTERS));
        let c = |n: &str| group.counter(n).expect("counter exists");
        TenantMetrics {
            submitted: c("submitted"),
            backpressured: c("backpressured"),
            admitted: c("admitted"),
            budget_denied: c("budget_denied"),
            capacity_retries: c("capacity_retries"),
            executed: c("executed"),
            cancelled: c("cancelled"),
            dropped: c("dropped"),
            group,
        }
    }

    /// Register this tenant's group (service counters plus the live
    /// budget gauges) in `reg` under the tenant's display name
    /// (`tenant3`, …).
    pub(crate) fn register_in(
        &self,
        reg: &MetricsRegistry,
        tenant: TenantId,
        budgets: &Arc<TenantBudgets>,
    ) {
        let group = Arc::clone(&self.group);
        let budgets = Arc::clone(budgets);
        reg.register(&tenant.to_string(), move || {
            let mut rows = group.snapshot();
            if let Some(c) = budgets.counts(tenant) {
                rows.push(("budget_cap".into(), c.cap));
                rows.push(("in_flight".into(), c.in_flight));
                rows.push(("in_flight_peak".into(), c.peak));
            }
            rows
        });
    }
}
