//! The [`IncrementalProgram`]: an editable, memoized task program.
//!
//! An `IncrementalProgram` is the mutable counterpart of the frontend's
//! append-only [`Program`]: it holds the *current* set of task
//! declarations keyed by a caller-chosen stable task key, accepts
//! [`Edit`]s (change a resource's initial contents, add / remove /
//! retarget a task), and — through the re-run path in
//! [`crate::exec`] — resubmits **only the invalidated cone** to a
//! backend, splicing memoized outputs in for everything still clean.
//!
//! # How edits commit
//!
//! Every structural edit is staged: the new declaration list is
//! **replayed** through a fresh frontend [`Program`] (reusing its
//! binding-resolution logic verbatim — reads bind to
//! latest-at-declaration, writes mint versions), the new
//! true-dependency edge set is diffed against the old one, and the diff
//! is fed *incrementally* to the Pearce–Kelly order maintainer
//! ([`DynamicTopo`]). Only if every inserted edge is acyclic does the
//! edit commit; a cycle-creating edit is rejected at declaration time
//! with [`IncrError::Cycle`] and **every** piece of state — the
//! declarations, the memo store, and the maintained order — rolled back
//! untouched. The full topological order is never recomputed: an edit
//! pays only for the affected region (see [`crate::order`]).
//!
//! # Resource identity
//!
//! Resource names are interned once, in first-mention order, and the
//! interner only ever grows — so a [`ResourceId`] is stable across
//! every edit, and the memo store can key cached outputs by it.
//! Because each replay pre-registers the whole interner, reading a
//! resource that no current task writes is always legal: it binds to
//! version 0, the resource's initial contents (a deliberate divergence
//! from the bare frontend, where a never-mentioned name is an error).

use crate::order::{DynamicTopo, OrderError};
use crate::store::{self, Store};
use nexuspp_core::Priority;
use nexuspp_frontend::{Program, ResourceId, TaskDecl, Version};
use nexuspp_obs::{CounterGroup, MetricsRegistry};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// One declared access in an [`Edit`] — the name-based form the
/// frontend's builder accepts, kept symbolic so declarations can be
/// replayed after any edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// Read the resource's latest version as of this declaration.
    Read(String),
    /// Read a pinned version (0 = initial contents; pins may name
    /// versions minted by later tasks, which is how edits can create —
    /// and the order maintainer must reject — cycles).
    ReadVersion(String, Version),
    /// Write the resource, minting a fresh version.
    Write(String),
    /// Read the latest version, then mint a fresh one.
    ReadWrite(String),
}

impl Access {
    /// The resource name this access touches.
    pub fn name(&self) -> &str {
        match self {
            Access::Read(n)
            | Access::ReadVersion(n, _)
            | Access::Write(n)
            | Access::ReadWrite(n) => n,
        }
    }
}

/// One edit to an [`IncrementalProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Change a resource's initial contents (version 0). Dirties every
    /// current reader of version 0 of that resource.
    SetInitial {
        /// Resource name (interned on first mention).
        resource: String,
        /// New initial-contents seed.
        seed: u64,
    },
    /// Add a task under a fresh key, appended in declaration order.
    AddTask {
        /// Caller-chosen stable key (also the backend tag). Must be
        /// unused.
        key: u64,
        /// Simulated function pointer.
        fptr: u64,
        /// Scheduling priority.
        priority: Priority,
        /// The task's declared accesses.
        accesses: Vec<Access>,
    },
    /// Remove the task under `key`; its memo is evicted and downstream
    /// readers re-bind.
    RemoveTask {
        /// Key of the task to remove.
        key: u64,
    },
    /// Replace the access list of the task under `key` (retarget which
    /// resources it reads/writes), keeping its key, fptr, and priority.
    Retarget {
        /// Key of the task to retarget.
        key: u64,
        /// The replacement access list.
        accesses: Vec<Access>,
    },
}

/// Errors surfaced when an [`Edit`] is applied. A failed edit commits
/// **nothing**: declarations, memo store, and maintained order are
/// exactly as before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrError {
    /// `AddTask` reused a key that is already declared.
    DuplicateKey(u64),
    /// `RemoveTask` / `Retarget` named a key that is not declared.
    UnknownKey(u64),
    /// A pinned read names a version no current task mints.
    UnknownProducer {
        /// The resource read.
        resource: String,
        /// The version nobody writes.
        version: Version,
        /// Key of the reading task.
        reader: u64,
    },
    /// The edit would close a dependency cycle; rejected at declaration
    /// time by the online order maintainer.
    Cycle {
        /// Producer end of the rejected edge.
        from: u64,
        /// Consumer end of the rejected edge.
        to: u64,
    },
}

impl fmt::Display for IncrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrError::DuplicateKey(k) => write!(f, "task key {k} is already declared"),
            IncrError::UnknownKey(k) => write!(f, "no task is declared under key {k}"),
            IncrError::UnknownProducer {
                resource,
                version,
                reader,
            } => write!(
                f,
                "task {reader} reads {resource:?} version {version}, which no task produces"
            ),
            IncrError::Cycle { from, to } => write!(
                f,
                "edit would close a dependency cycle through edge {from} -> {to}"
            ),
        }
    }
}

impl std::error::Error for IncrError {}

/// One symbolic task declaration (pre-resolution), keyed by `key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DeclSpec {
    pub(crate) key: u64,
    pub(crate) fptr: u64,
    pub(crate) priority: Priority,
    pub(crate) accesses: Vec<Access>,
}

/// Everything one replay derives from the declaration list.
pub(crate) struct Replay {
    pub(crate) program: Program,
    pub(crate) resolved: HashMap<u64, TaskDecl>,
    pub(crate) producers: HashMap<(ResourceId, Version), u64>,
    pub(crate) edges: BTreeSet<(u64, u64)>,
}

/// An editable, memoized program of resource-declaring tasks. See the
/// [module docs](self) for the commit/rollback discipline and
/// [`crate::exec`] for re-running it on a backend.
///
/// ```
/// use nexuspp_incr::{Access, Edit, IncrementalProgram};
///
/// let mut ip = IncrementalProgram::new();
/// ip.edit(Edit::AddTask {
///     key: 0,
///     fptr: 0x10,
///     priority: Default::default(),
///     accesses: vec![
///         Access::Read("in".into()),
///         Access::Write("out".into()),
///     ],
/// })
/// .unwrap();
/// assert_eq!(ip.len(), 1);
/// // Editing "in"'s initial contents dirties the reader.
/// ip.edit(Edit::SetInitial { resource: "in".into(), seed: 7 }).unwrap();
/// assert_eq!(ip.dirty_cone(), vec![0]);
/// ```
pub struct IncrementalProgram {
    /// Interned resource names, first-mention order; grows only.
    pub(crate) interner: Vec<String>,
    pub(crate) by_name: HashMap<String, ResourceId>,
    /// Per-resource name hash (parallel to `interner`).
    pub(crate) name_hashes: Vec<u64>,
    /// Per-resource initial-contents seed (parallel to `interner`).
    pub(crate) seeds: Vec<u64>,
    /// Current declarations, in declaration order.
    pub(crate) decls: Vec<DeclSpec>,
    /// The current replay of `decls` through the frontend.
    pub(crate) program: Program,
    /// key → resolved declaration (from the current replay).
    pub(crate) resolved: HashMap<u64, TaskDecl>,
    /// (resource, version) → minting task key (current replay).
    pub(crate) producers: HashMap<(ResourceId, Version), u64>,
    /// Current true-dependency edges, by key.
    pub(crate) edges: BTreeSet<(u64, u64)>,
    /// The incrementally maintained topological order over task keys.
    pub(crate) topo: DynamicTopo<u64>,
    /// The memo store (single writer: this struct, on the caller's
    /// thread).
    pub(crate) store: Store,
    /// Keys dirtied by edits since the last re-run.
    pub(crate) touched: BTreeSet<u64>,
    /// Live counters, if attached via
    /// [`register_metrics`](Self::register_metrics).
    pub(crate) metrics: Option<Arc<CounterGroup>>,
    /// `topo.ops()` as of the last report (for per-run deltas).
    pub(crate) ops_reported: u64,
}

impl Default for IncrementalProgram {
    fn default() -> Self {
        Self::new()
    }
}

/// Counter names in the group [`register_metrics`] registers.
///
/// [`register_metrics`]: IncrementalProgram::register_metrics
pub const METRIC_NAMES: [&str; 6] = ["runs", "total", "dirtied", "reran", "reused", "order_ops"];

impl IncrementalProgram {
    /// An empty program with an empty memo store (so the first re-run
    /// is the degenerate from-scratch case).
    pub fn new() -> IncrementalProgram {
        IncrementalProgram {
            interner: Vec::new(),
            by_name: HashMap::new(),
            name_hashes: Vec::new(),
            seeds: Vec::new(),
            decls: Vec::new(),
            program: Program::new(),
            resolved: HashMap::new(),
            producers: HashMap::new(),
            edges: BTreeSet::new(),
            topo: DynamicTopo::new(),
            store: Store::new(),
            touched: BTreeSet::new(),
            metrics: None,
            ops_reported: 0,
        }
    }

    /// Number of declared tasks.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// No tasks declared?
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// The declared task keys, sorted.
    pub fn keys(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.decls.iter().map(|d| d.key).collect();
        v.sort_unstable();
        v
    }

    /// The current true-dependency edges, as sorted (producer key,
    /// consumer key) pairs.
    pub fn edges(&self) -> Vec<(u64, u64)> {
        self.edges.iter().copied().collect()
    }

    /// The memo store (read-only; mutation goes through re-runs and
    /// edits).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The maintained topological order (read-only).
    pub fn topo(&self) -> &DynamicTopo<u64> {
        &self.topo
    }

    /// Keys currently dirtied by edits plus their forward closure over
    /// the true-dependency edges — exactly the set the next
    /// [`rerun`](Self::rerun) will validate, in sorted key order.
    pub fn dirty_cone(&self) -> Vec<u64> {
        let mut cone: BTreeSet<u64> = self
            .touched
            .iter()
            .copied()
            .filter(|k| self.resolved.contains_key(k))
            .collect();
        let mut stack: Vec<u64> = cone.iter().copied().collect();
        // Forward closure; adjacency read straight off the sorted edge
        // set via range queries.
        while let Some(k) = stack.pop() {
            for &(_, to) in self.edges.range((k, 0)..=(k, u64::MAX)) {
                if cone.insert(to) {
                    stack.push(to);
                }
            }
        }
        cone.into_iter().collect()
    }

    /// Drop every memo and dirty every task: the next re-run is a full
    /// from-scratch execution (the empty-store degenerate case).
    pub fn invalidate_all(&mut self) {
        self.store.clear();
        self.touched.extend(self.resolved.keys().copied());
    }

    /// Create the live counter group ([`METRIC_NAMES`]) and register it
    /// in `reg` under `group`. Each re-run adds that run's totals, so
    /// snapshots taken mid-session show the cumulative reuse funnel.
    pub fn register_metrics(&mut self, reg: &MetricsRegistry, group: &str) -> Arc<CounterGroup> {
        let g = self
            .metrics
            .get_or_insert_with(|| Arc::new(CounterGroup::new(&METRIC_NAMES)))
            .clone();
        g.register_in(reg, group);
        g
    }

    /// Intern `name`, returning its stable [`ResourceId`].
    pub(crate) fn intern(&mut self, name: &str) -> ResourceId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ResourceId(self.interner.len() as u32);
        self.interner.push(name.to_string());
        self.name_hashes.push(store::hash_bytes(name.as_bytes()));
        self.seeds.push(0);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// The interned name of `r`.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.interner[r.0 as usize]
    }

    /// All interned resource names, in [`ResourceId`] order.
    pub fn resource_names(&self) -> &[String] {
        &self.interner
    }

    /// The simulated content of `(r, v)` as memoized: initial contents
    /// for version 0, the producer's cached output otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the producer of a non-zero version has no memo yet —
    /// callers resolve contents only for versions whose producers are
    /// clean or already re-validated (the re-run walks in dependency
    /// order, which guarantees it).
    pub(crate) fn content_of(&self, r: ResourceId, v: Version) -> u64 {
        if v == 0 {
            return store::initial_contents(&self.interner[r.0 as usize], self.seeds[r.0 as usize]);
        }
        let p = self.producers[&(r, v)];
        self.store
            .record(p)
            .expect("producer memoized before its consumers resolve")
            .output(r)
            .expect("producer record covers each written resource")
    }

    /// The current content of resource `name` (its latest version), as
    /// of the last re-run. `None` if the name was never mentioned.
    pub fn contents(&self, name: &str) -> Option<u64> {
        let &r = self.by_name.get(name)?;
        let v = self.program.latest_version(name).unwrap_or(0);
        Some(self.content_of(r, v))
    }

    /// Final contents of every interned resource, in [`ResourceId`]
    /// order, as of the last re-run — the observable the edit-sequence
    /// differential compares against from-scratch execution and the
    /// oracle.
    pub fn final_contents(&self) -> Vec<(String, u64)> {
        self.interner
            .iter()
            .map(|n| (n.clone(), self.contents(n).expect("interned")))
            .collect()
    }

    /// Apply one [`Edit`]. On error, **nothing** changed — see the
    /// [module docs](self) for the staged-commit discipline.
    pub fn edit(&mut self, edit: Edit) -> Result<(), IncrError> {
        if let Edit::SetInitial { resource, seed } = edit {
            // Fast path: no structural change, no replay. Dirty every
            // current reader of the initial contents.
            let r = self.intern(&resource);
            self.seeds[r.0 as usize] = seed;
            let readers: Vec<u64> = self
                .resolved
                .values()
                .filter(|d| d.reads.contains(&(r, 0)))
                .map(|d| d.tag)
                .collect();
            self.touched.extend(readers);
            return Ok(());
        }
        self.edit_batch([edit])
    }

    /// Apply several [`Edit`]s as one all-or-nothing transaction with a
    /// **single** replay and one order-maintenance diff — the bulk path
    /// for ingesting whole programs (building an n-task program through
    /// one-at-a-time [`edit`](Self::edit) calls replays n times, which
    /// is quadratic). On any error the whole batch is rolled back.
    ///
    /// Later edits in the batch see earlier ones: an `AddTask` may
    /// reuse a key a preceding `RemoveTask` freed.
    pub fn edit_batch(&mut self, edits: impl IntoIterator<Item = Edit>) -> Result<(), IncrError> {
        let mut scratch = self.decls.clone();
        let mut edited_keys: Vec<u64> = Vec::new();
        let mut seed_updates: Vec<(String, u64)> = Vec::new();
        let mut structural = false;
        for edit in edits {
            if !matches!(edit, Edit::SetInitial { .. }) {
                structural = true;
            }
            match edit {
                Edit::SetInitial { resource, seed } => {
                    seed_updates.push((resource, seed));
                }
                Edit::AddTask {
                    key,
                    fptr,
                    priority,
                    accesses,
                } => {
                    if scratch.iter().any(|d| d.key == key) {
                        return Err(IncrError::DuplicateKey(key));
                    }
                    scratch.push(DeclSpec {
                        key,
                        fptr,
                        priority,
                        accesses,
                    });
                    edited_keys.push(key);
                }
                Edit::RemoveTask { key } => {
                    if !scratch.iter().any(|d| d.key == key) {
                        return Err(IncrError::UnknownKey(key));
                    }
                    scratch.retain(|d| d.key != key);
                }
                Edit::Retarget { key, accesses } => {
                    let Some(i) = scratch.iter().position(|d| d.key == key) else {
                        return Err(IncrError::UnknownKey(key));
                    };
                    scratch[i].accesses = accesses;
                    edited_keys.push(key);
                }
            }
        }
        if !structural {
            // Seed-only batch: no replay needed, the current resolution
            // stays valid. Same fast path as a single `SetInitial`.
            for (name, seed) in seed_updates {
                let r = self.intern(&name);
                self.seeds[r.0 as usize] = seed;
                let readers: Vec<u64> = self
                    .resolved
                    .values()
                    .filter(|d| d.reads.contains(&(r, 0)))
                    .map(|d| d.tag)
                    .collect();
                self.touched.extend(readers);
            }
            return Ok(());
        }
        self.commit_structural(scratch, edited_keys, seed_updates)
    }

    /// Stage a structural change: replay, diff edges, feed the diff to
    /// the order maintainer (rolling it back on a cycle), then commit
    /// declarations + replay + seeds + dirty marks atomically.
    fn commit_structural(
        &mut self,
        scratch: Vec<DeclSpec>,
        edited_keys: Vec<u64>,
        seed_updates: Vec<(String, u64)>,
    ) -> Result<(), IncrError> {
        // Intern every name the new declaration list mentions. The
        // interner only grows, so this is safe even if the edit is
        // later rejected — ids already handed out never move.
        for d in &scratch {
            for a in &d.accesses {
                self.intern(a.name());
            }
        }
        let replay = Self::replay(&self.interner, &scratch)?;

        // Diff the node and edge sets, feed the diff to Pearce–Kelly.
        let old_keys: BTreeSet<u64> = self.decls.iter().map(|d| d.key).collect();
        let new_keys: BTreeSet<u64> = scratch.iter().map(|d| d.key).collect();
        let removed_nodes: Vec<u64> = old_keys.difference(&new_keys).copied().collect();
        let added_nodes: Vec<u64> = new_keys.difference(&old_keys).copied().collect();
        let removed_edges: Vec<(u64, u64)> =
            self.edges.difference(&replay.edges).copied().collect();
        let added_edges: Vec<(u64, u64)> = replay.edges.difference(&self.edges).copied().collect();

        for &(f, t) in &removed_edges {
            self.topo.remove_edge(f, t);
        }
        for &n in &removed_nodes {
            self.topo.remove_node(n);
        }
        for &n in &added_nodes {
            self.topo.add_node(n);
        }
        for (i, &(f, t)) in added_edges.iter().enumerate() {
            match self.topo.add_edge(f, t) {
                Ok(_) => {}
                Err(OrderError::Cycle { from, to }) => {
                    // Roll back in reverse: drop what we added, restore
                    // what we removed. Restoring edges that were valid
                    // before cannot cycle (the graph is a subgraph of
                    // the old one at that point).
                    for &(f2, t2) in &added_edges[..i] {
                        self.topo.remove_edge(f2, t2);
                    }
                    for &n in &added_nodes {
                        self.topo.remove_node(n);
                    }
                    for &n in &removed_nodes {
                        self.topo.add_node(n);
                    }
                    for &(f2, t2) in &removed_edges {
                        self.topo
                            .add_edge(f2, t2)
                            .expect("restoring previously valid edges cannot cycle");
                    }
                    return Err(IncrError::Cycle { from, to });
                }
                Err(OrderError::MissingNode(_)) => {
                    unreachable!("edge endpoints are declared tasks")
                }
            }
        }

        // Committed. Dirty the edited tasks, every task whose resolved
        // binding changed, and nothing else; evict removed memos.
        self.touched
            .extend(edited_keys.iter().copied().filter(|k| new_keys.contains(k)));
        for (name, seed) in seed_updates {
            let r = self.intern(&name);
            self.seeds[r.0 as usize] = seed;
            // Dirty the v0-readers *as rebound by this replay*.
            self.touched.extend(
                replay
                    .resolved
                    .values()
                    .filter(|d| d.reads.contains(&(r, 0)))
                    .map(|d| d.tag),
            );
        }
        for d in &scratch {
            let new = &replay.resolved[&d.key];
            match self.resolved.get(&d.key) {
                Some(old) if !decl_changed(old, new) => {}
                _ => {
                    self.touched.insert(d.key);
                }
            }
        }
        for &k in &removed_nodes {
            self.store.evict(k);
            self.touched.remove(&k);
        }
        self.decls = scratch;
        self.program = replay.program;
        self.resolved = replay.resolved;
        self.producers = replay.producers;
        self.edges = replay.edges;
        Ok(())
    }

    /// Replay a declaration list through a fresh frontend [`Program`]
    /// (pre-registering the whole interner so ids stay stable and
    /// never-written reads legally bind to version 0), resolve
    /// producers, and derive the true-dependency edge set.
    pub(crate) fn replay(interner: &[String], decls: &[DeclSpec]) -> Result<Replay, IncrError> {
        let mut p = Program::new();
        for name in interner {
            p.resource(name);
        }
        for d in decls {
            let mut b = p.task(d.fptr).tag(d.key).priority(d.priority);
            for a in &d.accesses {
                b = match a {
                    Access::Read(n) => b.reads(n),
                    Access::ReadVersion(n, v) => b.reads_version(n, *v),
                    Access::Write(n) => b.writes(n),
                    Access::ReadWrite(n) => b.read_writes(n),
                };
            }
            b.submit().expect("every name pre-interned");
        }
        let mut resolved = HashMap::with_capacity(decls.len());
        let mut producers = HashMap::new();
        for t in p.tasks() {
            for &(r, v) in &t.writes {
                producers.insert((r, v), t.tag);
            }
            resolved.insert(t.tag, t.clone());
        }
        let mut edges = BTreeSet::new();
        for t in p.tasks() {
            for &(r, v) in &t.reads {
                if v == 0 {
                    continue;
                }
                let &prod = producers
                    .get(&(r, v))
                    .ok_or_else(|| IncrError::UnknownProducer {
                        resource: p.resource_name(r).to_string(),
                        version: v,
                        reader: t.tag,
                    })?;
                if prod != t.tag {
                    edges.insert((prod, t.tag));
                }
            }
        }
        Ok(Replay {
            program: p,
            resolved,
            producers,
            edges,
        })
    }
}

/// Did a task's resolved binding change between two replays? Version
/// numbers participate deliberately: a renumbered binding lands the
/// task in the structural cone, and the content-based fingerprint then
/// decides whether anything *semantically* changed (early cutoff).
fn decl_changed(old: &TaskDecl, new: &TaskDecl) -> bool {
    old.fptr != new.fptr
        || old.priority != new.priority
        || old.reads != new.reads
        || old.writes != new.writes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(key: u64, fptr: u64, accesses: Vec<Access>) -> Edit {
        Edit::AddTask {
            key,
            fptr,
            priority: Priority::Normal,
            accesses,
        }
    }

    #[test]
    fn adds_build_edges_and_duplicates_are_rejected() {
        let mut ip = IncrementalProgram::new();
        ip.edit(add(1, 0x10, vec![Access::Write("a".into())]))
            .unwrap();
        ip.edit(add(
            2,
            0x11,
            vec![Access::Read("a".into()), Access::Write("b".into())],
        ))
        .unwrap();
        assert_eq!(ip.edges(), vec![(1, 2)]);
        assert!(ip.topo().is_before(1, 2));
        assert_eq!(
            ip.edit(add(1, 0x12, vec![])).unwrap_err(),
            IncrError::DuplicateKey(1)
        );
        assert_eq!(ip.len(), 2);
    }

    #[test]
    fn cycle_creating_edit_rolls_back_completely() {
        let mut ip = IncrementalProgram::new();
        // t1 mints a v1 reading a pinned future b v1; t2 would mint b
        // v1 reading a v1 — a two-task cycle through version pins.
        ip.edit(add(
            1,
            0x10,
            vec![
                Access::ReadVersion("b".into(), 1),
                Access::Write("a".into()),
            ],
        ))
        .unwrap_err(); // b v1 has no producer yet
        ip.edit(add(1, 0x10, vec![Access::Write("a".into())]))
            .unwrap();
        ip.edit(add(
            2,
            0x11,
            vec![Access::Read("a".into()), Access::Write("b".into())],
        ))
        .unwrap();
        let edges = ip.edges();
        let order = ip.topo().topo_order();
        let err = ip
            .edit(Edit::Retarget {
                key: 1,
                accesses: vec![
                    Access::ReadVersion("b".into(), 1),
                    Access::Write("a".into()),
                ],
            })
            .unwrap_err();
        assert!(matches!(err, IncrError::Cycle { .. }));
        // Declarations, edges, order, store: all untouched.
        assert_eq!(ip.edges(), edges);
        assert_eq!(ip.topo().topo_order(), order);
        assert_eq!(ip.len(), 2);
        assert!(ip.topo().is_valid());
    }

    #[test]
    fn set_initial_dirties_exactly_the_v0_readers() {
        let mut ip = IncrementalProgram::new();
        ip.edit(add(
            1,
            0x10,
            vec![Access::Read("in".into()), Access::Write("mid".into())],
        ))
        .unwrap();
        ip.edit(add(
            2,
            0x11,
            vec![Access::Read("mid".into()), Access::Write("out".into())],
        ))
        .unwrap();
        ip.edit(add(3, 0x12, vec![Access::Write("other".into())]))
            .unwrap();
        ip.touched.clear(); // pretend a re-run happened
        ip.edit(Edit::SetInitial {
            resource: "in".into(),
            seed: 99,
        })
        .unwrap();
        // Task 1 reads in@v0; the cone pulls in its consumer 2 but not
        // the unrelated 3.
        assert_eq!(ip.dirty_cone(), vec![1, 2]);
    }

    #[test]
    fn removal_rebinds_downstream_readers() {
        let mut ip = IncrementalProgram::new();
        ip.edit(add(1, 0x10, vec![Access::Write("x".into())]))
            .unwrap();
        ip.edit(add(2, 0x11, vec![Access::Write("x".into())]))
            .unwrap();
        ip.edit(add(3, 0x12, vec![Access::Read("x".into())]))
            .unwrap();
        assert_eq!(ip.edges(), vec![(2, 3)]);
        ip.touched.clear();
        ip.edit(Edit::RemoveTask { key: 2 }).unwrap();
        // Reader 3 now consumes task 1's mint.
        assert_eq!(ip.edges(), vec![(1, 3)]);
        assert!(ip.dirty_cone().contains(&3));
        assert_eq!(
            ip.edit(Edit::RemoveTask { key: 2 }).unwrap_err(),
            IncrError::UnknownKey(2)
        );
    }

    #[test]
    fn never_written_reads_bind_to_initial_contents() {
        let mut ip = IncrementalProgram::new();
        ip.edit(Edit::SetInitial {
            resource: "cfg".into(),
            seed: 5,
        })
        .unwrap();
        ip.edit(add(
            1,
            0x10,
            vec![Access::Read("cfg".into()), Access::Write("o".into())],
        ))
        .unwrap();
        let d = &ip.resolved[&1];
        assert_eq!(d.reads, vec![(ResourceId(0), 0)]);
    }
}
