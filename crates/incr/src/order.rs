//! Pearce–Kelly dynamic topological ordering with online cycle
//! detection.
//!
//! [`DynamicTopo`] maintains a total order over the nodes of a DAG that
//! stays topologically valid while nodes and edges are inserted and
//! deleted **online** — the algorithm of Pearce & Kelly, *"A Dynamic
//! Topological Sort Algorithm for Directed Acyclic Graphs"* (JEA 2007),
//! the same algorithm behind the `incremental-topo` crate that PIE's
//! dependency-graph store builds on.
//!
//! The key property: inserting an edge `(x → y)` that already respects
//! the current order (`ord(x) < ord(y)`) costs **O(1)** — no
//! traversal, no reordering. Only a *violating* insertion
//! (`ord(y) < ord(x)`) triggers work, and that work is bounded by the
//! **affected region** — the nodes whose order index lies between
//! `ord(y)` and `ord(x)` and are actually connected to the new edge —
//! never the whole graph. Edge and node deletions never reorder at
//! all. A cycle-creating insertion is detected during the (read-only)
//! discovery phase and rejected with the structure untouched.
//!
//! The cumulative work performed by order maintenance is surfaced via
//! [`ops`](DynamicTopo::ops) (nodes visited during discovery plus nodes
//! shifted during reordering), which the incremental layer reports as
//! `order_maintenance_ops` so tests and experiments can *see* that
//! edits stay local.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;

/// Errors surfaced by [`DynamicTopo`] mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderError<K> {
    /// An edge endpoint was never added (or was removed).
    MissingNode(K),
    /// Inserting the edge would close a cycle; the structure is
    /// unchanged.
    Cycle {
        /// Source of the rejected edge.
        from: K,
        /// Target of the rejected edge.
        to: K,
    },
}

impl<K: fmt::Debug> fmt::Display for OrderError<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderError::MissingNode(k) => write!(f, "node {k:?} is not in the order"),
            OrderError::Cycle { from, to } => {
                write!(f, "edge {from:?} -> {to:?} would close a cycle")
            }
        }
    }
}

impl<K: fmt::Debug> std::error::Error for OrderError<K> {}

/// A DAG with an incrementally maintained topological order
/// (Pearce–Kelly). See the [module docs](self) for the algorithm and
/// its cost model.
///
/// ```
/// use nexuspp_incr::order::DynamicTopo;
///
/// let mut t = DynamicTopo::new();
/// for k in [1u64, 2, 3] {
///     t.add_node(k);
/// }
/// t.add_edge(1, 2).unwrap();
/// // A violating insertion (3 currently sits after 2) reorders only
/// // the affected region...
/// t.add_edge(3, 2).unwrap();
/// assert!(t.is_before(3, 2));
/// // ...and a cycle-creating one is rejected, order intact.
/// assert!(t.add_edge(2, 1).is_err());
/// assert!(t.is_before(1, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicTopo<K> {
    /// Node → unique order index. Lower index = earlier in the order.
    ord: HashMap<K, u64>,
    /// Outgoing adjacency (edge from → {to}).
    out: HashMap<K, BTreeSet<K>>,
    /// Incoming adjacency (edge to → {from}).
    inn: HashMap<K, BTreeSet<K>>,
    /// Next fresh order index for new nodes.
    next: u64,
    /// Cumulative order-maintenance work (see [`ops`](Self::ops)).
    ops: u64,
}

impl<K: Copy + Ord + Hash + fmt::Debug> DynamicTopo<K> {
    /// An empty order.
    pub fn new() -> Self {
        DynamicTopo {
            ord: HashMap::new(),
            out: HashMap::new(),
            inn: HashMap::new(),
            next: 0,
            ops: 0,
        }
    }

    /// Add a node at the end of the current order. Returns `false` if
    /// it already exists (a no-op).
    pub fn add_node(&mut self, k: K) -> bool {
        if self.ord.contains_key(&k) {
            return false;
        }
        self.ord.insert(k, self.next);
        self.next += 1;
        self.out.insert(k, BTreeSet::new());
        self.inn.insert(k, BTreeSet::new());
        true
    }

    /// Remove a node and all its incident edges. Returns `false` if it
    /// was not present. Never reorders the survivors.
    pub fn remove_node(&mut self, k: K) -> bool {
        if self.ord.remove(&k).is_none() {
            return false;
        }
        for succ in self.out.remove(&k).unwrap_or_default() {
            if let Some(inn) = self.inn.get_mut(&succ) {
                inn.remove(&k);
            }
        }
        for pred in self.inn.remove(&k).unwrap_or_default() {
            if let Some(out) = self.out.get_mut(&pred) {
                out.remove(&k);
            }
        }
        true
    }

    /// Insert the edge `from → to`, restoring topological order if the
    /// insertion violates it. Returns `Ok(false)` if the edge already
    /// exists. A cycle-creating insertion returns
    /// [`OrderError::Cycle`] with **nothing mutated** — discovery runs
    /// before any reordering, so a rejected edit cannot corrupt the
    /// order.
    pub fn add_edge(&mut self, from: K, to: K) -> Result<bool, OrderError<K>> {
        let &ub = self.ord.get(&from).ok_or(OrderError::MissingNode(from))?;
        let &lb = self.ord.get(&to).ok_or(OrderError::MissingNode(to))?;
        if from == to {
            return Err(OrderError::Cycle { from, to });
        }
        if self.out[&from].contains(&to) {
            return Ok(false);
        }
        if lb < ub {
            // The new edge points backwards in the current order:
            // discover the affected region, then reorder it.
            let delta_f = self
                .forward_from(to, ub)
                .ok_or(OrderError::Cycle { from, to })?;
            let delta_b = self.backward_from(from, lb);
            self.reorder(delta_b, delta_f);
        }
        // An order-respecting insertion (ub < lb) is O(1): record it.
        self.out.get_mut(&from).expect("from exists").insert(to);
        self.inn.get_mut(&to).expect("to exists").insert(from);
        Ok(true)
    }

    /// Remove the edge `from → to`. Returns `false` if absent. Never
    /// reorders: a valid order stays valid when constraints are
    /// dropped.
    pub fn remove_edge(&mut self, from: K, to: K) -> bool {
        let removed = self
            .out
            .get_mut(&from)
            .map(|s| s.remove(&to))
            .unwrap_or(false);
        if removed {
            self.inn.get_mut(&to).expect("to exists").remove(&from);
        }
        removed
    }

    /// Forward discovery: nodes reachable from `start` whose order
    /// index is `< ub`. Returns `None` if a node with index `ub` (the
    /// inserted edge's source) is reachable — a cycle.
    fn forward_from(&mut self, start: K, ub: u64) -> Option<Vec<K>> {
        let mut seen: BTreeSet<K> = BTreeSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(n) = stack.pop() {
            self.ops += 1;
            for &m in &self.out[&n] {
                let om = self.ord[&m];
                if om == ub {
                    return None; // reached the edge source: cycle
                }
                if om < ub && seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        Some(seen.into_iter().collect())
    }

    /// Backward discovery: nodes that reach `start` whose order index
    /// is `> lb`.
    fn backward_from(&mut self, start: K, lb: u64) -> Vec<K> {
        let mut seen: BTreeSet<K> = BTreeSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(n) = stack.pop() {
            self.ops += 1;
            for &m in &self.inn[&n] {
                let om = self.ord[&m];
                if om > lb && seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Reorder the affected region: everything that must move *up*
    /// (δB, the nodes reaching the edge source) is placed before
    /// everything that must move *down* (δF, the nodes the edge target
    /// reaches), reusing the union of their existing index slots in
    /// sorted order — all other nodes keep their indices.
    fn reorder(&mut self, delta_b: Vec<K>, delta_f: Vec<K>) {
        let mut b: Vec<(u64, K)> = delta_b.into_iter().map(|k| (self.ord[&k], k)).collect();
        let mut f: Vec<(u64, K)> = delta_f.into_iter().map(|k| (self.ord[&k], k)).collect();
        b.sort_unstable();
        f.sort_unstable();
        let mut slots: Vec<u64> = b.iter().chain(f.iter()).map(|&(o, _)| o).collect();
        slots.sort_unstable();
        for (slot, &(_, k)) in slots.iter().zip(b.iter().chain(f.iter())) {
            self.ord.insert(k, *slot);
            self.ops += 1;
        }
    }

    /// Does the order contain `k`?
    pub fn contains(&self, k: K) -> bool {
        self.ord.contains_key(&k)
    }

    /// The current order index of `k` (comparable, not dense).
    pub fn ord(&self, k: K) -> Option<u64> {
        self.ord.get(&k).copied()
    }

    /// Is `a` before `b` in the current order? `false` if either is
    /// missing.
    pub fn is_before(&self, a: K, b: K) -> bool {
        matches!((self.ord.get(&a), self.ord.get(&b)), (Some(x), Some(y)) if x < y)
    }

    /// All nodes, sorted by the maintained order.
    pub fn topo_order(&self) -> Vec<K> {
        let mut v: Vec<(u64, K)> = self.ord.iter().map(|(&k, &o)| (o, k)).collect();
        v.sort_unstable();
        v.into_iter().map(|(_, k)| k).collect()
    }

    /// All edges, sorted.
    pub fn edges(&self) -> Vec<(K, K)> {
        let mut v: Vec<(K, K)> = self
            .out
            .iter()
            .flat_map(|(&f, ts)| ts.iter().map(move |&t| (f, t)))
            .collect();
        v.sort_unstable();
        v
    }

    /// All nodes, sorted by key (not by order).
    pub fn nodes(&self) -> Vec<K> {
        let mut v: Vec<K> = self.ord.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ord.len()
    }

    /// No nodes at all?
    pub fn is_empty(&self) -> bool {
        self.ord.is_empty()
    }

    /// Cumulative order-maintenance work: one unit per node visited
    /// during violating-edge discovery and per node shifted during
    /// reordering. Order-respecting insertions and all deletions add
    /// **zero** — the counter is how tests prove maintenance stays
    /// proportional to the affected region, not the graph.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Does every edge respect the maintained order? (Test support —
    /// `true` is the structure's invariant.)
    pub fn is_valid(&self) -> bool {
        self.edges().iter().all(|&(f, t)| self.is_before(f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respecting_insertions_cost_zero_ops() {
        let mut t = DynamicTopo::new();
        for k in 0..100u64 {
            t.add_node(k);
        }
        for k in 0..99u64 {
            t.add_edge(k, k + 1).unwrap();
        }
        assert_eq!(t.ops(), 0, "in-order chain never triggers maintenance");
        assert!(t.is_valid());
    }

    #[test]
    fn violating_insertion_reorders_locally() {
        let mut t = DynamicTopo::new();
        for k in 0..50u64 {
            t.add_node(k);
        }
        // Node 49 must now precede node 0: affected region is just the
        // two endpoints (no other node is *connected* to either).
        t.add_edge(49, 0).unwrap();
        assert!(t.is_before(49, 0));
        assert!(t.is_valid());
        assert!(
            t.ops() <= 4,
            "disconnected in-between nodes must not be visited (ops {})",
            t.ops()
        );
    }

    #[test]
    fn cycle_rejection_leaves_everything_unchanged() {
        let mut t = DynamicTopo::new();
        for k in 0..4u64 {
            t.add_node(k);
        }
        t.add_edge(0, 1).unwrap();
        t.add_edge(1, 2).unwrap();
        t.add_edge(2, 3).unwrap();
        let before_edges = t.edges();
        let before_order = t.topo_order();
        assert_eq!(
            t.add_edge(3, 0).unwrap_err(),
            OrderError::Cycle { from: 3, to: 0 }
        );
        assert_eq!(t.edges(), before_edges);
        assert_eq!(t.topo_order(), before_order);
        // Self-edges are cycles too.
        assert!(t.add_edge(2, 2).is_err());
    }

    #[test]
    fn removals_never_reorder() {
        let mut t = DynamicTopo::new();
        for k in 0..6u64 {
            t.add_node(k);
        }
        t.add_edge(5, 0).unwrap(); // violating: forces one reorder
        let ops = t.ops();
        let order = t.topo_order();
        t.remove_edge(5, 0);
        t.remove_node(3);
        assert_eq!(t.ops(), ops, "deletions are free");
        let expect: Vec<u64> = order.into_iter().filter(|&k| k != 3).collect();
        assert_eq!(t.topo_order(), expect);
        assert!(t.is_valid());
    }

    #[test]
    fn missing_nodes_are_reported() {
        let mut t = DynamicTopo::new();
        t.add_node(1u64);
        assert_eq!(t.add_edge(1, 2).unwrap_err(), OrderError::MissingNode(2));
        assert_eq!(t.add_edge(9, 1).unwrap_err(), OrderError::MissingNode(9));
        assert!(!t.remove_edge(1, 2));
        assert!(!t.remove_node(7));
    }
}
