//! The memo [`Store`]: per-task cached fingerprints and outputs, plus
//! the content-hash primitives that define what "unchanged" means.
//!
//! The store is the PIE-style half of the incremental layer: one
//! [`TaskRecord`] per task key, remembering the **fingerprint** the
//! task last ran under and the **output contents** it produced. A
//! re-run validates a task by recomputing its fingerprint from current
//! input contents — if it matches, the cached outputs are spliced in
//! and the task is *not* resubmitted (early cutoff); if not, the task
//! re-executes and the record is refreshed.
//!
//! Everything is expressed over simulated 64-bit *contents*: every
//! (resource, version) has a `u64` content, initial contents derive
//! from a per-resource seed, and task outputs are a pure function of
//! the task's function pointer and its input contents. Fingerprints
//! hash **contents and resource names, never version numbers** — a
//! structural edit that renumbers versions without changing any
//! producer relationship or content is therefore invisible to
//! validation, which is exactly the early-cutoff property the
//! edit-sequence differential pins down.
//!
//! The hash primitives ([`initial_contents`], [`task_output`],
//! [`fingerprint`]) are public: they are the *contract* between the
//! incremental layer and the differential oracle, which shares the
//! hashes but independently re-implements resolution, ordering, and
//! invalidation.

use nexuspp_core::Priority;
use nexuspp_frontend::ResourceId;
use std::collections::HashMap;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic 64-bit hash of a byte string (FNV-1a), the base
/// primitive every content hash builds on. Stable across runs,
/// platforms, and — crucially — across the incremental layer and the
/// test oracle.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold one more 64-bit word into a running hash.
pub fn hash_mix(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The simulated initial contents (version 0) of a resource: a pure
/// function of its *name* and the current initial-contents `seed`
/// (edited by `Edit::SetInitial`).
pub fn initial_contents(name: &str, seed: u64) -> u64 {
    hash_mix(hash_bytes(name.as_bytes()), seed)
}

/// The simulated content a task writes to resource `name`: a pure
/// function of the task's `fptr`, the written resource's name, and the
/// task's input contents in declaration order. Deliberately **not** a
/// function of the task key — re-keying or re-tagging a task does not
/// change what it computes.
pub fn task_output(fptr: u64, name: &str, inputs: &[u64]) -> u64 {
    let mut h = hash_mix(hash_bytes(name.as_bytes()), fptr);
    for &i in inputs {
        h = hash_mix(h, i);
    }
    h
}

/// The validation fingerprint of one task execution: hashes the
/// simulated function (`fptr`), the priority, each read as
/// `(resource-name hash, content)` in declaration order, and each
/// written resource's name hash. Version numbers are absent on
/// purpose — see the [module docs](self).
pub fn fingerprint(
    fptr: u64,
    priority: Priority,
    reads: &[(u64, u64)],
    write_names: &[u64],
) -> u64 {
    let mut h = hash_mix(FNV_OFFSET, fptr);
    h = hash_mix(h, priority as u64);
    h = hash_mix(h, reads.len() as u64);
    for &(name_hash, content) in reads {
        h = hash_mix(h, name_hash);
        h = hash_mix(h, content);
    }
    for &name_hash in write_names {
        h = hash_mix(h, name_hash);
    }
    h
}

/// One task's memo: the fingerprint it last validated or ran under and
/// the contents it produced, keyed by the written resource's id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRecord {
    /// Fingerprint of the last consistent execution (see
    /// [`fingerprint`]).
    pub fingerprint: u64,
    /// Content produced per written resource. Keyed by [`ResourceId`]
    /// (stable across edits), **not** by version (renumbered by
    /// structural edits).
    pub outputs: Vec<(ResourceId, u64)>,
}

impl TaskRecord {
    /// The cached content this task wrote to `r`, if it writes `r`.
    pub fn output(&self, r: ResourceId) -> Option<u64> {
        self.outputs.iter().find(|&&(o, _)| o == r).map(|&(_, c)| c)
    }
}

/// The memo store: task key → [`TaskRecord`]. An empty store makes
/// every task dirty, so a from-scratch run is just the degenerate case
/// of an incremental one.
///
/// The store has a **single writer**: it is mutated only through
/// `IncrementalProgram`'s `&mut self` re-run path, never from executor
/// threads (executors receive pre-planned submissions and report back;
/// the store commit happens on the caller's thread).
#[derive(Debug, Clone, Default)]
pub struct Store {
    records: HashMap<u64, TaskRecord>,
}

impl Store {
    /// An empty store (everything dirty).
    pub fn new() -> Store {
        Store::default()
    }

    /// The record for task `key`, if it has ever run.
    pub fn record(&self, key: u64) -> Option<&TaskRecord> {
        self.records.get(&key)
    }

    /// Insert or replace the record for `key`.
    pub fn put(&mut self, key: u64, record: TaskRecord) {
        self.records.insert(key, record);
    }

    /// Drop the record for `key` (the task was removed or must re-run
    /// unconditionally). Returns `true` if a record existed.
    pub fn evict(&mut self, key: u64) -> bool {
        self.records.remove(&key).is_some()
    }

    /// Drop everything: the next re-run is from scratch.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Number of memoized tasks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// No memoized tasks at all?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic_and_name_sensitive() {
        assert_eq!(hash_bytes(b"grid"), hash_bytes(b"grid"));
        assert_ne!(hash_bytes(b"grid"), hash_bytes(b"grip"));
        assert_ne!(initial_contents("a", 0), initial_contents("a", 1));
        assert_ne!(initial_contents("a", 0), initial_contents("b", 0));
    }

    #[test]
    fn task_output_depends_on_fptr_and_inputs_only() {
        let a = task_output(0x10, "out", &[1, 2]);
        assert_eq!(a, task_output(0x10, "out", &[1, 2]));
        assert_ne!(a, task_output(0x11, "out", &[1, 2]));
        assert_ne!(a, task_output(0x10, "out", &[2, 1]), "input order matters");
        assert_ne!(a, task_output(0x10, "out2", &[1, 2]));
    }

    #[test]
    fn fingerprint_sees_contents_not_versions() {
        let n = hash_bytes(b"x");
        let f = fingerprint(7, Priority::Normal, &[(n, 100)], &[n]);
        // Same contents, same fingerprint — no version number anywhere
        // to disagree on.
        assert_eq!(f, fingerprint(7, Priority::Normal, &[(n, 100)], &[n]));
        assert_ne!(f, fingerprint(7, Priority::Normal, &[(n, 101)], &[n]));
        assert_ne!(f, fingerprint(7, Priority::High, &[(n, 100)], &[n]));
        assert_ne!(f, fingerprint(8, Priority::Normal, &[(n, 100)], &[n]));
    }

    #[test]
    fn store_roundtrips_and_evicts() {
        let mut s = Store::new();
        assert!(s.is_empty());
        let rec = TaskRecord {
            fingerprint: 42,
            outputs: vec![(ResourceId(3), 99)],
        };
        s.put(7, rec.clone());
        assert_eq!(s.len(), 1);
        assert_eq!(s.record(7), Some(&rec));
        assert_eq!(s.record(7).unwrap().output(ResourceId(3)), Some(99));
        assert_eq!(s.record(7).unwrap().output(ResourceId(4)), None);
        assert!(s.evict(7));
        assert!(!s.evict(7));
        s.put(1, rec);
        s.clear();
        assert!(s.is_empty());
    }
}
