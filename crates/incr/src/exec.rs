//! Re-running an [`IncrementalProgram`] on the Nexus++ backends.
//!
//! [`IncrementalProgram::rerun`] is the tentpole operation: walk the
//! dirty cone in the maintained dependency order, validate each member
//! against its memo (content fingerprints, so renumbered-but-equal
//! bindings cut off early), and resubmit **only the invalidated tasks**
//! as a *partial* lowered stream to the chosen [`Backend`] — the batch
//! engine, the concurrent dispatcher, or the threaded runtime. Cached
//! outputs of clean producers are spliced in as already-available
//! inputs, so a re-run's cost scales with the edit, not the program.
//!
//! # Why partial streams are safe
//!
//! The engines resolve dependencies by submission-order address
//! matching. A partial stream emitted in (maintained) topological order
//! preserves every true edge *between resubmitted tasks*: producers
//! precede consumers, and their (resource, version) addresses — the
//! frontend's public [`Lowering::address`] contract — match exactly.
//! Addresses of clean producers simply never appear, so their consumers
//! start dependency-free, which is correct because their inputs are
//! memoized contents, not pending writes. Under the raw lowering the
//! collapsed per-resource addresses add extra serialization, but only
//! *backwards* (earlier submissions), i.e. a superset of the true edges
//! — acyclic and semantically safe, exactly as in full-program lowering.
//!
//! # The live splice proof
//!
//! The [`Backend::Runtime`] path does not just schedule dummy bodies:
//! every resubmitted task's closure *computes its outputs* from a
//! shared content map seeded with the spliced memoized inputs, on the
//! runtime's worker threads, ordered only by the engines' dependency
//! tracking. After the barrier, the concurrently computed contents must
//! equal the memoized plan — a live end-to-end check that splicing
//! cached outputs under partial resubmission preserves the dataflow.
//! The validation walk itself holds **no shard locks**: it runs
//! entirely on the caller's thread before anything is submitted.

use crate::program::IncrementalProgram;
use crate::store::{self, TaskRecord};
use nexuspp_core::{Priority, Submission, TaskBuilder};
use nexuspp_frontend::exec::{run_on_dispatcher, run_on_engine};
use nexuspp_frontend::{LoweredProgram, Lowering, ResourceId, Version};
use nexuspp_runtime::ShardedRuntime;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Which execution backend a re-run resubmits invalidated tasks to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The batch-style sharded engine, drained single-threadedly.
    Engine {
        /// Number of dependence-table shards.
        shards: usize,
    },
    /// The concurrent shard dispatcher with finisher worker threads.
    Dispatcher {
        /// Number of dependence-table shards.
        shards: usize,
        /// Number of finisher workers.
        workers: usize,
    },
    /// The full threaded runtime; task bodies compute contents live
    /// (see the [module docs](self)).
    Runtime {
        /// Number of worker threads.
        workers: usize,
        /// Number of dependence-table shards.
        shards: usize,
    },
}

impl Backend {
    /// Stable label (used by benchmarks and reports).
    pub fn name(&self) -> String {
        match self {
            Backend::Engine { shards } => format!("engine/{shards}"),
            Backend::Dispatcher { shards, workers } => format!("dispatcher/{shards}x{workers}"),
            Backend::Runtime { workers, shards } => format!("runtime/{workers}w{shards}s"),
        }
    }
}

/// What one [`rerun`](IncrementalProgram::rerun) did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrReport {
    /// Tasks currently declared.
    pub total: usize,
    /// Size of the structural dirty cone the walk validated (touched
    /// keys plus forward closure).
    pub dirtied: usize,
    /// Tasks whose fingerprint changed: re-executed on the backend.
    pub reran: usize,
    /// Tasks spliced from the memo store (`reused + reran == total`,
    /// always).
    pub reused: usize,
    /// Pearce–Kelly maintenance work (nodes visited + shifted) spent by
    /// the edits since the previous report — the online-ordering cost
    /// of this round of edits.
    pub order_maintenance_ops: u64,
    /// Keys of the re-executed tasks, sorted.
    pub reran_keys: Vec<u64>,
    /// Backend execution order of the re-executed tasks (tags, in the
    /// order they actually ran).
    pub executed: Vec<u64>,
}

/// One invalidated task, fully planned (inputs resolved, outputs
/// recomputed) before anything touches a backend.
struct Plan {
    key: u64,
    fptr: u64,
    priority: Priority,
    /// Resolved reads, self-reads of the task's own mints excluded
    /// (their content is the task's own output — circular, and never
    /// an edge in the frontend either).
    reads: Vec<(ResourceId, Version)>,
    writes: Vec<(ResourceId, Version)>,
}

impl IncrementalProgram {
    /// Validate the dirty cone and re-execute exactly the invalidated
    /// tasks on `backend`, splicing memoized outputs for everything
    /// else. With an empty memo store this degenerates to a full
    /// from-scratch run; with no pending edits it is a no-op that
    /// touches no backend at all.
    ///
    /// The walk proceeds in the maintained topological order, so every
    /// task's inputs are resolved (memoized or just recomputed) before
    /// the task itself is validated. Store mutation happens here, on
    /// the caller's thread, under `&mut self` — the single-writer rule.
    pub fn rerun(&mut self, lowering: Lowering, backend: &Backend) -> IncrReport {
        let total = self.len();
        let mut cone = self.dirty_cone();
        let dirtied = cone.len();
        cone.sort_by_key(|&k| self.topo().ord(k).expect("cone keys are declared tasks"));

        // Phase 1 (caller thread, no locks): validate the cone in
        // dependency order, recompute what changed, refresh memos.
        let mut plans: Vec<Plan> = Vec::new();
        for &key in &cone {
            let d = self.resolved[&key].clone();
            let reads: Vec<(ResourceId, Version)> = d
                .reads
                .iter()
                .copied()
                .filter(|rv| self.producers.get(rv) != Some(&key))
                .collect();
            let inputs: Vec<u64> = reads.iter().map(|&(r, v)| self.content_of(r, v)).collect();
            let read_pairs: Vec<(u64, u64)> = reads
                .iter()
                .zip(&inputs)
                .map(|(&(r, _), &c)| (self.name_hashes[r.0 as usize], c))
                .collect();
            let write_hashes: Vec<u64> = d
                .writes
                .iter()
                .map(|&(r, _)| self.name_hashes[r.0 as usize])
                .collect();
            let fp = store::fingerprint(d.fptr, d.priority, &read_pairs, &write_hashes);
            if self.store.record(key).map(|rec| rec.fingerprint) == Some(fp) {
                continue; // early cutoff: the memo stands
            }
            let outputs: Vec<(ResourceId, u64)> = d
                .writes
                .iter()
                .map(|&(r, _)| {
                    let name = self.resource_name(r);
                    (r, store::task_output(d.fptr, name, &inputs))
                })
                .collect();
            self.store.put(
                key,
                TaskRecord {
                    fingerprint: fp,
                    outputs,
                },
            );
            plans.push(Plan {
                key,
                fptr: d.fptr,
                priority: d.priority,
                reads,
                writes: d.writes.clone(),
            });
        }

        // Phase 2: resubmit the invalidated tasks as a partial lowered
        // stream (already in maintained topological order).
        let reran_keys: Vec<u64> = plans.iter().map(|p| p.key).collect();
        let reran_set: BTreeSet<u64> = reran_keys.iter().copied().collect();
        let executed = if plans.is_empty() {
            Vec::new()
        } else {
            let partial = self.partial_stream(&plans, lowering, &reran_set);
            let executed = match *backend {
                Backend::Engine { shards } => run_on_engine(&partial, shards),
                Backend::Dispatcher { shards, workers } => {
                    run_on_dispatcher(&partial, shards, workers)
                }
                Backend::Runtime { workers, shards } => {
                    self.run_spliced_on_runtime(&plans, &partial, workers, shards)
                }
            };
            let got: BTreeSet<u64> = executed.iter().copied().collect();
            assert_eq!(got, reran_set, "backend ran exactly the invalidated tasks");
            assert!(
                partial.order_respects_edges(&executed),
                "partial resubmission respected every true edge among reran tasks"
            );
            executed
        };

        let ops_total = self.topo().ops();
        let report = IncrReport {
            total,
            dirtied,
            reran: plans.len(),
            reused: total - plans.len(),
            order_maintenance_ops: ops_total - self.ops_reported,
            reran_keys: {
                let mut v = reran_keys;
                v.sort_unstable();
                v
            },
            executed,
        };
        self.ops_reported = ops_total;
        self.touched.clear();
        if let Some(g) = &self.metrics {
            let bump = |name: &str, v: u64| {
                if let Some(c) = g.counter(name) {
                    c.add(v);
                }
            };
            bump("runs", 1);
            bump("total", report.total as u64);
            bump("dirtied", report.dirtied as u64);
            bump("reran", report.reran as u64);
            bump("reused", report.reused as u64);
            bump("order_ops", report.order_maintenance_ops);
        }
        report
    }

    /// Build the partial lowered stream for the invalidated tasks: one
    /// submission per plan under the frontend's public address mapping,
    /// plus the true edges *among* reran tasks (for order checking).
    fn partial_stream(
        &self,
        plans: &[Plan],
        lowering: Lowering,
        reran: &BTreeSet<u64>,
    ) -> LoweredProgram {
        let tasks: Vec<Submission> = plans
            .iter()
            .map(|p| {
                let mut b = TaskBuilder::new(p.fptr).tag(p.key).priority(p.priority);
                for &(r, v) in &p.reads {
                    b = b.reads(lowering.address(r, v), self.program.resource_size(r));
                }
                for &(r, v) in &p.writes {
                    b = b.writes(lowering.address(r, v), self.program.resource_size(r));
                }
                b.build()
            })
            .collect();
        let edges: Vec<(u64, u64)> = self
            .edges
            .iter()
            .copied()
            .filter(|(f, t)| reran.contains(f) && reran.contains(t))
            .collect();
        LoweredProgram {
            lowering,
            tasks,
            edges,
        }
    }

    /// The live splice run (see the [module docs](self)): spawn every
    /// invalidated task on the threaded runtime with a body that
    /// computes its outputs from a shared content map seeded with the
    /// memoized inputs of clean producers, then assert the concurrent
    /// result equals the memoized plan.
    fn run_spliced_on_runtime(
        &self,
        plans: &[Plan],
        partial: &LoweredProgram,
        workers: usize,
        shards: usize,
    ) -> Vec<u64> {
        // Seed the map with every input *not* produced within this
        // partial stream — the splice of memoized contents.
        let produced: HashSet<(ResourceId, Version)> = plans
            .iter()
            .flat_map(|p| p.writes.iter().copied())
            .collect();
        let mut seed: HashMap<(ResourceId, Version), u64> = HashMap::new();
        for p in plans {
            for &(r, v) in &p.reads {
                if !produced.contains(&(r, v)) {
                    seed.insert((r, v), self.content_of(r, v));
                }
            }
        }
        let map = Arc::new(Mutex::new(seed));
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(plans.len())));
        let rt = ShardedRuntime::new(workers, shards);
        for (p, sub) in plans.iter().zip(partial.tasks.iter().cloned()) {
            let (map, log) = (Arc::clone(&map), Arc::clone(&log));
            let (key, fptr) = (p.key, p.fptr);
            let reads = p.reads.clone();
            let writes = p.writes.clone();
            let names: Vec<String> = p
                .writes
                .iter()
                .map(|&(r, _)| self.resource_name(r).to_string())
                .collect();
            rt.spawn_lowered(sub, move || {
                let mut m = map.lock();
                let inputs: Vec<u64> = reads
                    .iter()
                    .map(|rv| {
                        *m.get(rv)
                            .expect("input available: spliced or produced by a predecessor")
                    })
                    .collect();
                for (&(r, v), name) in writes.iter().zip(&names) {
                    m.insert((r, v), store::task_output(fptr, name, &inputs));
                }
                log.lock().push(key);
            });
        }
        rt.barrier();
        let m = map.lock();
        for p in plans {
            let rec = self.store.record(p.key).expect("just memoized");
            for &(r, v) in &p.writes {
                assert_eq!(
                    m.get(&(r, v)).copied(),
                    rec.output(r),
                    "live spliced run diverged from the memoized plan at ({r:?}, v{v})"
                );
            }
        }
        drop(m);
        let order = log.lock().clone();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Access, Edit};

    fn add(key: u64, fptr: u64, accesses: Vec<Access>) -> Edit {
        Edit::AddTask {
            key,
            fptr,
            priority: Priority::Normal,
            accesses,
        }
    }

    fn diamond() -> IncrementalProgram {
        let mut ip = IncrementalProgram::new();
        ip.edit(add(
            0,
            0x10,
            vec![Access::Read("in".into()), Access::Write("a".into())],
        ))
        .unwrap();
        ip.edit(add(
            1,
            0x11,
            vec![Access::Read("a".into()), Access::Write("b".into())],
        ))
        .unwrap();
        ip.edit(add(
            2,
            0x12,
            vec![Access::Read("a".into()), Access::Write("c".into())],
        ))
        .unwrap();
        ip.edit(add(
            3,
            0x13,
            vec![
                Access::Read("b".into()),
                Access::Read("c".into()),
                Access::Write("out".into()),
            ],
        ))
        .unwrap();
        ip
    }

    #[test]
    fn first_rerun_is_from_scratch_then_noop() {
        for backend in [
            Backend::Engine { shards: 2 },
            Backend::Dispatcher {
                shards: 2,
                workers: 2,
            },
            Backend::Runtime {
                workers: 2,
                shards: 2,
            },
        ] {
            let mut ip = diamond();
            let r1 = ip.rerun(Lowering::Renamed, &backend);
            assert_eq!(
                (r1.total, r1.reran, r1.reused),
                (4, 4, 0),
                "{}",
                backend.name()
            );
            assert_eq!(r1.reran + r1.reused, r1.total);
            let r2 = ip.rerun(Lowering::Renamed, &backend);
            assert_eq!((r2.reran, r2.reused, r2.dirtied), (0, 4, 0));
            assert!(r2.executed.is_empty());
        }
    }

    #[test]
    fn one_edit_reruns_only_the_cone() {
        let mut ip = diamond();
        ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        let before = ip.final_contents();
        ip.edit(Edit::SetInitial {
            resource: "in".into(),
            seed: 42,
        })
        .unwrap();
        let r = ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        assert_eq!(
            r.reran_keys,
            vec![0, 1, 2, 3],
            "whole diamond depends on in"
        );
        let after = ip.final_contents();
        assert_ne!(before, after);

        // An edit to a leaf output's producer function: only the sink
        // re-runs beyond it.
        ip.edit(Edit::Retarget {
            key: 1,
            accesses: vec![Access::Read("a".into()), Access::Write("b".into())],
        })
        .unwrap();
        let r = ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        // Retarget with identical accesses: in the cone, but contents
        // unchanged — early cutoff everywhere.
        assert_eq!(r.reran, 0);
        assert!(r.dirtied >= 1);
        assert_eq!(ip.final_contents(), after);
    }

    #[test]
    fn raw_lowering_partial_streams_agree_with_renamed() {
        for backend in [
            Backend::Engine { shards: 2 },
            Backend::Runtime {
                workers: 3,
                shards: 2,
            },
        ] {
            let mut a = diamond();
            let mut b = diamond();
            a.rerun(Lowering::Renamed, &backend);
            b.rerun(Lowering::Raw, &backend);
            for ip in [&mut a, &mut b] {
                ip.edit(Edit::SetInitial {
                    resource: "in".into(),
                    seed: 9,
                })
                .unwrap();
            }
            a.rerun(Lowering::Renamed, &backend);
            b.rerun(Lowering::Raw, &backend);
            assert_eq!(a.final_contents(), b.final_contents(), "{}", backend.name());
        }
    }

    #[test]
    fn invalidate_all_matches_incremental_contents() {
        let mut inc = diamond();
        inc.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        inc.edit(Edit::SetInitial {
            resource: "in".into(),
            seed: 5,
        })
        .unwrap();
        inc.edit(add(
            4,
            0x20,
            vec![Access::Read("out".into()), Access::Write("post".into())],
        ))
        .unwrap();
        let r = inc.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        assert!(r.reran > 0);

        let mut scratch = diamond();
        scratch
            .edit(Edit::SetInitial {
                resource: "in".into(),
                seed: 5,
            })
            .unwrap();
        scratch
            .edit(add(
                4,
                0x20,
                vec![Access::Read("out".into()), Access::Write("post".into())],
            ))
            .unwrap();
        let rs = scratch.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        assert_eq!(rs.reran, 5, "empty store reruns everything");
        assert_eq!(inc.final_contents(), scratch.final_contents());

        // invalidate_all on the incremental copy: same contents again.
        inc.invalidate_all();
        let rf = inc.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        assert_eq!(rf.reran, 5);
        assert_eq!(inc.final_contents(), scratch.final_contents());
    }

    #[test]
    fn metrics_funnel_adds_up() {
        use nexuspp_obs::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut ip = diamond();
        ip.register_metrics(&reg, "incr");
        ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        ip.edit(Edit::SetInitial {
            resource: "in".into(),
            seed: 3,
        })
        .unwrap();
        ip.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
        let snap = reg.snapshot();
        assert_eq!(snap.get("incr", "runs"), Some(2));
        assert_eq!(
            snap.get("incr", "reran").unwrap() + snap.get("incr", "reused").unwrap(),
            snap.get("incr", "total").unwrap(),
            "reran + reused == total, cumulatively"
        );
    }
}
