//! # nexuspp-incr — the incremental re-execution layer
//!
//! Every layer below this crate answers "run this program"; this crate
//! answers **"run this program *again*, after an edit"** — without
//! paying for the parts that didn't change. It is a PIE-style
//! memoized-build layer grafted onto the resource-versioning frontend:
//!
//! * [`Store`] — the memo: per-task fingerprints and cached output
//!   contents, keyed by stable task keys and [`ResourceId`]s so
//!   structural edits (which renumber versions) never invalidate by
//!   accident. The hash primitives ([`store::initial_contents`],
//!   [`store::task_output`], [`store::fingerprint`]) are public — they
//!   are the contract the differential-test oracle shares.
//! * [`DynamicTopo`] — a Pearce–Kelly **dynamic topological order** over
//!   the task graph: edits insert and delete nodes/edges online, paying
//!   only for the affected region, with cycle-creating insertions
//!   detected and rejected *at declaration time* before any state
//!   mutates. The full order is never recomputed.
//! * [`IncrementalProgram`] — the editable program: apply [`Edit`]s
//!   (initial-contents changes, task add/remove/retarget; all-or-nothing
//!   commit), then [`rerun`](IncrementalProgram::rerun) resubmits only
//!   the invalidated cone to any [`Backend`] (batch engine, concurrent
//!   dispatcher, or threaded runtime — where re-run bodies compute
//!   contents live against spliced memoized inputs). Each run reports an
//!   [`IncrReport`] and can feed live counters into a
//!   [`MetricsRegistry`](nexuspp_obs::MetricsRegistry).
//!
//! A from-scratch execution is just the degenerate case: an empty store
//! dirties everything, so the very first `rerun` runs the whole
//! program.
//!
//! ```
//! use nexuspp_incr::{Access, Backend, Edit, IncrementalProgram};
//! use nexuspp_frontend::Lowering;
//!
//! let mut ip = IncrementalProgram::new();
//! // in -> blur -> sharpen -> out, as edits against the empty program.
//! ip.edit(Edit::AddTask {
//!     key: 1,
//!     fptr: 0x10,
//!     priority: Default::default(),
//!     accesses: vec![Access::Read("in".into()), Access::Write("mid".into())],
//! })
//! .unwrap();
//! ip.edit(Edit::AddTask {
//!     key: 2,
//!     fptr: 0x11,
//!     priority: Default::default(),
//!     accesses: vec![Access::Read("mid".into()), Access::Write("out".into())],
//! })
//! .unwrap();
//!
//! let backend = Backend::Engine { shards: 2 };
//! let first = ip.rerun(Lowering::Renamed, &backend);
//! assert_eq!(first.reran, 2); // empty store: from scratch
//!
//! // Change the input; both tasks are downstream, so both re-run...
//! ip.edit(Edit::SetInitial { resource: "in".into(), seed: 7 }).unwrap();
//! let second = ip.rerun(Lowering::Renamed, &backend);
//! assert_eq!(second.reran, 2);
//!
//! // ...but an untouched re-run reuses everything and skips the
//! // backend entirely.
//! let third = ip.rerun(Lowering::Renamed, &backend);
//! assert_eq!((third.reran, third.reused), (0, 2));
//! ```

#![deny(missing_docs)]

pub mod exec;
pub mod order;
pub mod program;
pub mod store;

pub use exec::{Backend, IncrReport};
pub use order::{DynamicTopo, OrderError};
pub use program::{Access, Edit, IncrError, IncrementalProgram, METRIC_NAMES};
pub use store::{Store, TaskRecord};

// Re-exported so doctests and downstream callers can name the id type
// without an explicit frontend dependency.
pub use nexuspp_frontend::ResourceId;
