//! The incremental layer's differential bar: **incremental re-run ≡
//! from-scratch ≡ oracle**, after *every* edit of a random edit
//! sequence, across both lowerings and every backend.
//!
//! A random resource program is grown and mutated by a random sequence
//! of edits (initial-contents changes, task adds/removes/retargets,
//! including pin-driven edits that attempt to create cycles). The same
//! concretized edit stream drives, in lockstep:
//!
//! * eight independent [`IncrementalProgram`] instances — one per
//!   (lowering ∈ {renamed, raw}) × (backend ∈ {engine, dispatcher,
//!   runtime×1 worker, runtime×4 workers}) combination — each re-run
//!   after every edit;
//! * an **oracle**: an independent reimplementation of the versioning
//!   semantics (its own binding resolution, producer map, cycle check
//!   via a fresh Kahn sort, and from-scratch content evaluation) that
//!   shares only the public hash primitives of [`nexuspp_incr::store`];
//! * a **from-scratch comparator**: a fresh `IncrementalProgram` fed
//!   the entire edit history and re-run once on an empty store (the
//!   degenerate case).
//!
//! After every edit, all three views must agree on (a) whether the edit
//! commits (and on the error kind when it does not), (b) the final
//! contents of every resource, and (c) the re-executed set: the keys an
//! incremental re-run actually resubmits must equal **exactly** the
//! oracle's semantically dirty set — the tasks whose independently
//! recomputed fingerprints changed — which is the dirty cone minus the
//! early-cutoff survivors, and always a subset of the structural cone
//! the report counts as `dirtied`.

use nexuspp_core::Priority;
use nexuspp_frontend::Lowering;
use nexuspp_incr::store::{fingerprint, hash_bytes, initial_contents, task_output};
use nexuspp_incr::{Access, Backend, Edit, IncrError, IncrementalProgram};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

const RESOURCES: u8 = 4;

fn rname(r: u8) -> String {
    format!("r{r}")
}

/// Generator-level access: pins carry a raw selector, concretized
/// against the live version history at application time.
#[derive(Debug, Clone, Copy)]
enum GenAcc {
    Read(u8),
    Write(u8),
    ReadWrite(u8),
    Pin(u8, u16),
}

/// Generator-level edit: task picks are raw selectors into the live
/// key set, so removals and retargets always hit declared tasks.
#[derive(Debug, Clone)]
enum GenEdit {
    SetInitial(u8, u64),
    AddTask { accs: Vec<GenAcc>, high: bool },
    RemoveTask(u16),
    Retarget { which: u16, accs: Vec<GenAcc> },
}

fn acc_strategy() -> impl Strategy<Value = GenAcc> {
    let r = 0..RESOURCES;
    prop_oneof![
        r.clone().prop_map(GenAcc::Read),
        r.clone().prop_map(GenAcc::Write),
        r.clone().prop_map(GenAcc::ReadWrite),
        (r, any::<u16>()).prop_map(|(a, s)| GenAcc::Pin(a, s)),
    ]
}

fn edit_strategy() -> impl Strategy<Value = GenEdit> {
    let accs = || prop::collection::vec(acc_strategy(), 1..=3);
    prop_oneof![
        (0..RESOURCES, any::<u64>()).prop_map(|(r, s)| GenEdit::SetInitial(r, s)),
        // Adds appear three times so programs actually grow.
        (accs(), any::<bool>()).prop_map(|(accs, high)| GenEdit::AddTask { accs, high }),
        (accs(), any::<bool>()).prop_map(|(accs, high)| GenEdit::AddTask { accs, high }),
        (accs(), any::<bool>()).prop_map(|(accs, high)| GenEdit::AddTask { accs, high }),
        any::<u16>().prop_map(GenEdit::RemoveTask),
        (any::<u16>(), accs()).prop_map(|(which, accs)| GenEdit::Retarget { which, accs }),
    ]
}

/// One declaration as the oracle keeps it (symbolic, name-based).
#[derive(Debug, Clone)]
struct ODecl {
    key: u64,
    fptr: u64,
    priority: Priority,
    accs: Vec<Access>,
}

/// One declaration after the oracle's own binding resolution.
struct OResolved {
    key: u64,
    fptr: u64,
    priority: Priority,
    reads: Vec<(String, u32)>,
    writes: Vec<(String, u32)>,
}

/// The oracle's view of a fully resolved declaration list.
struct OState {
    resolved: Vec<OResolved>,
    producers: HashMap<(String, u32), u64>,
    latest: BTreeMap<String, u32>,
    edges: BTreeSet<(u64, u64)>,
}

/// What the oracle predicts an edit application returns.
#[derive(Debug, PartialEq, Eq)]
enum OVerdict {
    Ok,
    UnknownProducer,
    Cycle,
}

/// Independent reimplementation of the incremental semantics: its own
/// resolution, validation, and from-scratch evaluation. Shares only the
/// public hash primitives with the layer under test.
struct Oracle {
    seeds: BTreeMap<String, u64>,
    decls: Vec<ODecl>,
    /// key → fingerprint as of the last run (independently computed).
    last_fp: BTreeMap<u64, u64>,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            seeds: BTreeMap::new(),
            decls: Vec::new(),
            last_fp: BTreeMap::new(),
        }
    }

    /// Mirror of the frontend's two-pass binding resolution, in names.
    fn resolve(decls: &[ODecl]) -> OState {
        let mut latest: BTreeMap<String, u32> = BTreeMap::new();
        let mut producers: HashMap<(String, u32), u64> = HashMap::new();
        let mut resolved = Vec::new();
        for d in decls {
            let mut reads: Vec<(String, u32)> = Vec::new();
            let mut writes: Vec<(String, u32)> = Vec::new();
            for a in &d.accs {
                let rv = match a {
                    Access::Read(n) | Access::ReadWrite(n) => {
                        Some((n.clone(), *latest.get(n).unwrap_or(&0)))
                    }
                    Access::ReadVersion(n, v) => Some((n.clone(), *v)),
                    Access::Write(_) => None,
                };
                if let Some(rv) = rv {
                    if !reads.contains(&rv) {
                        reads.push(rv);
                    }
                }
            }
            for a in &d.accs {
                if let Access::Write(n) | Access::ReadWrite(n) = a {
                    if !writes.iter().any(|(w, _)| w == n) {
                        let l = latest.entry(n.clone()).or_insert(0);
                        *l += 1;
                        writes.push((n.clone(), *l));
                        producers.insert((n.clone(), *l), d.key);
                    }
                }
            }
            resolved.push(OResolved {
                key: d.key,
                fptr: d.fptr,
                priority: d.priority,
                reads,
                writes,
            });
        }
        let mut edges = BTreeSet::new();
        for r in &resolved {
            for (n, v) in &r.reads {
                if *v == 0 {
                    continue;
                }
                if let Some(&p) = producers.get(&(n.clone(), *v)) {
                    if p != r.key {
                        edges.insert((p, r.key));
                    }
                }
            }
        }
        OState {
            resolved,
            producers,
            latest,
            edges,
        }
    }

    /// Producer completeness first, then acyclicity by a fresh Kahn
    /// sort — the same order the layer under test checks in.
    fn validate(st: &OState) -> OVerdict {
        for r in &st.resolved {
            for (n, v) in &r.reads {
                if *v > 0 && !st.producers.contains_key(&(n.clone(), *v)) {
                    return OVerdict::UnknownProducer;
                }
            }
        }
        let keys: BTreeSet<u64> = st.resolved.iter().map(|r| r.key).collect();
        let mut indeg: BTreeMap<u64, usize> = keys.iter().map(|&k| (k, 0)).collect();
        for &(_, t) in &st.edges {
            *indeg.get_mut(&t).expect("endpoint declared") += 1;
        }
        let mut ready: Vec<u64> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&k, _)| k)
            .collect();
        let mut seen = 0usize;
        while let Some(k) = ready.pop() {
            seen += 1;
            for &(_, t) in st.edges.range((k, 0)..=(k, u64::MAX)) {
                let d = indeg.get_mut(&t).expect("endpoint");
                *d -= 1;
                if *d == 0 {
                    ready.push(t);
                }
            }
        }
        if seen < keys.len() {
            OVerdict::Cycle
        } else {
            OVerdict::Ok
        }
    }

    /// Predict and (on success) commit one edit.
    fn try_edit(&mut self, e: &Edit) -> OVerdict {
        let mut scratch = self.decls.clone();
        match e {
            Edit::SetInitial { resource, seed } => {
                self.seeds.insert(resource.clone(), *seed);
                return OVerdict::Ok;
            }
            Edit::AddTask {
                key,
                fptr,
                priority,
                accesses,
            } => scratch.push(ODecl {
                key: *key,
                fptr: *fptr,
                priority: *priority,
                accs: accesses.clone(),
            }),
            Edit::RemoveTask { key } => scratch.retain(|d| d.key != *key),
            Edit::Retarget { key, accesses } => {
                let d = scratch
                    .iter_mut()
                    .find(|d| d.key == *key)
                    .expect("driver picks declared keys");
                d.accs = accesses.clone();
            }
        }
        let st = Self::resolve(&scratch);
        let verdict = Self::validate(&st);
        if verdict == OVerdict::Ok {
            self.decls = scratch;
        }
        verdict
    }

    fn seed_of(&self, name: &str) -> u64 {
        self.seeds.get(name).copied().unwrap_or(0)
    }

    /// From-scratch evaluation: contents of every (name, version),
    /// fingerprints of every task, and the semantically dirty set
    /// relative to the previous run. Updates the remembered
    /// fingerprints.
    fn run(&mut self) -> (HashMap<String, u64>, Vec<u64>) {
        let st = Self::resolve(&self.decls);
        assert_eq!(Self::validate(&st), OVerdict::Ok, "committed state valid");
        // Any topological order works (evaluation is functional); use
        // repeated sweeps until fixpoint over a work list to avoid
        // writing a third Kahn.
        let mut contents: HashMap<(String, u32), u64> = HashMap::new();
        let mut fps: BTreeMap<u64, u64> = BTreeMap::new();
        let mut pending: Vec<&OResolved> = st.resolved.iter().collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|r| {
                // A read of the task's own mint is circular and ignored
                // (mirrors the layer under test and the frontend's
                // no-self-edge rule).
                let ereads: Vec<&(String, u32)> = r
                    .reads
                    .iter()
                    .filter(|(n, v)| st.producers.get(&(n.clone(), *v)) != Some(&r.key))
                    .collect();
                let ready = ereads
                    .iter()
                    .all(|(n, v)| *v == 0 || contents.contains_key(&(n.clone(), *v)));
                if !ready {
                    return true; // keep pending
                }
                let inputs: Vec<u64> = ereads
                    .iter()
                    .map(|(n, v)| {
                        if *v == 0 {
                            initial_contents(n, self.seed_of(n))
                        } else {
                            contents[&(n.clone(), *v)]
                        }
                    })
                    .collect();
                let read_pairs: Vec<(u64, u64)> = ereads
                    .iter()
                    .zip(&inputs)
                    .map(|((n, _), &c)| (hash_bytes(n.as_bytes()), c))
                    .collect();
                let write_hashes: Vec<u64> = r
                    .writes
                    .iter()
                    .map(|(n, _)| hash_bytes(n.as_bytes()))
                    .collect();
                fps.insert(
                    r.key,
                    fingerprint(r.fptr, r.priority, &read_pairs, &write_hashes),
                );
                for (n, v) in &r.writes {
                    contents.insert((n.clone(), *v), task_output(r.fptr, n, &inputs));
                }
                false
            });
            assert!(pending.len() < before, "acyclic program always progresses");
        }
        let dirty: Vec<u64> = fps
            .iter()
            .filter(|(k, fp)| self.last_fp.get(k) != Some(fp))
            .map(|(&k, _)| k)
            .collect();
        self.last_fp = fps;
        // Final contents per name: latest version's content.
        let mut finals: HashMap<String, u64> = HashMap::new();
        let mut names: BTreeSet<String> = self.seeds.keys().cloned().collect();
        names.extend(st.latest.keys().cloned());
        for name in names {
            let v = st.latest.get(&name).copied().unwrap_or(0);
            let c = if v == 0 {
                initial_contents(&name, self.seed_of(&name))
            } else {
                contents[&(name.clone(), v)]
            };
            finals.insert(name, c);
        }
        (finals, dirty)
    }

    /// The oracle's content for any name (defaults for names it never
    /// saw — e.g. interned by a *rejected* edit of the layer under
    /// test).
    fn content_of_name(&self, finals: &HashMap<String, u64>, name: &str) -> u64 {
        finals
            .get(name)
            .copied()
            .unwrap_or_else(|| initial_contents(name, self.seed_of(name)))
    }
}

/// Concretize a generated edit against the oracle's current state (the
/// single source of truth all instances then receive verbatim).
fn concretize(e: &GenEdit, oracle: &Oracle, next_key: &mut u64) -> Option<Edit> {
    let st = Oracle::resolve(&oracle.decls);
    let to_access = |a: &GenAcc| match a {
        GenAcc::Read(r) => Access::Read(rname(*r)),
        GenAcc::Write(r) => Access::Write(rname(*r)),
        GenAcc::ReadWrite(r) => Access::ReadWrite(rname(*r)),
        GenAcc::Pin(r, s) => {
            let latest = st.latest.get(&rname(*r)).copied().unwrap_or(0);
            Access::ReadVersion(rname(*r), u32::from(*s) % (latest + 1))
        }
    };
    match e {
        GenEdit::SetInitial(r, s) => Some(Edit::SetInitial {
            resource: rname(*r),
            seed: *s,
        }),
        GenEdit::AddTask { accs, high } => {
            let key = *next_key;
            *next_key += 1;
            Some(Edit::AddTask {
                key,
                fptr: 0x9000 + (key % 5) * 0x10,
                priority: if *high {
                    Priority::High
                } else {
                    Priority::Normal
                },
                accesses: accs.iter().map(to_access).collect(),
            })
        }
        GenEdit::RemoveTask(w) => {
            if oracle.decls.is_empty() {
                return None;
            }
            let key = oracle.decls[*w as usize % oracle.decls.len()].key;
            Some(Edit::RemoveTask { key })
        }
        GenEdit::Retarget { which, accs } => {
            if oracle.decls.is_empty() {
                return None;
            }
            let key = oracle.decls[*which as usize % oracle.decls.len()].key;
            Some(Edit::Retarget {
                key,
                accesses: accs.iter().map(to_access).collect(),
            })
        }
    }
}

fn combos() -> Vec<(Lowering, Backend)> {
    let mut v = Vec::new();
    for lowering in [Lowering::Renamed, Lowering::Raw] {
        for backend in [
            Backend::Engine { shards: 2 },
            Backend::Dispatcher {
                shards: 2,
                workers: 2,
            },
            Backend::Runtime {
                workers: 1,
                shards: 2,
            },
            Backend::Runtime {
                workers: 4,
                shards: 2,
            },
        ] {
            v.push((lowering, backend));
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn edit_sequences_rerun_exactly_the_dirty_set(
        edits in prop::collection::vec(edit_strategy(), 1..=14)
    ) {
        let mut oracle = Oracle::new();
        let mut instances: Vec<(Lowering, Backend, IncrementalProgram)> = combos()
            .into_iter()
            .map(|(l, b)| (l, b, IncrementalProgram::new()))
            .collect();
        let mut history: Vec<Edit> = Vec::new();
        let mut next_key = 0u64;

        for gen_edit in &edits {
            let Some(edit) = concretize(gen_edit, &oracle, &mut next_key) else {
                continue;
            };
            history.push(edit.clone());
            let verdict = oracle.try_edit(&edit);

            // (a) Accept/reject agreement, including the error kind.
            for (_, _, ip) in &mut instances {
                match (ip.edit(edit.clone()), &verdict) {
                    (Ok(()), OVerdict::Ok) => {}
                    (Err(IncrError::UnknownProducer { .. }), OVerdict::UnknownProducer) => {}
                    (Err(IncrError::Cycle { .. }), OVerdict::Cycle) => {}
                    (got, want) => prop_assert!(
                        false,
                        "verdict mismatch for {edit:?}: got {got:?}, oracle {want:?}"
                    ),
                }
            }

            if verdict != OVerdict::Ok {
                // A rejected edit committed nothing: a re-run must be a
                // no-op on every instance.
                for (lowering, backend, ip) in &mut instances {
                    let rep = ip.rerun(*lowering, backend);
                    prop_assert_eq!(rep.reran, 0, "rejected edit dirtied state");
                    prop_assert_eq!(rep.dirtied, 0);
                }
                continue;
            }

            // (b, c) Re-run everywhere; the re-executed set must equal
            // the oracle's independently computed dirty set, and final
            // contents must match the oracle's from-scratch evaluation.
            let (finals, dirty) = oracle.run();
            for (lowering, backend, ip) in &mut instances {
                let rep = ip.rerun(*lowering, backend);
                prop_assert_eq!(
                    &rep.reran_keys, &dirty,
                    "{} {}: reran set != oracle dirty set",
                    lowering.name(), backend.name()
                );
                prop_assert_eq!(rep.reran + rep.reused, rep.total);
                prop_assert!(rep.reran <= rep.dirtied, "cutoff can only shrink the cone");
                for (name, content) in ip.final_contents() {
                    prop_assert_eq!(
                        content,
                        oracle.content_of_name(&finals, &name),
                        "{} {}: contents diverged at {}",
                        lowering.name(), backend.name(), name
                    );
                }
            }

            // From-scratch comparator: the whole history replayed onto
            // an empty store must (re)run every task and agree on
            // contents — the degenerate case of incrementality.
            let mut scratch = IncrementalProgram::new();
            for e in &history {
                let _ = scratch.edit(e.clone());
            }
            let rep = scratch.rerun(Lowering::Renamed, &Backend::Engine { shards: 2 });
            prop_assert_eq!(rep.reran, rep.total, "empty store reruns everything");
            for (name, content) in scratch.final_contents() {
                prop_assert_eq!(
                    content,
                    oracle.content_of_name(&finals, &name),
                    "from-scratch contents diverged at {}",
                    name
                );
            }
        }
    }
}
