//! Property suite for the Pearce–Kelly dynamic topological order:
//! random interleaved node/edge insertions and deletions, checked after
//! **every** operation against an independent model graph and a fresh
//! Kahn topological sort.
//!
//! The invariants, per operation:
//!
//! 1. the maintained node and edge sets equal the model's,
//! 2. the maintained order is a valid topological order of the model
//!    (checked positionally against the model's edges, not via the
//!    structure's own `is_valid`),
//! 3. a fresh Kahn sort of the model succeeds (the graph stayed
//!    acyclic),
//! 4. cycle-creating insertions are rejected with the *entire* state —
//!    nodes, edges, and order validity — unchanged,
//! 5. order-respecting insertions and all deletions cost **zero**
//!    maintenance ops (the locality property that makes the structure
//!    worth having).

use nexuspp_incr::order::{DynamicTopo, OrderError};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One generated mutation. Node ids are drawn from a small universe so
/// deletions and cycle attempts actually hit live structure.
#[derive(Debug, Clone, Copy)]
enum Op {
    AddNode(u64),
    RemoveNode(u64),
    AddEdge(u64, u64),
    RemoveEdge(u64, u64),
}

fn op_strategy(universe: u64) -> impl Strategy<Value = Op> {
    let n = 0..universe;
    prop_oneof![
        n.clone().prop_map(Op::AddNode),
        n.clone().prop_map(Op::RemoveNode),
        // Edge insertions twice, so graphs grow dense enough to force
        // real reorder and cycle-rejection traffic.
        (n.clone(), n.clone()).prop_map(|(a, b)| Op::AddEdge(a, b)),
        (n.clone(), n.clone()).prop_map(|(a, b)| Op::AddEdge(a, b)),
        (n.clone(), n).prop_map(|(a, b)| Op::RemoveEdge(a, b)),
    ]
}

/// The independent model: plain node/edge sets with from-scratch
/// reachability and Kahn's algorithm.
#[derive(Default)]
struct Model {
    nodes: BTreeSet<u64>,
    edges: BTreeSet<(u64, u64)>,
}

impl Model {
    /// Does `from` reach `to` through current edges (reflexively)?
    fn reaches(&self, from: u64, to: u64) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            stack.extend(self.edges.range((n, 0)..=(n, u64::MAX)).map(|&(_, t)| t));
        }
        false
    }

    /// A fresh Kahn sort; `None` if the graph is cyclic.
    fn kahn(&self) -> Option<Vec<u64>> {
        let mut indeg: BTreeMap<u64, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for &(_, t) in &self.edges {
            *indeg.get_mut(&t).expect("edge endpoints are nodes") += 1;
        }
        let mut ready: Vec<u64> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut out = Vec::with_capacity(self.nodes.len());
        while let Some(n) = ready.pop() {
            out.push(n);
            for &(_, t) in self.edges.range((n, 0)..=(n, u64::MAX)) {
                let d = indeg.get_mut(&t).expect("endpoint");
                *d -= 1;
                if *d == 0 {
                    ready.push(t);
                }
            }
        }
        (out.len() == self.nodes.len()).then_some(out)
    }
}

/// Invariants 1–3 after any committed operation.
fn check_consistent(t: &DynamicTopo<u64>, m: &Model) {
    assert_eq!(t.nodes().into_iter().collect::<BTreeSet<u64>>(), m.nodes);
    assert_eq!(
        t.edges().into_iter().collect::<BTreeSet<(u64, u64)>>(),
        m.edges
    );
    let order = t.topo_order();
    let pos: HashMap<u64, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    for &(f, to) in &m.edges {
        assert!(
            pos[&f] < pos[&to],
            "maintained order violates model edge {f} -> {to}: {order:?}"
        );
    }
    assert!(m.kahn().is_some(), "model graph must stay acyclic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn order_tracks_model_through_random_mutations(
        ops in prop::collection::vec(op_strategy(12), 1..=120)
    ) {
        let mut t = DynamicTopo::new();
        let mut m = Model::default();
        for op in ops {
            match op {
                Op::AddNode(n) => {
                    let added = t.add_node(n);
                    prop_assert_eq!(added, m.nodes.insert(n));
                }
                Op::RemoveNode(n) => {
                    let removed = t.remove_node(n);
                    prop_assert_eq!(removed, m.nodes.remove(&n));
                    m.edges.retain(|&(f, to)| f != n && to != n);
                }
                Op::AddEdge(f, to) => {
                    let ops_before = t.ops();
                    let missing = !m.nodes.contains(&f) || !m.nodes.contains(&to);
                    let cycle = !missing && m.reaches(to, f); // includes f == to
                    let respected = !missing
                        && !m.edges.contains(&(f, to))
                        && t.is_before(f, to);
                    match t.add_edge(f, to) {
                        Ok(fresh) => {
                            prop_assert!(!missing && !cycle);
                            prop_assert_eq!(fresh, m.edges.insert((f, to)));
                            if respected {
                                prop_assert_eq!(
                                    t.ops(), ops_before,
                                    "order-respecting insertion must be free"
                                );
                            }
                        }
                        Err(OrderError::MissingNode(_)) => prop_assert!(missing),
                        Err(OrderError::Cycle { .. }) => {
                            prop_assert!(cycle, "spurious cycle rejection for {f} -> {to}");
                            // Invariant 4: rejection mutated nothing.
                        }
                    }
                }
                Op::RemoveEdge(f, to) => {
                    let ops_before = t.ops();
                    let removed = t.remove_edge(f, to);
                    prop_assert_eq!(removed, m.edges.remove(&(f, to)));
                    prop_assert_eq!(t.ops(), ops_before, "deletions must be free");
                }
            }
            check_consistent(&t, &m);
        }
    }

    /// Violating insertions touch only the affected region: on a long
    /// chain with one random back-edge attempt, maintenance work is
    /// bounded by the span between the endpoints, never the chain.
    #[test]
    fn maintenance_work_is_bounded_by_the_affected_region(
        len in 10u64..200,
        lo in 0u64..50,
        span in 1u64..50,
    ) {
        let mut t = DynamicTopo::new();
        for k in 0..len {
            t.add_node(k);
        }
        for k in 0..len - 1 {
            t.add_edge(k, k + 1).unwrap();
        }
        prop_assert_eq!(t.ops(), 0);
        let lo = lo % (len - 1);
        let hi = (lo + span).min(len - 1);
        // Back-edge hi -> lo closes a cycle through the chain: must be
        // rejected, and discovery must stop inside [lo, hi].
        if hi > lo {
            prop_assert!(t.add_edge(hi, lo).is_err());
            prop_assert!(
                t.ops() <= hi - lo + 2,
                "discovery escaped the affected region: ops {} for span {}",
                t.ops(),
                hi - lo
            );
            prop_assert!(t.is_valid());
        }
    }
}
