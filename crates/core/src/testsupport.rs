//! Shared test-support helpers: watchdogs and deadline polling.
//!
//! Several integration suites exercise code that *parks threads* —
//! bounded-capacity submitters, `wait_on` waiters, service drains — so a
//! regression shows up as a hang, not a failure. Each of those suites
//! used to carry its own copy of a watchdog helper (and its own ad-hoc
//! sleep loops for cross-thread rendezvous); this module is the one
//! blessed implementation. It is a normal public module (not
//! `cfg(test)`) so downstream crates' integration tests can use it, but
//! it has no place in production code paths.

use std::sync::mpsc::RecvTimeoutError;
use std::time::{Duration, Instant};

/// Run `f` on its own thread and fail loudly if it does not complete in
/// `secs` — a parked submitter (or waiter, or drain) that never resumes
/// would otherwise hang the whole test binary forever.
///
/// If `f` panics, the panic is re-raised on the calling thread via the
/// join, so assertion failures inside `f` surface normally.
///
/// # Panics
///
/// Panics with `name` in the message when the watchdog expires, and
/// re-raises any panic from `f`.
pub fn with_watchdog(secs: u64, name: impl Into<String>, f: impl FnOnce() + Send + 'static) {
    let name = name.into();
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let h = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        // Completed (or panicked — resume the original payload so the
        // inner assertion message survives, not `Any { .. }`).
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("{name}: watchdog expired — the exercised path deadlocked")
        }
    }
}

/// Poll `cond` until it returns `true`, panicking with `what` in the
/// message if `timeout` elapses first. The deterministic replacement
/// for bare `sleep`-and-hope waits: the condition is re-checked on a
/// short backoff (spin-yield first, then millisecond sleeps), so tests
/// proceed the moment the state they wait for becomes visible instead
/// of a hard-coded nap later.
///
/// # Panics
///
/// Panics when `timeout` elapses with `cond` still false.
pub fn wait_until(timeout: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    let mut spins = 0u32;
    while !cond() {
        assert!(
            Instant::now() < deadline,
            "timed out after {timeout:?} waiting for {what}"
        );
        // Yield while the condition is likely racing a running thread;
        // back off to real sleeps if it is taking longer (e.g. the OS
        // reaping exited threads).
        if spins < 1000 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_millis(1));
        }
        spins += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn watchdog_passes_fast_closures_through() {
        with_watchdog(30, "trivial", || {});
    }

    #[test]
    #[should_panic(expected = "watchdog expired")]
    fn watchdog_fires_on_a_wedged_closure() {
        // The wedged thread leaks past the panic; that is the point of
        // the watchdog — the test *binary* survives a deadlocked path.
        let (_tx, rx) = std::sync::mpsc::channel::<()>();
        with_watchdog(1, "wedged", move || {
            let _ = rx.recv();
        });
    }

    #[test]
    #[should_panic(expected = "inner assertion")]
    fn watchdog_reraises_inner_panics() {
        with_watchdog(30, "panicking", || panic!("inner assertion"));
    }

    #[test]
    fn wait_until_observes_a_flag_set_by_another_thread() {
        let flag = Arc::new(AtomicBool::new(false));
        let setter = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || flag.store(true, Ordering::Release))
        };
        wait_until(Duration::from_secs(30), "flag set", || {
            flag.load(Ordering::Acquire)
        });
        setter.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn wait_until_panics_past_the_deadline() {
        wait_until(Duration::from_millis(20), "never", || false);
    }
}
