//! Ready-task handoff types shared between the dependency engines and the
//! schedulers that execute what they release.
//!
//! The StarSs `highpriority` clause (§II of the paper) marks tasks that
//! should overtake already-queued normal work once their dependencies
//! clear. Resolution does not care about priority — it is purely a
//! property of the *ready-task handoff* — so the type lives here, next to
//! the engine that produces ready tasks, and is consumed by
//! `nexuspp-sched` and the runtimes.

/// Scheduling class of a ready task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Overtakes queued [`Normal`](Priority::Normal) tasks once ready
    /// (the StarSs `highpriority` clause).
    High,
    /// Default scheduling class.
    #[default]
    Normal,
}

impl Priority {
    /// True for [`Priority::High`].
    pub fn is_high(self) -> bool {
        self == Priority::High
    }

    /// Map the builder-level `highpriority` flag to a priority.
    pub fn from_high_flag(high: bool) -> Self {
        if high {
            Priority::High
        } else {
            Priority::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        assert_eq!(Priority::from_high_flag(true), Priority::High);
        assert_eq!(Priority::from_high_flag(false), Priority::Normal);
        assert!(Priority::High.is_high());
        assert!(!Priority::Normal.is_high());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn high_sorts_before_normal() {
        let mut v = [Priority::Normal, Priority::High, Priority::Normal];
        v.sort();
        assert_eq!(v[0], Priority::High);
    }
}
