//! The unified submission surface: one error enum for every `submit*`
//! entry point, plus the builder-style task constructor.
//!
//! Historically each layer reported rejection its own way — the single
//! engine returned [`PoolError`], the sharded engine wrapped the same
//! type in a `ShardRejection`, bounded dispatchers had no error path at
//! all (they park the submitting thread), and malformed parameter lists
//! were only a `debug_assert`. [`SubmitError`] folds all of those into
//! one enum with uniform retry semantics, and [`TaskBuilder`] is the one
//! blessed way to construct a [`Submission`] — it normalizes duplicate
//! addresses away, so builder-made submissions can never trip the
//! bad-params path.

use crate::pool::PoolError;
use crate::priority::Priority;
use nexuspp_desim::SimTime;
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{MemCost, Param, TaskRecord};
use std::fmt;

/// Why a submission was not accepted — the single error surface shared
/// by the single engine, the sharded engine and the concurrent
/// dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// An involved shard's residency bound
    /// ([`ShardCapacity`](crate::ShardCapacity)) is exhausted. Retryable:
    /// a slot frees on that shard's next finish report.
    CapacityFull {
        /// The first full shard (in the task's first-touch order).
        shard: u32,
        /// The residency bound that was hit.
        limit: usize,
    },
    /// The Task Pool lacks free descriptors. Retryable: descriptors
    /// return to the free list as tasks finish.
    PoolFull {
        /// The full shard, when the rejection came from a sharded layer
        /// (`None` from the single engine).
        shard: Option<u32>,
        /// Descriptors the task needs (its dummy chain included).
        needed: usize,
        /// Descriptors currently free.
        free: usize,
    },
    /// The task needs more descriptors than an *empty* pool holds. Never
    /// retryable — resubmitting can only fail again.
    TaskTooLarge {
        /// The rejecting shard, when sharded (`None` from the single
        /// engine).
        shard: Option<u32>,
        /// Descriptors the task needs.
        needed: usize,
        /// Total pool capacity.
        capacity: usize,
    },
    /// The parameter list names one address twice ("bad params"). The
    /// resolution protocol requires normalized parameter lists — merge
    /// duplicate-address accesses first ([`TaskBuilder`] and
    /// [`normalize_params`] both do). Never retryable as-is.
    DuplicateAddress {
        /// The repeated address.
        addr: u64,
    },
}

impl SubmitError {
    /// Attach/override shard attribution (used by the sharded layers when
    /// they re-raise a per-shard [`PoolError`]).
    pub fn on_shard(self, shard: u32) -> Self {
        match self {
            SubmitError::CapacityFull { limit, .. } => SubmitError::CapacityFull { shard, limit },
            SubmitError::PoolFull { needed, free, .. } => SubmitError::PoolFull {
                shard: Some(shard),
                needed,
                free,
            },
            SubmitError::TaskTooLarge {
                needed, capacity, ..
            } => SubmitError::TaskTooLarge {
                shard: Some(shard),
                needed,
                capacity,
            },
            e @ SubmitError::DuplicateAddress { .. } => e,
        }
    }

    /// The shard the rejection is attributed to, if any — the shard whose
    /// next finish report a retrying front-end should park on.
    pub fn shard(&self) -> Option<u32> {
        match self {
            SubmitError::CapacityFull { shard, .. } => Some(*shard),
            SubmitError::PoolFull { shard, .. } | SubmitError::TaskTooLarge { shard, .. } => *shard,
            SubmitError::DuplicateAddress { .. } => None,
        }
    }

    /// True if resubmitting the same task can succeed after completions
    /// free space (`CapacityFull`, `PoolFull`); false for structural
    /// rejections (`TaskTooLarge`, `DuplicateAddress`).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SubmitError::CapacityFull { .. } | SubmitError::PoolFull { .. }
        )
    }
}

impl From<PoolError> for SubmitError {
    fn from(e: PoolError) -> Self {
        match e {
            PoolError::PoolFull { needed, free } => SubmitError::PoolFull {
                shard: None,
                needed,
                free,
            },
            PoolError::TaskTooLarge { needed, capacity } => SubmitError::TaskTooLarge {
                shard: None,
                needed,
                capacity,
            },
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = |shard: &Option<u32>| match shard {
            Some(s) => format!(" on shard {s}"),
            None => String::new(),
        };
        match self {
            SubmitError::CapacityFull { shard, limit } => write!(
                f,
                "shard {shard} is at its residency bound ({limit}); retry after its next finish"
            ),
            SubmitError::PoolFull {
                shard,
                needed,
                free,
            } => write!(
                f,
                "task pool full{}: task needs {needed} descriptor(s), {free} free; \
                 retry after a completion",
                at(shard)
            ),
            SubmitError::TaskTooLarge {
                shard,
                needed,
                capacity,
            } => write!(
                f,
                "task too large{}: needs {needed} descriptor(s) but the pool holds {capacity}",
                at(shard)
            ),
            SubmitError::DuplicateAddress { addr } => write!(
                f,
                "parameter list names address {addr:#x} twice; \
                 merge duplicate accesses (normalize_params / TaskBuilder)"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Which tenant a submission belongs to — admission-control metadata for
/// the multi-client service layer. Resolution semantics ignore it
/// entirely (dependencies are by address, never by tenant); it exists so
/// ingress layers can meter per-tenant in-flight budgets and label
/// per-tenant metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The "no tenant" sentinel — what direct (non-service) submissions
    /// carry. Admission layers treat it as unmetered.
    pub const NONE: TenantId = TenantId(u32::MAX);

    /// True unless this is the [`NONE`](TenantId::NONE) sentinel.
    pub fn is_tenant(&self) -> bool {
        *self != TenantId::NONE
    }
}

impl Default for TenantId {
    fn default() -> TenantId {
        TenantId::NONE
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tenant() {
            write!(f, "tenant{}", self.0)
        } else {
            f.write_str("tenant-none")
        }
    }
}

/// A fully-specified task submission: what every `submit*` entry point
/// consumes, and what [`TaskBuilder::build`] produces.
///
/// The fields are exactly the positional `(fptr, tag, params)` tuple the
/// resolvers have always taken, plus the scheduling
/// [`Priority`] the ready-task handoff layers consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// Function pointer / task-type tag (`*f` in the Task Pool layout).
    pub fptr: u64,
    /// Caller tag, round-tripped through finish reports.
    pub tag: u64,
    /// Scheduling class once ready (ignored by pure resolvers).
    pub priority: Priority,
    /// Admission-control tenant label (ignored by pure resolvers;
    /// metered by the service layer). [`TenantId::NONE`] for direct
    /// submissions.
    pub tenant: TenantId,
    /// Parameter list. Must be normalized (no duplicate addresses) before
    /// it reaches a resolver; [`Submission::validate`] checks, the
    /// builder guarantees it.
    pub params: Vec<Param>,
}

impl Submission {
    /// Check the resolver precondition: no address may appear twice.
    pub fn validate(&self) -> Result<(), SubmitError> {
        let mut addrs: Vec<u64> = self.params.iter().map(|p| p.addr).collect();
        addrs.sort_unstable();
        match addrs.windows(2).find(|w| w[0] == w[1]) {
            Some(w) => Err(SubmitError::DuplicateAddress { addr: w[0] }),
            None => Ok(()),
        }
    }

    /// Decompose into the positional wire format the batch front-ends
    /// consume (dropping the priority).
    pub fn into_parts(self) -> (u64, u64, Vec<Param>) {
        (self.fptr, self.tag, self.params)
    }

    /// Turn the submission into a trace record (the tag becomes the
    /// record id), for feeding the simulators and analysis passes.
    pub fn into_record(self, exec: SimTime, read: MemCost, write: MemCost) -> TaskRecord {
        TaskRecord {
            id: self.tag,
            fptr: self.fptr,
            params: self.params,
            exec,
            read,
            write,
        }
    }
}

impl From<(u64, u64, Vec<Param>)> for Submission {
    fn from((fptr, tag, params): (u64, u64, Vec<Param>)) -> Self {
        Submission {
            fptr,
            tag,
            priority: Priority::Normal,
            tenant: TenantId::NONE,
            params,
        }
    }
}

impl From<Submission> for (u64, u64, Vec<Param>) {
    fn from(s: Submission) -> Self {
        s.into_parts()
    }
}

/// Builder-style constructor for a [`Submission`] — the blessed way to
/// put a task together, replacing hand-assembled positional tuples.
///
/// `build` normalizes the parameter list (duplicate-address accesses
/// merge into the most conservative mode, first-occurrence order is
/// kept), so builder output always satisfies [`Submission::validate`].
///
/// ```
/// use nexuspp_core::TaskBuilder;
///
/// let sub = TaskBuilder::new(0xF00D)
///     .tag(7)
///     .reads(0x1000, 64)
///     .writes(0x2000, 64)
///     .high_priority()
///     .build();
/// assert_eq!(sub.tag, 7);
/// assert_eq!(sub.params.len(), 2);
/// assert!(sub.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    fptr: u64,
    tag: u64,
    priority: Priority,
    tenant: TenantId,
    params: Vec<Param>,
}

impl TaskBuilder {
    /// Start a task with function pointer `fptr` (tag 0, normal
    /// priority, no tenant, no parameters).
    pub fn new(fptr: u64) -> Self {
        TaskBuilder {
            fptr,
            tag: 0,
            priority: Priority::Normal,
            tenant: TenantId::NONE,
            params: Vec::new(),
        }
    }

    /// Set the caller tag round-tripped through finish reports.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Label the submission with an admission-control tenant (service
    /// ingress layers meter budgets per tenant; resolvers ignore it).
    pub fn tenant(mut self, t: TenantId) -> Self {
        self.tenant = t;
        self
    }

    /// Set the scheduling class explicitly.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Mark the task high priority (the StarSs `highpriority` clause).
    pub fn high_priority(self) -> Self {
        self.priority(Priority::High)
    }

    /// Declare a read-only parameter (`input(...)`).
    pub fn reads(self, addr: u64, size: u32) -> Self {
        self.param(Param::input(addr, size))
    }

    /// Declare a write-only parameter (`output(...)`).
    pub fn writes(self, addr: u64, size: u32) -> Self {
        self.param(Param::output(addr, size))
    }

    /// Declare a read-write parameter (`inout(...)`).
    pub fn read_writes(self, addr: u64, size: u32) -> Self {
        self.param(Param::inout(addr, size))
    }

    /// Append an already-built [`Param`].
    pub fn param(mut self, p: Param) -> Self {
        self.params.push(p);
        self
    }

    /// Finish: normalize the parameter list and produce the
    /// [`Submission`].
    pub fn build(self) -> Submission {
        Submission {
            fptr: self.fptr,
            tag: self.tag,
            priority: self.priority,
            tenant: self.tenant,
            params: normalize_params(&self.params),
        }
    }

    /// Finish as a trace record (see [`Submission::into_record`]).
    pub fn record(self, exec: SimTime, read: MemCost, write: MemCost) -> TaskRecord {
        self.build().into_record(exec, read, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_trace::AccessMode;

    #[test]
    fn builder_normalizes_duplicate_addresses() {
        let sub = TaskBuilder::new(1)
            .reads(0x10, 4)
            .writes(0x10, 4)
            .reads(0x20, 4)
            .build();
        assert_eq!(sub.params.len(), 2);
        assert_eq!(sub.params[0].mode, AccessMode::InOut);
        assert!(sub.validate().is_ok());
    }

    #[test]
    fn validate_reports_the_duplicated_address() {
        let sub = Submission {
            fptr: 1,
            tag: 0,
            priority: Priority::Normal,
            tenant: TenantId::NONE,
            params: vec![Param::input(0x40, 4), Param::output(0x40, 4)],
        };
        assert_eq!(
            sub.validate(),
            Err(SubmitError::DuplicateAddress { addr: 0x40 })
        );
    }

    #[test]
    fn tenant_defaults_to_none_and_round_trips() {
        let sub = TaskBuilder::new(1).reads(0x10, 4).build();
        assert_eq!(sub.tenant, TenantId::NONE);
        assert!(!sub.tenant.is_tenant());
        let sub = TaskBuilder::new(1).tenant(TenantId(3)).build();
        assert_eq!(sub.tenant, TenantId(3));
        assert!(sub.tenant.is_tenant());
        assert_eq!(sub.tenant.to_string(), "tenant3");
        assert_eq!(TenantId::default(), TenantId::NONE);
    }

    #[test]
    fn tuple_round_trip_keeps_fields() {
        let sub: Submission = (9u64, 42u64, vec![Param::input(0x8, 4)]).into();
        assert_eq!(sub.priority, Priority::Normal);
        let (fptr, tag, params) = sub.into_parts();
        assert_eq!((fptr, tag, params.len()), (9, 42, 1));
    }

    #[test]
    fn record_uses_tag_as_id() {
        let rec = TaskBuilder::new(0xABCD).tag(5).writes(0x100, 16).record(
            SimTime::from_ns(10),
            MemCost::None,
            MemCost::Bytes(64),
        );
        assert_eq!(rec.id, 5);
        assert_eq!(rec.fptr, 0xABCD);
        assert_eq!(rec.exec, SimTime::from_ns(10));
    }

    #[test]
    fn retryability_split() {
        assert!(SubmitError::PoolFull {
            shard: None,
            needed: 1,
            free: 0
        }
        .is_retryable());
        assert!(SubmitError::CapacityFull { shard: 0, limit: 2 }.is_retryable());
        assert!(!SubmitError::TaskTooLarge {
            shard: Some(1),
            needed: 9,
            capacity: 4
        }
        .is_retryable());
        assert!(!SubmitError::DuplicateAddress { addr: 1 }.is_retryable());
    }

    #[test]
    fn shard_attribution() {
        let e: SubmitError = PoolError::PoolFull { needed: 2, free: 1 }.into();
        assert_eq!(e.shard(), None);
        let e = e.on_shard(3);
        assert_eq!(e.shard(), Some(3));
        assert_eq!(
            e,
            SubmitError::PoolFull {
                shard: Some(3),
                needed: 2,
                free: 1
            }
        );
    }

    #[test]
    fn display_messages_name_the_cause() {
        let msgs = [
            SubmitError::CapacityFull { shard: 2, limit: 8 }.to_string(),
            SubmitError::PoolFull {
                shard: Some(1),
                needed: 3,
                free: 0,
            }
            .to_string(),
            SubmitError::TaskTooLarge {
                shard: None,
                needed: 99,
                capacity: 4,
            }
            .to_string(),
            SubmitError::DuplicateAddress { addr: 0xAB }.to_string(),
        ];
        assert!(msgs[0].contains("residency bound"));
        assert!(msgs[1].contains("shard 1"));
        assert!(msgs[2].contains("too large"));
        assert!(msgs[3].contains("0xab"));
    }
}
