//! The dependency engine: Task Pool + Dependence Table under the Task
//! Maestro's protocol.
//!
//! Three operations mirror the Maestro blocks:
//!
//! * [`DependencyEngine::admit`] — `Write TP`: allocate the descriptor
//!   chain and store the task,
//! * [`DependencyEngine::check`] — `Check Deps`: run the Listing 2 loop
//!   over the task's parameters, resumable after a Dependence-Table-full
//!   stall (the per-task resume point is the `check_cursor` the paper's
//!   `busy` flag protects),
//! * [`DependencyEngine::finish`] — `Handle Finished`: release every
//!   parameter, wake kick-off waiters, decrement their Dependence
//!   Counters, collect the newly ready, and retire the descriptor chain
//!   back to the `TP Free indices` list.
//!
//! The engine is deliberately untimed: each call reports an [`OpCost`]
//! that the Task Machine converts into Nexus++ cycles, and that the
//! threaded runtime ignores.

use crate::config::NexusConfig;
use crate::cost::OpCost;
use crate::pool::{PoolError, TaskPool, TdIndex};
use crate::submit::{Submission, SubmitError};
use crate::table::{CheckParamOutcome, DepTable, TableFull};
use nexuspp_trace::Param;

/// Progress of a (possibly resumed) dependency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckProgress {
    /// All parameters processed. `ready` is true if the task has no
    /// outstanding dependencies and can be scheduled.
    Done { ready: bool, cost: OpCost },
    /// The Dependence Table was full mid-check; call `check` again after a
    /// completion frees space. `cost` covers the work done this attempt.
    Stalled { cost: OpCost },
}

/// Result of finishing a task.
#[derive(Debug, Clone, Default)]
pub struct FinishResult {
    /// Tasks whose Dependence Counter reached zero (with their check
    /// complete) thanks to this completion — they go to the Global Ready
    /// Tasks list.
    pub newly_ready: Vec<TdIndex>,
    /// Total pool+table accesses.
    pub cost: OpCost,
    /// The finished task's caller tag.
    pub tag: u64,
}

/// The Nexus++ dependency engine.
#[derive(Debug, Clone)]
pub struct DependencyEngine {
    pool: TaskPool,
    table: DepTable,
    /// Tasks admitted whose check has completed (scheduling gate).
    checked: Vec<bool>,
    /// Tasks currently in flight (admitted, not yet finished).
    in_flight: usize,
}

impl DependencyEngine {
    /// Build an engine from a configuration.
    pub fn new(cfg: &NexusConfig) -> Self {
        DependencyEngine {
            pool: TaskPool::new(cfg),
            table: DepTable::new(cfg),
            checked: vec![false; cfg.task_pool_entries],
            in_flight: 0,
        }
    }

    /// The Task Pool (read access for reports).
    pub fn pool(&self) -> &TaskPool {
        &self.pool
    }

    /// The Dependence Table (read access for reports).
    pub fn table(&self) -> &DepTable {
        &self.table
    }

    /// Tasks admitted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn set_checked(&mut self, td: TdIndex, v: bool) {
        let i = td.0 as usize;
        if i >= self.checked.len() {
            self.checked.resize(i + 1, false);
        }
        self.checked[i] = v;
    }

    /// True once `check` has processed every parameter of `td` (the
    /// scheduling gate: a task whose Dependence Counter reaches zero
    /// mid-check must not run until the check completes).
    pub fn is_checked(&self, td: TdIndex) -> bool {
        self.checked.get(td.0 as usize).copied().unwrap_or(false)
    }

    /// Caller tag of a live descriptor. Lets a composing layer (e.g. the
    /// sharded engine) map the indices in [`FinishResult::newly_ready`]
    /// back to its own task handles without retiring the descriptor.
    pub fn tag_of(&self, td: TdIndex) -> u64 {
        self.pool.get(td).tag
    }

    /// Unresolved dependence count of a live descriptor.
    pub fn dc_of(&self, td: TdIndex) -> u32 {
        self.pool.get(td).dc
    }

    /// True if `td` could run right now: its check is complete and it has
    /// no outstanding dependencies.
    pub fn is_ready(&self, td: TdIndex) -> bool {
        self.is_checked(td) && self.pool.get(td).dc == 0
    }

    /// `Write TP`: admit a task into the pool. The parameter list may be
    /// arbitrarily long; descriptor chaining (dummy tasks) is handled
    /// internally. Fails retryably when the pool is full.
    pub fn admit(
        &mut self,
        fptr: u64,
        tag: u64,
        params: Vec<Param>,
    ) -> Result<(TdIndex, OpCost), PoolError> {
        debug_assert!(
            {
                let mut addrs: Vec<u64> = params.iter().map(|p| p.addr).collect();
                addrs.sort_unstable();
                addrs.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate addresses in a parameter list must be normalized first"
        );
        let (td, cost) = self.pool.admit(fptr, tag, params)?;
        self.set_checked(td, false);
        self.in_flight += 1;
        Ok((td, cost))
    }

    /// Fast path for dependency-free tasks (the paper's future-work note:
    /// "it contains hardware queues that can be used for low-latency
    /// retrieval of independent tasks"): a task with no parameters cannot
    /// interact with the Dependence Table, so it may bypass `Check Deps`
    /// entirely and go straight to the ready list.
    pub fn mark_trivially_ready(&mut self, td: TdIndex) {
        assert!(
            self.pool.get(td).params.is_empty(),
            "only parameterless tasks may bypass dependency checking"
        );
        self.set_checked(td, true);
    }

    /// `Check Deps`: process the task's parameters against the Dependence
    /// Table, resuming from the last stall point if any.
    pub fn check(&mut self, td: TdIndex) -> CheckProgress {
        let mut cost = OpCost::ZERO;
        loop {
            let (cursor, param) = {
                let e = self.pool.get(td);
                let c = e.check_cursor as usize;
                if c >= e.params.len() {
                    break;
                }
                (c, e.params[c])
            };
            match self
                .table
                .check_param(td, param.addr, param.size, param.mode)
            {
                Ok((outcome, c)) => {
                    cost += c;
                    let e = self.pool.get_mut(td);
                    e.check_cursor = cursor as u32 + 1;
                    if outcome == CheckParamOutcome::Dependent {
                        e.dc += 1;
                        cost += OpCost::pool(1);
                    }
                }
                Err(TableFull) => return CheckProgress::Stalled { cost },
            }
        }
        self.set_checked(td, true);
        let ready = self.pool.get(td).dc == 0;
        CheckProgress::Done { ready, cost }
    }

    /// `Handle Finished`: release the task's parameters, wake waiters,
    /// retire the descriptor chain. Never stalls.
    pub fn finish(&mut self, td: TdIndex) -> FinishResult {
        debug_assert!(
            self.is_checked(td),
            "finishing a task that never completed its check"
        );
        debug_assert_eq!(
            self.pool.get(td).dc,
            0,
            "finishing a task with unresolved deps"
        );
        let mut result = FinishResult::default();
        // Read the descriptor's I/O list (walking its dummy chain).
        result.cost += self.pool.read_params_cost(td);
        let params = self.pool.get(td).params.clone();
        for p in &params {
            let wake = self.table.finish_param(p.addr, p.mode);
            result.cost += wake.cost;
            for w in wake.woken {
                let e = self.pool.get_mut(w.td);
                debug_assert!(e.dc > 0, "waking a task with DC == 0");
                e.dc -= 1;
                result.cost += OpCost::pool(1);
                if e.dc == 0 && self.is_checked(w.td) {
                    result.newly_ready.push(w.td);
                }
            }
        }
        let (entry, cost) = self.pool.retire(td);
        self.set_checked(td, false);
        result.cost += cost;
        result.tag = entry.tag;
        self.in_flight -= 1;
        result
    }

    /// Convenience for the threaded runtime and for tests: admit + check in
    /// one call. With a growable configuration this never stalls; with a
    /// fixed configuration a mid-check stall is surfaced as `Err(PoolFull)`
    /// semantics via panic — use the step-wise API for hardware modeling.
    pub fn submit(
        &mut self,
        fptr: u64,
        tag: u64,
        params: Vec<Param>,
    ) -> Result<(TdIndex, bool), PoolError> {
        let (td, _) = self.admit(fptr, tag, params)?;
        match self.check(td) {
            CheckProgress::Done { ready, .. } => Ok((td, ready)),
            CheckProgress::Stalled { .. } => panic!(
                "submit(): dependence table full; use admit()/check() with retry for fixed configs"
            ),
        }
    }

    /// [`submit`](Self::submit) over the unified surface: consume a
    /// [`Submission`] (typically from a
    /// [`TaskBuilder`](crate::TaskBuilder)) and report any rejection as a
    /// [`SubmitError`]. Unlike the positional path — where a duplicated
    /// parameter address is only a `debug_assert` — a malformed parameter
    /// list is a real [`SubmitError::DuplicateAddress`] error here.
    pub fn try_submit(&mut self, sub: Submission) -> Result<(TdIndex, bool), SubmitError> {
        sub.validate()?;
        let (fptr, tag, params) = sub.into_parts();
        self.submit(fptr, tag, params).map_err(SubmitError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_trace::Param;

    fn engine() -> DependencyEngine {
        DependencyEngine::new(&NexusConfig::default())
    }

    #[test]
    fn independent_tasks_all_ready() {
        let mut e = engine();
        for i in 0..10u64 {
            let (_, ready) = e
                .submit(
                    1,
                    i,
                    vec![Param::input(i * 64, 4), Param::output(i * 64 + 32, 4)],
                )
                .unwrap();
            assert!(ready, "task {i} has no conflicts");
        }
        assert_eq!(e.in_flight(), 10);
    }

    #[test]
    fn chain_executes_in_order() {
        let mut e = engine();
        // t0 writes A; t1 reads A writes B; t2 reads B.
        let (t0, r0) = e.submit(1, 0, vec![Param::output(0xA, 4)]).unwrap();
        let (t1, r1) = e
            .submit(1, 1, vec![Param::input(0xA, 4), Param::output(0xB, 4)])
            .unwrap();
        let (t2, r2) = e.submit(1, 2, vec![Param::input(0xB, 4)]).unwrap();
        assert!(r0 && !r1 && !r2);
        let f = e.finish(t0);
        assert_eq!(f.newly_ready, vec![t1]);
        let f = e.finish(t1);
        assert_eq!(f.newly_ready, vec![t2]);
        let f = e.finish(t2);
        assert!(f.newly_ready.is_empty());
        assert_eq!(e.in_flight(), 0);
        assert_eq!(e.table().occupied(), 0);
    }

    #[test]
    fn diamond_joins() {
        let mut e = engine();
        // t0 writes A,B; t1 reads A writes C; t2 reads B writes D;
        // t3 reads C,D.
        let (t0, _) = e
            .submit(1, 0, vec![Param::output(0xA, 4), Param::output(0xB, 4)])
            .unwrap();
        let (t1, r1) = e
            .submit(1, 1, vec![Param::input(0xA, 4), Param::output(0xC, 4)])
            .unwrap();
        let (t2, r2) = e
            .submit(1, 2, vec![Param::input(0xB, 4), Param::output(0xD, 4)])
            .unwrap();
        let (t3, r3) = e
            .submit(1, 3, vec![Param::input(0xC, 4), Param::input(0xD, 4)])
            .unwrap();
        assert!(!r1 && !r2 && !r3);
        let f = e.finish(t0);
        assert_eq!(f.newly_ready, vec![t1, t2]);
        let f = e.finish(t1);
        assert!(f.newly_ready.is_empty(), "t3 still waits on t2");
        let f = e.finish(t2);
        assert_eq!(f.newly_ready, vec![t3]);
        e.finish(t3);
        assert_eq!(e.table().occupied(), 0);
    }

    #[test]
    fn dc_counts_each_dependent_param_once() {
        let mut e = engine();
        let (t0, _) = e
            .submit(1, 0, vec![Param::output(0x10, 4), Param::output(0x20, 4)])
            .unwrap();
        // t1 depends on t0 via BOTH addresses.
        let (t1, ready) = e
            .submit(1, 1, vec![Param::input(0x10, 4), Param::input(0x20, 4)])
            .unwrap();
        assert!(!ready);
        assert_eq!(e.pool().get(t1).dc, 2);
        let f = e.finish(t0);
        // Both wakes arrive in one finish; t1 becomes ready exactly once.
        assert_eq!(f.newly_ready, vec![t1]);
    }

    #[test]
    fn admit_rejects_when_pool_full_then_recovers() {
        let cfg = NexusConfig {
            task_pool_entries: 2,
            ..Default::default()
        };
        let mut e = DependencyEngine::new(&cfg);
        let (t0, _) = e.submit(1, 0, vec![Param::output(0x1, 4)]).unwrap();
        e.submit(1, 1, vec![Param::output(0x2, 4)]).unwrap();
        assert!(matches!(
            e.admit(1, 2, vec![Param::output(0x3, 4)]),
            Err(PoolError::PoolFull { .. })
        ));
        e.finish(t0);
        assert!(e.admit(1, 2, vec![Param::output(0x3, 4)]).is_ok());
    }

    #[test]
    fn check_stall_and_resume() {
        // Table with 2 slots; first task occupies both with 2 params.
        let cfg = NexusConfig {
            dep_table_entries: 2,
            ..Default::default()
        };
        let mut e = DependencyEngine::new(&cfg);
        let (t0, _) = e
            .admit(1, 0, vec![Param::output(0x111, 4), Param::output(0x222, 4)])
            .unwrap();
        assert!(matches!(
            e.check(t0),
            CheckProgress::Done { ready: true, .. }
        ));
        // Second task: first param hits an existing entry (dependent), the
        // second needs a fresh entry → stall.
        let (t1, _) = e
            .admit(1, 1, vec![Param::input(0x111, 4), Param::output(0x333, 4)])
            .unwrap();
        assert!(matches!(e.check(t1), CheckProgress::Stalled { .. }));
        // t0 finishing frees entries and wakes t1's first param; the resumed
        // check completes and the task becomes ready only then.
        let f = e.finish(t0);
        assert!(
            f.newly_ready.is_empty(),
            "t1's check is incomplete; DC hitting 0 must not schedule it"
        );
        match e.check(t1) {
            CheckProgress::Done { ready, .. } => assert!(ready),
            other => panic!("expected completion, got {other:?}"),
        }
        e.finish(t1);
        assert_eq!(e.table().occupied(), 0);
    }

    #[test]
    fn many_param_task_uses_dummy_descriptors() {
        let mut e = engine();
        let params: Vec<Param> = (0..20).map(|i| Param::output(0x1000 + i * 8, 4)).collect();
        let (td, ready) = e.submit(1, 0, params).unwrap();
        assert!(ready);
        assert_eq!(e.pool().get(td).n_dummies(), 2); // 20 params → 7+7+8(≥6)
        let f = e.finish(td);
        assert!(f.newly_ready.is_empty());
        assert_eq!(e.pool().in_use(), 0);
        assert_eq!(e.table().occupied(), 0);
    }

    #[test]
    fn inout_behaves_as_reader_and_writer() {
        let mut e = engine();
        let (t0, _) = e.submit(1, 0, vec![Param::inout(0xAB, 4)]).unwrap();
        let (t1, r1) = e.submit(1, 1, vec![Param::inout(0xAB, 4)]).unwrap();
        assert!(!r1);
        let f = e.finish(t0);
        assert_eq!(f.newly_ready, vec![t1]);
        let f = e.finish(t1);
        assert!(f.newly_ready.is_empty());
        assert_eq!(e.table().occupied(), 0);
    }

    #[test]
    fn introspection_hooks_track_lifecycle() {
        let mut e = engine();
        let (t0, _) = e.admit(1, 77, vec![Param::output(0x5, 4)]).unwrap();
        assert_eq!(e.tag_of(t0), 77);
        assert!(!e.is_checked(t0) && !e.is_ready(t0));
        assert!(matches!(
            e.check(t0),
            CheckProgress::Done { ready: true, .. }
        ));
        assert!(e.is_checked(t0) && e.is_ready(t0));
        let (t1, _) = e.admit(1, 78, vec![Param::input(0x5, 4)]).unwrap();
        e.check(t1);
        assert_eq!(e.dc_of(t1), 1);
        assert!(e.is_checked(t1) && !e.is_ready(t1));
        let fin = e.finish(t0);
        // Newly-ready indices can be mapped to tags without retiring them.
        assert_eq!(
            fin.newly_ready.iter().map(|&t| e.tag_of(t)).sum::<u64>(),
            78
        );
        assert!(e.is_ready(t1));
        e.finish(t1);
    }

    #[test]
    fn try_submit_reports_unified_errors() {
        use crate::submit::{SubmitError, TaskBuilder};
        let cfg = NexusConfig {
            task_pool_entries: 2,
            ..Default::default()
        };
        let mut e = DependencyEngine::new(&cfg);
        // Bad params surface as a real error, not a debug_assert.
        let dup = crate::submit::Submission {
            fptr: 1,
            tag: 0,
            priority: crate::Priority::Normal,
            tenant: crate::TenantId::NONE,
            params: vec![Param::input(0x8, 4), Param::output(0x8, 4)],
        };
        assert_eq!(
            e.try_submit(dup),
            Err(SubmitError::DuplicateAddress { addr: 0x8 })
        );
        // Builder-made submissions are normalized and admit cleanly.
        let (t0, ready) = e
            .try_submit(
                TaskBuilder::new(1)
                    .tag(7)
                    .reads(0x8, 4)
                    .writes(0x8, 4)
                    .build(),
            )
            .unwrap();
        assert!(ready);
        // Pool exhaustion maps into the unified enum, unattributed.
        e.try_submit(TaskBuilder::new(1).writes(0x10, 4).build())
            .unwrap();
        match e.try_submit(TaskBuilder::new(1).writes(0x18, 4).build()) {
            Err(SubmitError::PoolFull { shard: None, .. }) => {}
            other => panic!("expected PoolFull, got {other:?}"),
        }
        assert_eq!(e.finish(t0).tag, 7);
    }

    #[test]
    fn tags_round_trip_through_finish() {
        let mut e = engine();
        let (t0, _) = e.submit(9, 1234, vec![Param::output(0x1, 4)]).unwrap();
        let f = e.finish(t0);
        assert_eq!(f.tag, 1234);
    }
}
