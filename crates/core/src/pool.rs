//! The Task Pool: Nexus++'s main task storage table.
//!
//! "Inside Nexus++, a task is identified by its Task Pool index. This is
//! important to directly address a specific entry in the table, rather than
//! searching the table for that entry." Free indices live in the FIFO
//! `TP Free indices` list; the `Write TP` block allocates from it and the
//! `Handle Finished` block returns completed tasks' indices to it.
//!
//! ## Dummy tasks (§II-C)
//!
//! A Task Descriptor holds at most `params_per_td` parameters (8 in
//! Table IV). "If Tx has 2n outputs, and a Task Descriptor can only store n
//! of them, then dummy tasks are created having their inputs/outputs as
//! those that did not fit in the parent's Task Descriptor. A dummy task is
//! simply a pointer that replaces the last entry of an input/output list."
//! So a task with `P > params_per_td` parameters occupies
//! `1 + ceil((P - p) / (p - 1))` pool entries (each non-final descriptor
//! sacrifices its last slot to the chain pointer), and the `nD` field of
//! the parent records the count. Dummy tasks are never scheduled; they are
//! storage. This module models the chain structurally (dummy slots are
//! allocated, counted, cost-accounted and freed) while keeping the logical
//! parameter list on the primary entry for O(1) access by the simulator.

use crate::config::NexusConfig;
use crate::cost::OpCost;
use nexuspp_trace::Param;
use std::collections::VecDeque;
use std::fmt;

/// A task's identity inside Nexus++: its Task Pool index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TdIndex(pub u32);

impl fmt::Display for TdIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "td{}", self.0)
    }
}

/// Why an allocation could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// Not enough free descriptors right now; retry after completions.
    PoolFull {
        /// Descriptors the task needs (1 + dummies).
        needed: usize,
        /// Descriptors currently free.
        free: usize,
    },
    /// The task can never fit: it needs more descriptors than the whole
    /// pool ("the maximum number of inputs/outputs is still bounded by the
    /// size of the Task Pool").
    TaskTooLarge {
        /// Descriptors the task would need.
        needed: usize,
        /// Total pool capacity.
        capacity: usize,
    },
}

/// A primary Task Descriptor (the `Task Pool` row of Table I, plus the
/// bookkeeping the Maestro blocks keep per task).
#[derive(Debug, Clone)]
pub struct TdEntry {
    /// Function pointer (`*f`).
    pub fptr: u64,
    /// Caller tag — the trace task id this descriptor was built from.
    pub tag: u64,
    /// Dependence Counter (`DC`): unresolved input dependencies.
    pub dc: u32,
    /// The logical parameter list (spanning the dummy chain).
    pub params: Vec<Param>,
    /// Pool indices of chained dummy descriptors (`nD` = their count).
    pub dummies: Vec<TdIndex>,
    /// Exclusive-access flag ("whether this Task Descriptor is currently
    /// under processing by one of the blocks of the Task Maestro").
    pub busy: bool,
    /// Parameters already processed by `Check Deps` (resume point after a
    /// Dependence-Table-full stall).
    pub check_cursor: u32,
}

impl TdEntry {
    /// Number of chained dummy descriptors (the `nD` column).
    pub fn n_dummies(&self) -> usize {
        self.dummies.len()
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Free,
    Primary(TdEntry),
    /// A dummy task: parameter overflow storage belonging to `parent`.
    Dummy {
        parent: TdIndex,
    },
}

/// Pool statistics for the evaluation reports.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Tasks successfully admitted.
    pub tasks_admitted: u64,
    /// Dummy descriptors allocated over the run.
    pub dummy_tds_allocated: u64,
    /// Allocation attempts rejected because the pool was full.
    pub full_rejections: u64,
    /// Peak number of occupied descriptors (primaries + dummies).
    pub peak_occupancy: usize,
}

/// The Task Pool.
#[derive(Debug, Clone)]
pub struct TaskPool {
    params_per_td: usize,
    growable: bool,
    slots: Vec<Slot>,
    /// The `TP Free indices` FIFO: "stores initially all indices of the
    /// Task Pool"; completed tasks' indices are written back to it.
    free: VecDeque<TdIndex>,
    in_use: usize,
    stats: PoolStats,
}

impl TaskPool {
    /// Build a pool from a configuration.
    pub fn new(cfg: &NexusConfig) -> Self {
        cfg.validate();
        let n = cfg.task_pool_entries;
        TaskPool {
            params_per_td: cfg.params_per_td,
            growable: cfg.growable,
            slots: vec![Slot::Free; n],
            free: (0..n as u32).map(TdIndex).collect(),
            in_use: 0,
            stats: PoolStats::default(),
        }
    }

    /// Total descriptor capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Free descriptors.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Occupied descriptors (primaries + dummies).
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Statistics so far.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Number of descriptors a task with `n_params` parameters occupies:
    /// 1 if it fits, otherwise a chain where every non-final descriptor
    /// holds `params_per_td - 1` parameters plus the chain pointer.
    pub fn tds_needed(&self, n_params: usize) -> usize {
        let p = self.params_per_td;
        if n_params <= p {
            1
        } else {
            1 + (n_params - p).div_ceil(p - 1)
        }
    }

    fn grow(&mut self) {
        let old = self.slots.len();
        let add = old.max(1);
        self.slots
            .extend(std::iter::repeat_with(|| Slot::Free).take(add));
        self.free
            .extend((old..old + add).map(|i| TdIndex(i as u32)));
    }

    /// Admit a task (the `Write TP` block): allocate its descriptor chain
    /// and store the entry. Returns the primary index and the write cost
    /// (one access per descriptor written).
    pub fn admit(
        &mut self,
        fptr: u64,
        tag: u64,
        params: Vec<Param>,
    ) -> Result<(TdIndex, OpCost), PoolError> {
        let needed = self.tds_needed(params.len());
        if needed > self.capacity() && !self.growable {
            return Err(PoolError::TaskTooLarge {
                needed,
                capacity: self.capacity(),
            });
        }
        while self.growable && self.free.len() < needed {
            self.grow();
        }
        if self.free.len() < needed {
            self.stats.full_rejections += 1;
            return Err(PoolError::PoolFull {
                needed,
                free: self.free.len(),
            });
        }
        let primary = self.free.pop_front().expect("checked above");
        let dummies: Vec<TdIndex> = (1..needed)
            .map(|_| self.free.pop_front().expect("checked above"))
            .collect();
        for &d in &dummies {
            self.slots[d.0 as usize] = Slot::Dummy { parent: primary };
        }
        self.stats.dummy_tds_allocated += dummies.len() as u64;
        self.slots[primary.0 as usize] = Slot::Primary(TdEntry {
            fptr,
            tag,
            dc: 0,
            params,
            dummies,
            busy: false,
            check_cursor: 0,
        });
        self.in_use += needed;
        if self.in_use > self.stats.peak_occupancy {
            self.stats.peak_occupancy = self.in_use;
        }
        self.stats.tasks_admitted += 1;
        Ok((primary, OpCost::pool(needed as u64)))
    }

    /// Shared access to a primary descriptor.
    pub fn get(&self, td: TdIndex) -> &TdEntry {
        match &self.slots[td.0 as usize] {
            Slot::Primary(e) => e,
            other => panic!("{td} is not a primary descriptor: {other:?}"),
        }
    }

    /// Exclusive access to a primary descriptor.
    pub fn get_mut(&mut self, td: TdIndex) -> &mut TdEntry {
        match &mut self.slots[td.0 as usize] {
            Slot::Primary(e) => e,
            other => panic!("{td} is not a primary descriptor: {other:?}"),
        }
    }

    /// True if `td` currently names a primary descriptor.
    pub fn is_live(&self, td: TdIndex) -> bool {
        matches!(self.slots.get(td.0 as usize), Some(Slot::Primary(_)))
    }

    /// Cost of reading a task's full parameter list (one access per
    /// descriptor in its chain) — paid by `Send TDs` and `Handle Finished`.
    pub fn read_params_cost(&self, td: TdIndex) -> OpCost {
        OpCost::pool(1 + self.get(td).n_dummies() as u64)
    }

    /// Retire a completed task (the tail of `Handle Finished`): free its
    /// descriptor chain, returning the entry and the cost (one access per
    /// freed descriptor). The indices go back to the `TP Free indices`
    /// FIFO in primary-then-dummies order.
    pub fn retire(&mut self, td: TdIndex) -> (TdEntry, OpCost) {
        let entry = match std::mem::replace(&mut self.slots[td.0 as usize], Slot::Free) {
            Slot::Primary(e) => e,
            other => panic!("retire({td}) on non-primary slot {other:?}"),
        };
        self.free.push_back(td);
        for &d in &entry.dummies {
            debug_assert!(
                matches!(self.slots[d.0 as usize], Slot::Dummy { parent } if parent == td)
            );
            self.slots[d.0 as usize] = Slot::Free;
            self.free.push_back(d);
        }
        let freed = 1 + entry.dummies.len();
        self.in_use -= freed;
        (entry, OpCost::pool(freed as u64))
    }

    /// Iterate live primary descriptors (diagnostics).
    pub fn iter_live(&self) -> impl Iterator<Item = (TdIndex, &TdEntry)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Primary(e) => Some((TdIndex(i as u32), e)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_trace::Param;

    fn cfg(entries: usize, params: usize) -> NexusConfig {
        NexusConfig {
            task_pool_entries: entries,
            params_per_td: params,
            ..Default::default()
        }
    }

    fn params(n: usize) -> Vec<Param> {
        (0..n)
            .map(|i| Param::input(0x1000 + i as u64 * 8, 4))
            .collect()
    }

    #[test]
    fn tds_needed_matches_paper_example() {
        let pool = TaskPool::new(&cfg(16, 8));
        // "The Task Descriptor at index 98 has 10 inputs/outputs […] this
        // task occupies in total 2 Task Descriptors."
        assert_eq!(pool.tds_needed(10), 2);
        assert_eq!(pool.tds_needed(8), 1);
        assert_eq!(pool.tds_needed(0), 1);
        assert_eq!(pool.tds_needed(15), 2); // 7 + 8
        assert_eq!(pool.tds_needed(16), 3); // 7 + 7 + 8 capacity 22
        assert_eq!(pool.tds_needed(22), 3);
        assert_eq!(pool.tds_needed(23), 4);
    }

    #[test]
    fn admit_and_retire_roundtrip() {
        let mut pool = TaskPool::new(&cfg(4, 8));
        let (td, cost) = pool.admit(0xABCD, 7, params(3)).unwrap();
        assert_eq!(cost, OpCost::pool(1));
        assert_eq!(pool.in_use(), 1);
        assert_eq!(pool.get(td).tag, 7);
        assert_eq!(pool.get(td).fptr, 0xABCD);
        assert_eq!(pool.get(td).n_dummies(), 0);
        let (entry, cost) = pool.retire(td);
        assert_eq!(entry.tag, 7);
        assert_eq!(cost, OpCost::pool(1));
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.free_count(), 4);
    }

    #[test]
    fn dummy_chain_allocation_and_free() {
        let mut pool = TaskPool::new(&cfg(8, 8));
        let (td, cost) = pool.admit(1, 0, params(10)).unwrap();
        assert_eq!(cost, OpCost::pool(2));
        assert_eq!(pool.get(td).n_dummies(), 1);
        assert_eq!(pool.in_use(), 2);
        assert_eq!(pool.read_params_cost(td), OpCost::pool(2));
        let (_, cost) = pool.retire(td);
        assert_eq!(cost, OpCost::pool(2));
        assert_eq!(pool.free_count(), 8);
        assert_eq!(pool.stats().dummy_tds_allocated, 1);
    }

    #[test]
    fn pool_full_is_retryable() {
        let mut pool = TaskPool::new(&cfg(2, 8));
        let (a, _) = pool.admit(1, 0, params(1)).unwrap();
        let (_b, _) = pool.admit(1, 1, params(1)).unwrap();
        assert_eq!(
            pool.admit(1, 2, params(1)),
            Err(PoolError::PoolFull { needed: 1, free: 0 })
        );
        assert_eq!(pool.stats().full_rejections, 1);
        pool.retire(a);
        assert!(pool.admit(1, 2, params(1)).is_ok());
    }

    #[test]
    fn task_too_large_is_permanent() {
        let mut pool = TaskPool::new(&cfg(2, 8));
        // 16 params → 3 descriptors > 2-entry pool.
        assert_eq!(
            pool.admit(1, 0, params(16)),
            Err(PoolError::TaskTooLarge {
                needed: 3,
                capacity: 2
            })
        );
    }

    #[test]
    fn fifo_free_list_reuses_indices_in_completion_order() {
        let mut pool = TaskPool::new(&cfg(3, 8));
        let (a, _) = pool.admit(1, 0, params(1)).unwrap();
        let (b, _) = pool.admit(1, 1, params(1)).unwrap();
        let (c, _) = pool.admit(1, 2, params(1)).unwrap();
        pool.retire(b);
        pool.retire(a);
        pool.retire(c);
        // Free FIFO order is b, a, c.
        let (x, _) = pool.admit(1, 3, params(1)).unwrap();
        let (y, _) = pool.admit(1, 4, params(1)).unwrap();
        let (z, _) = pool.admit(1, 5, params(1)).unwrap();
        assert_eq!((x, y, z), (b, a, c));
    }

    #[test]
    fn growable_pool_never_rejects() {
        let mut pool = TaskPool::new(&NexusConfig::unbounded());
        let mut tds = Vec::new();
        for i in 0..10_000 {
            tds.push(pool.admit(1, i, params(2)).unwrap().0);
        }
        assert!(pool.capacity() >= 10_000);
        assert_eq!(pool.stats().tasks_admitted, 10_000);
        // Unbounded params_per_td → never any dummies.
        assert_eq!(pool.stats().dummy_tds_allocated, 0);
        for td in tds {
            pool.retire(td);
        }
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn peak_occupancy_tracks_dummies() {
        let mut pool = TaskPool::new(&cfg(8, 4));
        // 6 params at 4/TD → 1 + ceil(2/3) = 2 descriptors.
        let (a, _) = pool.admit(1, 0, params(6)).unwrap();
        let (_b, _) = pool.admit(1, 1, params(6)).unwrap();
        assert_eq!(pool.stats().peak_occupancy, 4);
        pool.retire(a);
        assert_eq!(pool.stats().peak_occupancy, 4);
        assert_eq!(pool.in_use(), 2);
    }

    #[test]
    fn live_iteration_and_liveness() {
        let mut pool = TaskPool::new(&cfg(4, 8));
        let (a, _) = pool.admit(1, 10, params(1)).unwrap();
        let (b, _) = pool.admit(1, 11, params(1)).unwrap();
        assert!(pool.is_live(a) && pool.is_live(b));
        pool.retire(a);
        assert!(!pool.is_live(a));
        let tags: Vec<u64> = pool.iter_live().map(|(_, e)| e.tag).collect();
        assert_eq!(tags, vec![11]);
    }
}
