//! # nexuspp-core — the Nexus++ task manager
//!
//! The paper's primary contribution, as a pure (timing-free) library:
//!
//! * [`pool`] — the **Task Pool**: the fixed-size table of Task Descriptors,
//!   indexed by the task IDs used everywhere inside Nexus++ ("a task is
//!   identified by its Task Pool index"), with the **dummy task** mechanism
//!   that chains extra descriptors when a task has more inputs/outputs than
//!   fit in one descriptor (§II-C / III-C),
//! * [`table`] — the **Dependence Table**: the hash table with in-table
//!   chaining, per-address access state (`isOut`, `Rdrs`, `ww`), fixed-size
//!   **Kick-Off Lists** extended by chained **dummy entries**, implementing
//!   the dependency-resolution algorithm of Listing 2 and the
//!   finished-task wake-up protocol (§III-B),
//! * [`engine`] — the **dependency engine** gluing pool + table into the
//!   Task Maestro's protocol: admit (Write TP), check (Check Deps), finish
//!   (Handle Finished). Every operation reports an [`OpCost`] — the number
//!   of table accesses performed — which the Task Machine multiplies by the
//!   2 ns on-chip access time, exactly as the paper computes hash-table
//!   timing ("the on-chip access time multiplied by the number of lookups
//!   required per access"),
//! * [`oracle`] — a reference dependency tracker (explicit task DAG from
//!   last-writer/readers sets) used for differential testing: the hardware
//!   protocol must produce exactly the same ready sets,
//! * [`config`] — capacities (Table IV defaults) including the *growable*
//!   mode used by the threaded runtime, where capacity virtualization
//!   (dummy tasks/entries) is unnecessary,
//! * [`priority`] — the ready-task handoff types (the StarSs
//!   `highpriority` clause) shared by the schedulers and runtimes that
//!   consume what the engine releases,
//! * [`submit`] — the unified submission surface: the [`SubmitError`]
//!   enum every `submit*` entry point reports (capacity-full, pool-full,
//!   bad-params) and the [`TaskBuilder`]/[`Submission`] pair that is the
//!   blessed way to construct a task,
//! * [`testsupport`] — shared watchdog/deadline-poll helpers for the
//!   workspace's integration tests (paths that regress by *hanging*
//!   need a watchdog, and cross-thread rendezvous needs deterministic
//!   polling instead of sleeps).

pub mod config;
pub mod cost;
pub mod engine;
pub mod oracle;
pub mod pool;
pub mod priority;
pub mod submit;
pub mod table;
pub mod testsupport;

pub use config::{NexusConfig, ShardCapacity};
pub use cost::OpCost;
pub use engine::{CheckProgress, DependencyEngine, FinishResult};
pub use pool::{PoolError, TaskPool, TdIndex};
pub use priority::Priority;
pub use submit::{Submission, SubmitError, TaskBuilder, TenantId};
pub use table::{address_hash, nth_addr_on_shard, shard_of_addr, DepTable, TableFull};
