//! The Dependence Table: where Nexus++ stores the task graph.
//!
//! "Each input/output that is accessed by a task will have an entry in the
//! Dependence Table indicating its access mode, and a Kick-Off List that
//! contains the IDs of tasks waiting for this address to be produced before
//! they can run. The Dependence Table is a hash table with a simple separate
//! chaining hash collisions resolution algorithm h()."
//!
//! Per entry (Table II of the paper): the full address (`fAddr`), segment
//! size, `isOut` (a writer currently owns the segment), `Rdrs` (count of
//! tasks currently reading it), `ww` ("a writer waits" — the write-after-
//! read guard), hash-chain links (`n_v`/`n_i`/`p_i`), and the dummy-entry
//! chain (`h_D`/`l_D`) that extends the fixed-size Kick-Off List.
//!
//! ## Chaining scheme
//!
//! The table *is* the bucket array: `h(addr)` names a home slot, collision
//! nodes are allocated from free slots and linked with `next`/`prev`
//! indices, exactly the fields the paper lists. Two invariants keep
//! deletion simple and lookups O(chain):
//!
//! 1. if any entry with home bucket `b` exists, the head of `b`'s chain
//!    occupies slot `b`;
//! 2. a parent's Kick-Off List is empty only if it has no extension
//!    (dummy) entries — when the parent list drains, the first extension's
//!    contents are promoted into it and the extension is freed.
//!
//! Maintaining invariant 1 means an insert may *relocate* a foreign node
//! out of the new entry's home slot (hardware does the same copy the paper
//! describes for dummy-entry promotion); every relocation is charged to
//! [`OpCost`]. Invariant 2 differs cosmetically from the paper — which
//! promotes the *parent's metadata into the dummy* and frees the home slot —
//! but occupies the same number of entries, costs the same accesses, and
//! keeps the head list directly addressable, which is the property the
//! paper cares about ("allows direct (and hence, fast) access to the first
//! Kick-Off List").

use crate::config::NexusConfig;
use crate::cost::OpCost;
use crate::pool::TdIndex;
use nexuspp_desim::stats::Summary;
use nexuspp_trace::AccessMode;
use std::collections::VecDeque;

/// The table has no free entry for a required allocation; the requesting
/// Maestro block must stall and retry after `Handle Finished` frees space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

/// A task waiting in a Kick-Off List, with the access mode it wants for
/// the address (the hardware re-reads the mode from the Task Pool; storing
/// it alongside the ID is equivalent bookkeeping and is charged as the same
/// access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// The waiting task.
    pub td: TdIndex,
    /// Its access mode for this address.
    pub mode: AccessMode,
}

/// Outcome of checking one parameter of a new task against the table
/// (one iteration of the Listing 2 loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckParamOutcome {
    /// Access granted immediately; no dependence recorded.
    NoDependency,
    /// The task was queued in the address's Kick-Off List; its Dependence
    /// Counter must be incremented.
    Dependent,
}

/// Outcome of releasing one parameter of a finished task.
#[derive(Debug, Clone, Default)]
pub struct WakeResult {
    /// Tasks granted access by this release (each one's Dependence Counter
    /// must be decremented).
    pub woken: Vec<Waiter>,
    /// The address entry was removed from the table.
    pub deleted: bool,
    /// Table accesses performed.
    pub cost: OpCost,
}

#[derive(Debug, Clone)]
struct ParentNode {
    addr: u64,
    #[allow(dead_code)] // carried per the paper's entry format; hazards use base addresses
    size: u32,
    is_out: bool,
    rdrs: u32,
    ww: bool,
    kick: VecDeque<Waiter>,
    /// Hash-chain link (`n_v`/`n_i`).
    next: Option<u32>,
    /// Hash-chain back link (`p_i`).
    prev: Option<u32>,
    /// First kick-off extension entry (`h_D`).
    ext_head: Option<u32>,
    /// Last kick-off extension entry (`l_D`).
    ext_last: Option<u32>,
    /// Number of extension entries (for the Fig 6 chain-length statistic).
    ext_count: u32,
    /// Total queued waiters (parent list + extensions).
    waiters: u32,
}

#[derive(Debug, Clone)]
struct ExtNode {
    /// Slot index of the owning parent (used to repair links on
    /// relocation).
    owner: u32,
    next: Option<u32>,
    items: VecDeque<Waiter>,
}

#[derive(Debug, Clone)]
enum Slot {
    Free,
    Parent(ParentNode),
    Ext(ExtNode),
}

/// Statistics for the evaluation reports and Figure 6.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Address entries inserted.
    pub inserts: u64,
    /// Address entries removed.
    pub deletes: u64,
    /// Kick-off extension (dummy) entries allocated.
    pub ext_allocs: u64,
    /// Promotions of extension contents into a drained parent list.
    pub promotions: u64,
    /// Node relocations performed to keep chain heads at home slots.
    pub relocations: u64,
    /// Allocations rejected because the table was full.
    pub full_rejections: u64,
    /// Peak occupied slots (parents + extensions).
    pub peak_occupancy: usize,
    /// Distribution of hash-chain lengths observed at probes.
    pub chain_lengths: Summary,
    /// Longest hash chain ever observed.
    pub max_chain_len: u64,
    /// Longest kick-off chain (1 + extensions) ever observed for an entry.
    pub max_kick_chain: u64,
    /// Largest number of simultaneous waiters on one address (the fan-out
    /// pressure that classic Nexus' fixed lists cannot absorb).
    pub max_waiters_live: u64,
}

/// The Dependence Table.
#[derive(Debug, Clone)]
pub struct DepTable {
    kickoff_cap: usize,
    growable: bool,
    slots: Vec<Slot>,
    /// Candidate free indices. May contain stale entries (slots claimed
    /// directly as chain heads); `pop_free` skips those lazily, keeping
    /// every operation O(1) amortized.
    free: Vec<u32>,
    occupied: usize,
    stats: TableStats,
}

/// The address hash family shared by the Dependence Table and any layer
/// that partitions addresses over it (the sharded engine): the SplitMix64
/// finalizer — cheap, well-distributed, a plausible h().
#[inline]
pub fn address_hash(addr: u64) -> u64 {
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which of `n_shards` address-partitioned engines owns `addr`. Uses the
/// high hash bits so the assignment stays statistically independent of the
/// in-table bucket choice, which consumes the low bits via the table-size
/// modulus.
#[inline]
pub fn shard_of_addr(addr: u64, n_shards: usize) -> usize {
    assert!(n_shards > 0, "need at least one shard");
    ((address_hash(addr) >> 32) % n_shards as u64) as usize
}

/// The `index`-th cache-line-aligned address (by a fixed scan order)
/// homed on `shard` of an `n_shards`-way partition. Shard-targeted
/// workload generators use this so the threaded harnesses and the trace
/// specs aim at *the same* addresses — the wake-stress pair in
/// `nexuspp-shard` and `nexuspp-workloads` must describe one DAG.
pub fn nth_addr_on_shard(shard: usize, n_shards: usize, index: u32) -> u64 {
    let mut found = 0;
    let mut a = 0u64;
    loop {
        let addr = 0xAE_0000 + a * 64;
        a += 1;
        if shard_of_addr(addr, n_shards) == shard {
            if found == index {
                return addr;
            }
            found += 1;
        }
    }
}

#[inline]
fn mix(addr: u64) -> u64 {
    address_hash(addr)
}

/// Result of walking a bucket chain.
struct Probe {
    /// Slot holding `addr`, if present.
    found: Option<u32>,
    /// Chain tail, if the home slot hosts this bucket's chain and `addr`
    /// is absent.
    tail: Option<u32>,
    /// Entries probed.
    hops: u64,
}

impl DepTable {
    /// Build a table from a configuration.
    pub fn new(cfg: &NexusConfig) -> Self {
        cfg.validate();
        let n = cfg.dep_table_entries;
        DepTable {
            kickoff_cap: cfg.kickoff_entries,
            growable: cfg.growable,
            slots: vec![Slot::Free; n],
            free: (0..n as u32).rev().collect(),
            occupied: 0,
            stats: TableStats::default(),
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots (parents + extensions).
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Free slots.
    pub fn free_slots(&self) -> usize {
        self.slots.len() - self.occupied
    }

    /// Number of live address entries (parents only). O(capacity);
    /// diagnostics only.
    pub fn live_addresses(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Parent(_)))
            .count()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    #[inline]
    fn bucket(&self, addr: u64) -> u32 {
        (mix(addr) % self.slots.len() as u64) as u32
    }

    fn parent(&self, idx: u32) -> &ParentNode {
        match &self.slots[idx as usize] {
            Slot::Parent(p) => p,
            other => panic!("slot {idx} is not a parent: {other:?}"),
        }
    }

    fn parent_mut(&mut self, idx: u32) -> &mut ParentNode {
        match &mut self.slots[idx as usize] {
            Slot::Parent(p) => p,
            other => panic!("slot {idx} is not a parent: {other:?}"),
        }
    }

    fn ext_mut(&mut self, idx: u32) -> &mut ExtNode {
        match &mut self.slots[idx as usize] {
            Slot::Ext(e) => e,
            other => panic!("slot {idx} is not an extension: {other:?}"),
        }
    }

    /// Walk the chain rooted at `addr`'s home slot.
    fn probe(&self, addr: u64) -> Probe {
        let home = self.bucket(addr);
        let mut hops = 1u64;
        match &self.slots[home as usize] {
            Slot::Parent(p) if self.bucket(p.addr) == home && p.prev.is_none() => {
                let mut idx = home;
                loop {
                    let node = self.parent(idx);
                    if node.addr == addr {
                        return Probe {
                            found: Some(idx),
                            tail: None,
                            hops,
                        };
                    }
                    match node.next {
                        Some(nx) => {
                            idx = nx;
                            hops += 1;
                        }
                        None => {
                            return Probe {
                                found: None,
                                tail: Some(idx),
                                hops,
                            }
                        }
                    }
                }
            }
            _ => Probe {
                found: None,
                tail: None,
                hops,
            },
        }
    }

    fn probe_recorded(&mut self, addr: u64) -> Probe {
        let p = self.probe(addr);
        self.stats.chain_lengths.record(p.hops);
        if p.hops > self.stats.max_chain_len {
            self.stats.max_chain_len = p.hops;
        }
        p
    }

    /// True if the table currently tracks `addr` (test/diagnostic helper).
    pub fn contains(&self, addr: u64) -> bool {
        self.probe(addr).found.is_some()
    }

    /// Reader count for `addr` (diagnostics; `None` if absent).
    pub fn readers_of(&self, addr: u64) -> Option<u32> {
        self.probe(addr).found.map(|i| self.parent(i).rdrs)
    }

    /// Writer-owned flag for `addr` (diagnostics; `None` if absent).
    pub fn is_written(&self, addr: u64) -> Option<bool> {
        self.probe(addr).found.map(|i| self.parent(i).is_out)
    }

    /// Number of queued waiters for `addr` including extension entries
    /// (diagnostics; `None` if absent).
    pub fn waiters_of(&self, addr: u64) -> Option<usize> {
        let idx = self.probe(addr).found?;
        let p = self.parent(idx);
        let mut n = p.kick.len();
        let mut ext = p.ext_head;
        while let Some(e) = ext {
            match &self.slots[e as usize] {
                Slot::Ext(x) => {
                    n += x.items.len();
                    ext = x.next;
                }
                other => panic!("broken ext chain: {other:?}"),
            }
        }
        Some(n)
    }

    /// Pop a genuinely free slot, skipping stale candidates. Does *not*
    /// bump occupancy — callers do, once the slot's role is decided.
    fn pop_free(&mut self) -> Result<u32, TableFull> {
        while let Some(i) = self.free.pop() {
            if matches!(self.slots[i as usize], Slot::Free) {
                return Ok(i);
            }
        }
        self.stats.full_rejections += 1;
        Err(TableFull)
    }

    fn note_occupied(&mut self) {
        self.occupied += 1;
        if self.occupied > self.stats.peak_occupancy {
            self.stats.peak_occupancy = self.occupied;
        }
    }

    fn release_slot(&mut self, idx: u32) {
        debug_assert!(!matches!(self.slots[idx as usize], Slot::Free));
        self.slots[idx as usize] = Slot::Free;
        self.free.push(idx);
        self.occupied -= 1;
    }

    /// Move the node at `from` into the free slot `to`, repairing all links
    /// that referenced `from`. Returns the access cost of the repair.
    fn relocate(&mut self, from: u32, to: u32) -> OpCost {
        debug_assert!(matches!(self.slots[to as usize], Slot::Free));
        let node = std::mem::replace(&mut self.slots[from as usize], Slot::Free);
        let mut cost = OpCost::table(2); // read `from` + write `to`
        match &node {
            Slot::Parent(p) => {
                debug_assert!(
                    p.prev.is_some(),
                    "chain heads live at their home slot and are never relocated"
                );
                if let Some(prev) = p.prev {
                    self.parent_mut(prev).next = Some(to);
                    cost += OpCost::table(1);
                }
                if let Some(next) = p.next {
                    self.parent_mut(next).prev = Some(to);
                    cost += OpCost::table(1);
                }
                // Extensions name their owner by slot; repoint them.
                let mut ext = p.ext_head;
                while let Some(e) = ext {
                    let x = self.ext_mut(e);
                    x.owner = to;
                    ext = x.next;
                    cost += OpCost::table(1);
                }
            }
            Slot::Ext(x) => {
                let owner = x.owner;
                let op = self.parent_mut(owner);
                if op.ext_head == Some(from) {
                    op.ext_head = Some(to);
                } else {
                    // Find the predecessor extension and repoint it.
                    let mut cur = op.ext_head.expect("owner must have extensions");
                    loop {
                        cost += OpCost::table(1);
                        let nx = self.ext_mut(cur).next.expect("chain must contain `from`");
                        if nx == from {
                            self.ext_mut(cur).next = Some(to);
                            break;
                        }
                        cur = nx;
                    }
                }
                let op = self.parent_mut(owner);
                if op.ext_last == Some(from) {
                    op.ext_last = Some(to);
                }
                cost += OpCost::table(1);
            }
            Slot::Free => unreachable!("relocating a free slot"),
        }
        self.slots[to as usize] = node;
        self.stats.relocations += 1;
        cost
    }

    /// Grow the table ×2 and rehash (growable mode only). Extension
    /// entries never exist in growable mode (unbounded kick lists), so only
    /// parents move.
    fn grow(&mut self) {
        assert!(self.growable, "grow() on a fixed-capacity table");
        let old = std::mem::take(&mut self.slots);
        let new_len = old.len() * 2;
        self.slots = vec![Slot::Free; new_len];
        self.free = (0..new_len as u32).rev().collect();
        self.occupied = 0;
        let saved_stats = self.stats.clone();
        for slot in old {
            match slot {
                Slot::Free => {}
                Slot::Ext(_) => unreachable!("extensions cannot exist in growable mode"),
                Slot::Parent(p) => {
                    let probe = self.probe(p.addr);
                    debug_assert!(probe.found.is_none());
                    let (idx, _) = self
                        .place_parent(p.addr, p.size, probe.tail)
                        .expect("doubled table cannot be full");
                    let node = self.parent_mut(idx);
                    node.is_out = p.is_out;
                    node.rdrs = p.rdrs;
                    node.ww = p.ww;
                    node.waiters = p.waiters;
                    node.kick = p.kick;
                }
            }
        }
        // Rehash bookkeeping is an artifact of the software model; keep the
        // externally meaningful statistics.
        self.stats = saved_stats;
    }

    /// Insert a fresh parent node for `addr` (which must be absent; the
    /// caller passes the `tail` from its probe of `addr`). Maintains the
    /// home-slot invariant. Returns `(slot, cost)` where cost covers only
    /// the placement work (the probe was already charged).
    fn place_parent(
        &mut self,
        addr: u64,
        size: u32,
        tail: Option<u32>,
    ) -> Result<(u32, OpCost), TableFull> {
        let home = self.bucket(addr);
        let fresh = |prev: Option<u32>| ParentNode {
            addr,
            size,
            is_out: false,
            rdrs: 0,
            ww: false,
            kick: VecDeque::new(),
            next: None,
            prev,
            ext_head: None,
            ext_last: None,
            ext_count: 0,
            waiters: 0,
        };
        if let Some(tail) = tail {
            // Chain exists at home: append at the tail.
            let slot = self.pop_free()?;
            self.note_occupied();
            self.parent_mut(tail).next = Some(slot);
            self.slots[slot as usize] = Slot::Parent(fresh(Some(tail)));
            self.stats.inserts += 1;
            return Ok((slot, OpCost::table(2)));
        }
        match &self.slots[home as usize] {
            Slot::Free => {
                // Home free: become the chain head there (the slot's stale
                // entry in the free vector is skipped lazily later).
                self.note_occupied();
                self.slots[home as usize] = Slot::Parent(fresh(None));
                self.stats.inserts += 1;
                Ok((home, OpCost::table(1)))
            }
            _ => {
                // Home occupied by a foreign node: relocate it, then claim
                // the home slot as this bucket's head.
                let spare = self.pop_free()?;
                self.note_occupied();
                let cost = self.relocate(home, spare);
                self.slots[home as usize] = Slot::Parent(fresh(None));
                self.stats.inserts += 1;
                Ok((home, cost + OpCost::table(1)))
            }
        }
    }

    /// Remove the parent at `idx` (kick list must be drained). Maintains
    /// the home-slot invariant by pulling the next chain node into the home
    /// slot when a head with successors is removed.
    fn remove_parent(&mut self, idx: u32) -> OpCost {
        let p = self.parent(idx);
        debug_assert!(
            p.kick.is_empty() && p.ext_head.is_none(),
            "removing entry with waiters"
        );
        let (prev, next) = (p.prev, p.next);
        let mut cost = OpCost::table(1);
        match prev {
            Some(pv) => {
                // Mid/tail node: unlink.
                self.parent_mut(pv).next = next;
                cost += OpCost::table(1);
                if let Some(nx) = next {
                    self.parent_mut(nx).prev = Some(pv);
                    cost += OpCost::table(1);
                }
                self.release_slot(idx);
            }
            None => {
                // Chain head at the home slot.
                match next {
                    None => self.release_slot(idx),
                    Some(nx) => {
                        // Pull the successor into the home slot.
                        self.slots[idx as usize] = Slot::Free;
                        let mut node =
                            match std::mem::replace(&mut self.slots[nx as usize], Slot::Free) {
                                Slot::Parent(p) => p,
                                other => panic!("chain successor is not a parent: {other:?}"),
                            };
                        node.prev = None;
                        if let Some(nn) = node.next {
                            self.parent_mut(nn).prev = Some(idx);
                            cost += OpCost::table(1);
                        }
                        let mut ext = node.ext_head;
                        while let Some(e) = ext {
                            let x = self.ext_mut(e);
                            x.owner = idx;
                            ext = x.next;
                            cost += OpCost::table(1);
                        }
                        self.slots[idx as usize] = Slot::Parent(node);
                        self.free.push(nx);
                        self.occupied -= 1;
                        cost += OpCost::table(2);
                    }
                }
            }
        }
        self.stats.deletes += 1;
        cost
    }

    /// Queue `w` in the kick-off list of the parent at `idx`, chaining a
    /// new extension (dummy) entry if the tail list is full.
    fn kick_push(&mut self, idx: u32, w: Waiter) -> Result<OpCost, TableFull> {
        let cap = self.kickoff_cap;
        let p = self.parent_mut(idx);
        if p.ext_head.is_none() && p.kick.len() < cap {
            p.kick.push_back(w);
            let n = p.waiters + 1;
            p.waiters = n;
            self.note_waiters(n);
            return Ok(OpCost::table(1));
        }
        if let Some(last) = p.ext_last {
            let x = self.ext_mut(last);
            if x.items.len() < cap {
                x.items.push_back(w);
                let p = self.parent_mut(idx);
                let n = p.waiters + 1;
                p.waiters = n;
                self.note_waiters(n);
                return Ok(OpCost::table(2));
            }
        }
        // Allocate a fresh extension entry.
        let slot = self.pop_free()?;
        self.note_occupied();
        let p = self.parent_mut(idx);
        let old_last = p.ext_last;
        if p.ext_head.is_none() {
            p.ext_head = Some(slot);
        }
        p.ext_last = Some(slot);
        p.ext_count += 1;
        let kick_chain = 1 + p.ext_count as u64;
        if kick_chain > self.stats.max_kick_chain {
            self.stats.max_kick_chain = kick_chain;
        }
        if let Some(ol) = old_last {
            self.ext_mut(ol).next = Some(slot);
        }
        let mut items = VecDeque::new();
        items.push_back(w);
        self.slots[slot as usize] = Slot::Ext(ExtNode {
            owner: idx,
            next: None,
            items,
        });
        self.stats.ext_allocs += 1;
        let p = self.parent_mut(idx);
        let n = p.waiters + 1;
        p.waiters = n;
        self.note_waiters(n);
        Ok(OpCost::table(3))
    }

    #[inline]
    fn note_waiters(&mut self, n: u32) {
        if n as u64 > self.stats.max_waiters_live {
            self.stats.max_waiters_live = n as u64;
        }
    }

    /// Pop the head waiter of the parent at `idx`, promoting the first
    /// extension's contents when the parent list drains (keeping invariant
    /// 2: list empty ⇒ no extensions).
    fn kick_pop(&mut self, idx: u32) -> (Option<Waiter>, OpCost) {
        let p = self.parent_mut(idx);
        let w = p.kick.pop_front();
        if w.is_some() {
            p.waiters -= 1;
        }
        let mut cost = OpCost::table(1);
        if p.kick.is_empty() {
            if let Some(e) = p.ext_head {
                let ext = match std::mem::replace(&mut self.slots[e as usize], Slot::Free) {
                    Slot::Ext(x) => x,
                    other => panic!("broken ext chain: {other:?}"),
                };
                self.free.push(e);
                self.occupied -= 1;
                let p = self.parent_mut(idx);
                p.kick = ext.items;
                p.ext_head = ext.next;
                p.ext_count -= 1;
                if ext.next.is_none() {
                    p.ext_last = None;
                }
                self.stats.promotions += 1;
                cost += OpCost::table(2);
            }
        }
        (w, cost)
    }

    /// Check one parameter of a new task against the table — one iteration
    /// of the Listing 2 loop. On `Dependent`, the caller increments the
    /// task's Dependence Counter.
    pub fn check_param(
        &mut self,
        td: TdIndex,
        addr: u64,
        size: u32,
        mode: AccessMode,
    ) -> Result<(CheckParamOutcome, OpCost), TableFull> {
        loop {
            let probe = self.probe_recorded(addr);
            let mut cost = OpCost::table(probe.hops);
            let result = match probe.found {
                None => {
                    // `if (A not exist) { Add A to DT; … }`
                    match self.place_parent(addr, size, probe.tail) {
                        Ok((idx, c2)) => {
                            cost += c2;
                            let p = self.parent_mut(idx);
                            if mode.is_read_only() {
                                p.rdrs = 1;
                                p.is_out = false;
                            } else {
                                p.is_out = true;
                            }
                            Ok((CheckParamOutcome::NoDependency, cost))
                        }
                        Err(TableFull) => Err(TableFull),
                    }
                }
                Some(idx) => {
                    let (is_out, ww) = {
                        let p = self.parent(idx);
                        (p.is_out, p.ww)
                    };
                    if mode.is_read_only() {
                        if !is_out && !ww {
                            // `DT[A].Rdrs++`
                            let p = self.parent_mut(idx);
                            debug_assert!(p.rdrs > 0, "live read entry must have readers");
                            p.rdrs += 1;
                            cost += OpCost::table(1);
                            Ok((CheckParamOutcome::NoDependency, cost))
                        } else {
                            // RAW (or reader behind a waiting writer).
                            match self.kick_push(idx, Waiter { td, mode }) {
                                Ok(c2) => Ok((CheckParamOutcome::Dependent, cost + c2)),
                                Err(TableFull) => Err(TableFull),
                            }
                        }
                    } else {
                        // Writer: queue regardless (RAW/WAW/WAR), set `ww`
                        // if the segment is currently reader-owned.
                        match self.kick_push(idx, Waiter { td, mode }) {
                            Ok(c2) => {
                                cost += c2;
                                let p = self.parent_mut(idx);
                                if !p.is_out {
                                    p.ww = true;
                                    cost += OpCost::table(1);
                                }
                                Ok((CheckParamOutcome::Dependent, cost))
                            }
                            Err(TableFull) => Err(TableFull),
                        }
                    }
                }
            };
            match result {
                Ok(ok) => return Ok(ok),
                Err(TableFull) if self.growable => {
                    self.grow();
                    continue;
                }
                Err(TableFull) => return Err(TableFull),
            }
        }
    }

    /// Release one parameter of a finished task — the `Handle Finished`
    /// narrative of §III-B. Never allocates, so it never stalls.
    pub fn finish_param(&mut self, addr: u64, mode: AccessMode) -> WakeResult {
        let probe = self.probe_recorded(addr);
        let mut cost = OpCost::table(probe.hops);
        let idx = probe
            .found
            .unwrap_or_else(|| panic!("finish_param: address {addr:#x} not tracked"));
        let mut woken = Vec::new();
        let mut deleted = false;

        if mode.is_read_only() {
            // "if T1 has read-only A, then the Rdrs count of A is
            // decremented."
            let p = self.parent_mut(idx);
            debug_assert!(p.rdrs > 0, "reader finish with Rdrs == 0");
            debug_assert!(!p.is_out, "reader finish on writer-owned entry");
            p.rdrs -= 1;
            cost += OpCost::table(1);
            if p.rdrs == 0 {
                if !p.ww {
                    // "If it becomes 0 and no writer task is waiting, then A
                    // is deleted from the Dependence Table."
                    debug_assert!(p.kick.is_empty());
                    cost += self.remove_parent(idx);
                    deleted = true;
                } else {
                    // "But if the ww flag was true, then a pending task T2
                    // must exist and is read from Kick-Off List of A."
                    let (w, c2) = self.kick_pop(idx);
                    cost += c2;
                    let w = w.expect("ww set but kick-off list empty");
                    debug_assert!(!w.mode.is_read_only(), "ww head must be a writer");
                    let p = self.parent_mut(idx);
                    p.is_out = true;
                    p.ww = false;
                    woken.push(w);
                }
            }
        } else {
            // Writer finished.
            let p = self.parent_mut(idx);
            debug_assert!(p.is_out, "writer finish on reader-owned entry");
            debug_assert_eq!(p.rdrs, 0, "writer finish with readers present");
            if p.kick.is_empty() {
                debug_assert!(p.ext_head.is_none());
                cost += self.remove_parent(idx);
                deleted = true;
            } else {
                // "continuously read these tasks IDs one after the other as
                // long as they read-only A, until it reads a task that is
                // willing to write A, or the Kick-Off List of A is empty."
                loop {
                    let head = self.parent(idx).kick.front().copied();
                    cost += OpCost::table(1);
                    match head {
                        Some(w) if w.mode.is_read_only() => {
                            let (popped, c2) = self.kick_pop(idx);
                            cost += c2;
                            debug_assert_eq!(popped, Some(w));
                            self.parent_mut(idx).rdrs += 1;
                            woken.push(w);
                        }
                        Some(w) => {
                            // A writer heads the queue.
                            if woken.is_empty() {
                                // No intervening readers: hand over directly.
                                let (popped, c2) = self.kick_pop(idx);
                                cost += c2;
                                debug_assert_eq!(popped, Some(w));
                                debug_assert!(!self.parent(idx).ww);
                                woken.push(w);
                                // `is_out` stays true for the new writer.
                            } else {
                                // Readers drained first: the writer waits.
                                let p = self.parent_mut(idx);
                                p.is_out = false;
                                p.ww = true;
                                cost += OpCost::table(1);
                            }
                            break;
                        }
                        None => {
                            // All waiters were readers.
                            let p = self.parent_mut(idx);
                            debug_assert!(!woken.is_empty());
                            p.is_out = false;
                            p.ww = false;
                            cost += OpCost::table(1);
                            break;
                        }
                    }
                }
            }
        }
        self.debug_check_entry(addr);
        WakeResult {
            woken,
            deleted,
            cost,
        }
    }

    /// Debug invariant: a live entry is writer-owned or has readers; an
    /// empty parent kick list implies no extensions.
    fn debug_check_entry(&self, addr: u64) {
        #[cfg(debug_assertions)]
        {
            if let Some(idx) = self.probe(addr).found {
                let p = self.parent(idx);
                assert!(
                    p.is_out || p.rdrs > 0,
                    "live entry {addr:#x} neither written nor read"
                );
                if p.kick.is_empty() {
                    assert!(p.ext_head.is_none(), "empty kick list with extensions");
                }
                if p.ww {
                    assert!(!p.kick.is_empty(), "ww set with empty kick list");
                }
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = addr;
    }

    /// Full structural scan asserting every invariant (tests only; O(n)).
    pub fn check_invariants(&self) {
        let mut seen_occupied = 0;
        for (i, s) in self.slots.iter().enumerate() {
            match s {
                Slot::Free => {}
                Slot::Parent(p) => {
                    seen_occupied += 1;
                    let home = self.bucket(p.addr);
                    match p.prev {
                        None => assert_eq!(home, i as u32, "chain head not at home slot"),
                        Some(pv) => {
                            let prev = self.parent(pv);
                            assert_eq!(prev.next, Some(i as u32), "broken prev link");
                            assert_eq!(self.bucket(prev.addr), home, "mixed-bucket chain");
                        }
                    }
                    assert!(p.is_out || p.rdrs > 0, "dead entry {:#x} retained", p.addr);
                    if p.kick.is_empty() {
                        assert!(p.ext_head.is_none());
                    }
                    if p.ext_head.is_none() {
                        assert!(p.ext_last.is_none());
                        assert_eq!(p.ext_count, 0);
                    }
                    assert!(p.kick.len() <= self.kickoff_cap);
                    {
                        let mut total = p.kick.len();
                        let mut cur = p.ext_head;
                        while let Some(c) = cur {
                            match &self.slots[c as usize] {
                                Slot::Ext(x) => {
                                    total += x.items.len();
                                    cur = x.next;
                                }
                                other => panic!("broken ext chain: {other:?}"),
                            }
                        }
                        assert_eq!(total, p.waiters as usize, "waiter count drift");
                    }
                }
                Slot::Ext(x) => {
                    seen_occupied += 1;
                    assert!(!x.items.is_empty(), "empty extension entry retained");
                    assert!(x.items.len() <= self.kickoff_cap);
                    let owner = self.parent(x.owner);
                    // The owner's chain must reach this extension.
                    let mut cur = owner.ext_head;
                    let mut reached = false;
                    while let Some(c) = cur {
                        if c == i as u32 {
                            reached = true;
                            break;
                        }
                        cur = match &self.slots[c as usize] {
                            Slot::Ext(e) => e.next,
                            other => panic!("broken ext chain: {other:?}"),
                        };
                    }
                    assert!(reached, "orphan extension entry");
                }
            }
        }
        assert_eq!(seen_occupied, self.occupied, "occupancy accounting drift");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: usize, kick: usize) -> DepTable {
        DepTable::new(&NexusConfig {
            dep_table_entries: entries,
            kickoff_entries: kick,
            ..Default::default()
        })
    }

    fn td(i: u32) -> TdIndex {
        TdIndex(i)
    }

    #[test]
    fn reader_then_reader_shares() {
        let mut t = table(16, 8);
        let (o, _) = t.check_param(td(1), 0xA0, 4, AccessMode::In).unwrap();
        assert_eq!(o, CheckParamOutcome::NoDependency);
        let (o, _) = t.check_param(td(2), 0xA0, 4, AccessMode::In).unwrap();
        assert_eq!(o, CheckParamOutcome::NoDependency);
        assert_eq!(t.readers_of(0xA0), Some(2));
        t.check_invariants();
    }

    #[test]
    fn raw_hazard_queues_reader() {
        let mut t = table(16, 8);
        t.check_param(td(1), 0xB0, 4, AccessMode::Out).unwrap();
        let (o, _) = t.check_param(td(2), 0xB0, 4, AccessMode::In).unwrap();
        assert_eq!(o, CheckParamOutcome::Dependent);
        assert_eq!(t.waiters_of(0xB0), Some(1));
        // Writer finishes → reader woken.
        let r = t.finish_param(0xB0, AccessMode::Out);
        assert_eq!(
            r.woken,
            vec![Waiter {
                td: td(2),
                mode: AccessMode::In
            }]
        );
        assert!(!r.deleted);
        assert_eq!(t.readers_of(0xB0), Some(1));
        // Reader finishes → entry deleted.
        let r = t.finish_param(0xB0, AccessMode::In);
        assert!(r.deleted);
        assert!(!t.contains(0xB0));
        t.check_invariants();
    }

    #[test]
    fn war_hazard_uses_ww_flag() {
        let mut t = table(16, 8);
        t.check_param(td(1), 0xC0, 4, AccessMode::In).unwrap();
        t.check_param(td(2), 0xC0, 4, AccessMode::In).unwrap();
        // Writer must wait for both readers (WAR).
        let (o, _) = t.check_param(td(3), 0xC0, 4, AccessMode::Out).unwrap();
        assert_eq!(o, CheckParamOutcome::Dependent);
        // A later reader may not jump the waiting writer.
        let (o, _) = t.check_param(td(4), 0xC0, 4, AccessMode::In).unwrap();
        assert_eq!(o, CheckParamOutcome::Dependent);
        let r = t.finish_param(0xC0, AccessMode::In);
        assert!(r.woken.is_empty(), "one reader still active");
        let r = t.finish_param(0xC0, AccessMode::In);
        assert_eq!(
            r.woken,
            vec![Waiter {
                td: td(3),
                mode: AccessMode::Out
            }]
        );
        assert_eq!(t.is_written(0xC0), Some(true));
        // Writer done → queued reader wakes.
        let r = t.finish_param(0xC0, AccessMode::Out);
        assert_eq!(
            r.woken,
            vec![Waiter {
                td: td(4),
                mode: AccessMode::In
            }]
        );
        let r = t.finish_param(0xC0, AccessMode::In);
        assert!(r.deleted);
        t.check_invariants();
    }

    #[test]
    fn waw_hand_over_without_intervening_readers() {
        let mut t = table(16, 8);
        t.check_param(td(1), 0xD0, 4, AccessMode::Out).unwrap();
        let (o, _) = t.check_param(td(2), 0xD0, 4, AccessMode::Out).unwrap();
        assert_eq!(o, CheckParamOutcome::Dependent);
        let r = t.finish_param(0xD0, AccessMode::Out);
        assert_eq!(
            r.woken,
            vec![Waiter {
                td: td(2),
                mode: AccessMode::Out
            }]
        );
        assert_eq!(t.is_written(0xD0), Some(true));
        let r = t.finish_param(0xD0, AccessMode::Out);
        assert!(r.deleted);
        t.check_invariants();
    }

    #[test]
    fn drain_readers_until_writer() {
        let mut t = table(32, 8);
        t.check_param(td(1), 0xE0, 4, AccessMode::Out).unwrap();
        t.check_param(td(2), 0xE0, 4, AccessMode::In).unwrap();
        t.check_param(td(3), 0xE0, 4, AccessMode::In).unwrap();
        t.check_param(td(4), 0xE0, 4, AccessMode::InOut).unwrap();
        t.check_param(td(5), 0xE0, 4, AccessMode::In).unwrap();
        // W1 finishes: R2, R3 drain; W4 blocks the queue; R5 stays behind.
        let r = t.finish_param(0xE0, AccessMode::Out);
        assert_eq!(
            r.woken.iter().map(|w| w.td).collect::<Vec<_>>(),
            vec![td(2), td(3)]
        );
        assert_eq!(t.readers_of(0xE0), Some(2));
        assert_eq!(t.waiters_of(0xE0), Some(2));
        t.finish_param(0xE0, AccessMode::In);
        let r = t.finish_param(0xE0, AccessMode::In);
        assert_eq!(
            r.woken.iter().map(|w| w.td).collect::<Vec<_>>(),
            vec![td(4)]
        );
        let r = t.finish_param(0xE0, AccessMode::InOut);
        assert_eq!(
            r.woken.iter().map(|w| w.td).collect::<Vec<_>>(),
            vec![td(5)]
        );
        let r = t.finish_param(0xE0, AccessMode::In);
        assert!(r.deleted);
        t.check_invariants();
    }

    #[test]
    fn kick_list_overflows_into_dummy_entries() {
        let mut t = table(64, 2); // tiny kick lists to force extensions
        t.check_param(td(0), 0xF0, 4, AccessMode::Out).unwrap();
        for i in 1..=7 {
            let (o, _) = t.check_param(td(i), 0xF0, 4, AccessMode::In).unwrap();
            assert_eq!(o, CheckParamOutcome::Dependent);
        }
        assert_eq!(t.waiters_of(0xF0), Some(7));
        // 7 waiters at cap 2 → parent(2) + ext(2) + ext(2) + ext(1).
        assert_eq!(t.stats().ext_allocs, 3);
        assert_eq!(t.stats().max_kick_chain, 4);
        t.check_invariants();
        // Waking drains across extension boundaries in FIFO order.
        let r = t.finish_param(0xF0, AccessMode::Out);
        assert_eq!(
            r.woken.iter().map(|w| w.td.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6, 7]
        );
        assert_eq!(t.stats().promotions, 3);
        t.check_invariants();
        for _ in 0..6 {
            t.finish_param(0xF0, AccessMode::In);
        }
        let r = t.finish_param(0xF0, AccessMode::In);
        assert!(r.deleted);
        assert_eq!(t.occupied(), 0);
        t.check_invariants();
    }

    #[test]
    fn hash_collisions_chain_and_unchain() {
        // 2-entry table: everything collides.
        let mut t = table(2, 8);
        t.check_param(td(1), 0x10, 4, AccessMode::Out).unwrap();
        t.check_param(td(2), 0x20, 4, AccessMode::Out).unwrap();
        assert!(t.contains(0x10) && t.contains(0x20));
        t.check_invariants();
        // Third address: table full.
        assert_eq!(
            t.check_param(td(3), 0x30, 4, AccessMode::Out),
            Err(TableFull)
        );
        assert_eq!(t.stats().full_rejections, 1);
        // Delete in both orders.
        let r = t.finish_param(0x10, AccessMode::Out);
        assert!(r.deleted);
        assert!(t.contains(0x20));
        t.check_invariants();
        let r = t.finish_param(0x20, AccessMode::Out);
        assert!(r.deleted);
        assert_eq!(t.occupied(), 0);
        t.check_invariants();
    }

    #[test]
    fn table_full_then_retry_after_free() {
        let mut t = table(2, 8);
        t.check_param(td(1), 0x10, 4, AccessMode::Out).unwrap();
        t.check_param(td(2), 0x20, 4, AccessMode::Out).unwrap();
        assert_eq!(
            t.check_param(td(3), 0x30, 4, AccessMode::Out),
            Err(TableFull)
        );
        t.finish_param(0x10, AccessMode::Out);
        // Space freed → the stalled check can retry successfully.
        let (o, _) = t.check_param(td(3), 0x30, 4, AccessMode::Out).unwrap();
        assert_eq!(o, CheckParamOutcome::NoDependency);
        t.check_invariants();
    }

    #[test]
    fn many_addresses_roundtrip_with_invariants() {
        let mut t = table(256, 8);
        for a in 0..200u64 {
            t.check_param(td(a as u32), 0x1000 + a * 8, 8, AccessMode::Out)
                .unwrap();
        }
        t.check_invariants();
        assert_eq!(t.live_addresses(), 200);
        for a in (0..200u64).rev() {
            let r = t.finish_param(0x1000 + a * 8, AccessMode::Out);
            assert!(r.deleted);
        }
        t.check_invariants();
        assert_eq!(t.occupied(), 0);
        assert_eq!(t.stats().deletes, 200);
    }

    #[test]
    fn slot_reuse_after_churn() {
        // Repeated fill/drain cycles must not leak slots.
        let mut t = table(32, 2);
        for round in 0..50u64 {
            for a in 0..16u64 {
                t.check_param(td(a as u32), round * 1000 + a * 8, 8, AccessMode::Out)
                    .unwrap();
            }
            for a in 0..16u64 {
                assert!(
                    t.finish_param(round * 1000 + a * 8, AccessMode::Out)
                        .deleted
                );
            }
            assert_eq!(t.occupied(), 0);
        }
        t.check_invariants();
    }

    #[test]
    fn growable_table_never_fills() {
        let mut t = DepTable::new(&NexusConfig::unbounded());
        for a in 0..5000u64 {
            t.check_param(td(a as u32), a * 16, 8, AccessMode::Out)
                .unwrap();
        }
        assert!(t.capacity() >= 5000);
        assert_eq!(t.live_addresses(), 5000);
        t.check_invariants();
        for a in 0..5000u64 {
            assert!(t.finish_param(a * 16, AccessMode::Out).deleted);
        }
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    fn chain_statistics_shrink_with_table_size() {
        // Same address stream through a small and a large table: the small
        // one must see longer chains (the Figure 6 effect).
        let run = |entries: usize| {
            let mut t = table(entries, 8);
            for a in 0..32u64 {
                t.check_param(td(a as u32), 0x40 + a * 8, 8, AccessMode::Out)
                    .unwrap();
            }
            t.stats().max_chain_len
        };
        let small = run(64);
        let large = run(4096);
        assert!(small >= large);
    }

    #[test]
    #[should_panic]
    fn finish_unknown_address_panics() {
        let mut t = table(8, 8);
        t.finish_param(0xDEAD, AccessMode::In);
    }

    #[test]
    fn shard_router_is_total_and_roughly_balanced() {
        for n in [1usize, 2, 4, 8] {
            let mut counts = vec![0u64; n];
            for a in 0..4096u64 {
                counts[shard_of_addr(0x1000 + a * 64, n)] += 1;
            }
            let expect = 4096 / n as u64;
            for (s, c) in counts.iter().enumerate() {
                assert!(
                    *c > expect / 2 && *c < expect * 2,
                    "shard {s}/{n} holds {c} of 4096 addresses"
                );
            }
        }
        // Determinism: the router is a pure function of (addr, n).
        assert_eq!(shard_of_addr(0xAB, 8), shard_of_addr(0xAB, 8));
    }
}
