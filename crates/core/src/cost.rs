//! Operation cost accounting.
//!
//! The paper times hash-table work as "the on-chip access time multiplied by
//! the number of lookups required per access". Every pool/table operation in
//! this crate therefore returns an [`OpCost`] counting the entry touches it
//! performed; the Task Machine converts counts to time. Keeping cost as
//! data (instead of burying timing in the structures) lets the same code
//! drive the cycle-level simulator, the threaded runtime (which ignores
//! costs), and the lookup-count comparison against the original Nexus.

use std::ops::{Add, AddAssign};

/// Count of table-entry accesses performed by an operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Entry reads or writes in the Task Pool.
    pub pool_accesses: u64,
    /// Entry reads or writes in the Dependence Table (including hash-chain
    /// hops, kick-off list touches and dummy-entry maintenance).
    pub table_accesses: u64,
}

impl OpCost {
    /// Zero cost.
    pub const ZERO: OpCost = OpCost {
        pool_accesses: 0,
        table_accesses: 0,
    };

    /// A cost of `n` pool accesses.
    pub fn pool(n: u64) -> OpCost {
        OpCost {
            pool_accesses: n,
            ..OpCost::ZERO
        }
    }

    /// A cost of `n` table accesses.
    pub fn table(n: u64) -> OpCost {
        OpCost {
            table_accesses: n,
            ..OpCost::ZERO
        }
    }

    /// Total accesses across both structures.
    pub fn total(self) -> u64 {
        self.pool_accesses + self.table_accesses
    }
}

impl Add for OpCost {
    type Output = OpCost;
    fn add(self, rhs: OpCost) -> OpCost {
        OpCost {
            pool_accesses: self.pool_accesses + rhs.pool_accesses,
            table_accesses: self.table_accesses + rhs.table_accesses,
        }
    }
}

impl AddAssign for OpCost {
    fn add_assign(&mut self, rhs: OpCost) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = OpCost::pool(2) + OpCost::table(3);
        assert_eq!(a.pool_accesses, 2);
        assert_eq!(a.table_accesses, 3);
        assert_eq!(a.total(), 5);
        let mut b = OpCost::ZERO;
        b += a;
        b += OpCost::table(1);
        assert_eq!(b.total(), 6);
    }
}
