//! Reference dependency resolver for differential testing.
//!
//! Builds the explicit task DAG the way a software StarSs runtime would:
//! per address, a reader of `A` depends on the last unfinished writer of
//! `A`; a writer depends on the last writer *and* every active reader
//! (RAW, WAW, WAR). A task is ready exactly when all its predecessors have
//! finished.
//!
//! The hardware protocol (Dependence Table + Kick-Off Lists + `Rdrs`/`ww`)
//! encodes the same constraints with constant-size state; the property
//! tests in this crate and in `tests/` drive both implementations through
//! random workloads and arbitrary completion orders and require their
//! ready sets to be identical at every step.

use nexuspp_trace::Param;
use std::collections::{BTreeSet, HashMap};

/// Oracle-side task identity (submission order index).
pub type OracleId = usize;

#[derive(Debug, Default, Clone)]
struct AddrState {
    /// Last submitted writer of this address still relevant for ordering.
    last_writer: Option<OracleId>,
    /// Tasks submitted after `last_writer` that read this address.
    readers_since_write: Vec<OracleId>,
}

/// The reference resolver.
#[derive(Debug, Default)]
pub struct OracleResolver {
    addr_state: HashMap<u64, AddrState>,
    /// Outstanding predecessor count per task.
    pending: Vec<usize>,
    /// Reverse edges: task → dependents.
    dependents: Vec<Vec<OracleId>>,
    /// Submitted & unfinished.
    live: Vec<bool>,
    ready: BTreeSet<OracleId>,
    finished_count: usize,
}

impl OracleResolver {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks submitted so far.
    pub fn submitted(&self) -> usize {
        self.pending.len()
    }

    /// Number of tasks finished so far.
    pub fn finished(&self) -> usize {
        self.finished_count
    }

    /// Submit the next task (IDs are assigned densely in submission
    /// order). Returns its ID and whether it is immediately ready.
    pub fn submit(&mut self, params: &[Param]) -> (OracleId, bool) {
        let id = self.pending.len();
        self.pending.push(0);
        self.dependents.push(Vec::new());
        self.live.push(true);

        let mut preds: BTreeSet<OracleId> = BTreeSet::new();
        for p in params {
            let st = self.addr_state.entry(p.addr).or_default();
            if p.mode.is_read_only() {
                if let Some(w) = st.last_writer {
                    preds.insert(w);
                }
                st.readers_since_write.push(id);
            } else {
                if let Some(w) = st.last_writer {
                    preds.insert(w);
                }
                for &r in &st.readers_since_write {
                    preds.insert(r);
                }
                st.last_writer = Some(id);
                st.readers_since_write.clear();
            }
        }
        // Only unfinished predecessors constrain the task.
        let active_preds: Vec<OracleId> = preds
            .into_iter()
            .filter(|&p| self.live[p] && p != id)
            .collect();
        self.pending[id] = active_preds.len();
        for p in active_preds {
            self.dependents[p].push(id);
        }
        let ready = self.pending[id] == 0;
        if ready {
            self.ready.insert(id);
        }
        (id, ready)
    }

    /// Finish a ready task, returning the tasks that became ready.
    pub fn finish(&mut self, id: OracleId) -> Vec<OracleId> {
        assert!(self.ready.remove(&id), "finishing a non-ready task {id}");
        self.live[id] = false;
        self.finished_count += 1;
        let mut newly = Vec::new();
        for &d in &self.dependents[id] {
            self.pending[d] -= 1;
            if self.pending[d] == 0 {
                self.ready.insert(d);
                newly.push(d);
            }
        }
        // Retire address bookkeeping that can no longer matter: a finished
        // writer stays as `last_writer` until superseded, but ordering-wise
        // it is inert (filtered at submit by liveness).
        newly
    }

    /// Current ready set (submitted, unfinished, no pending predecessors).
    pub fn ready_set(&self) -> Vec<OracleId> {
        self.ready.iter().copied().collect()
    }

    /// True if every submitted task has finished.
    pub fn all_done(&self) -> bool {
        self.finished_count == self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_trace::Param;

    #[test]
    fn raw_waw_war_edges() {
        let mut o = OracleResolver::new();
        let (w1, r) = o.submit(&[Param::output(0xA, 4)]);
        assert!(r);
        let (r1, r) = o.submit(&[Param::input(0xA, 4)]);
        assert!(!r, "RAW");
        let (w2, r) = o.submit(&[Param::output(0xA, 4)]);
        assert!(!r, "WAW + WAR");
        assert_eq!(o.finish(w1), vec![r1]);
        assert_eq!(o.finish(r1), vec![w2]);
        assert_eq!(o.finish(w2), Vec::<OracleId>::new());
        assert!(o.all_done());
    }

    #[test]
    fn finished_writer_does_not_constrain() {
        let mut o = OracleResolver::new();
        let (w1, _) = o.submit(&[Param::output(0xB, 4)]);
        o.finish(w1);
        let (_r1, ready) = o.submit(&[Param::input(0xB, 4)]);
        assert!(ready, "writer already finished");
    }

    #[test]
    fn readers_share() {
        let mut o = OracleResolver::new();
        let (_a, ra) = o.submit(&[Param::input(0xC, 4)]);
        let (_b, rb) = o.submit(&[Param::input(0xC, 4)]);
        assert!(ra && rb);
        let (_w, rw) = o.submit(&[Param::inout(0xC, 4)]);
        assert!(!rw, "WAR on both readers");
    }

    #[test]
    fn ready_set_tracks_order() {
        let mut o = OracleResolver::new();
        let (t0, _) = o.submit(&[Param::output(1, 4)]);
        let (t1, _) = o.submit(&[Param::output(2, 4)]);
        let (t2, _) = o.submit(&[Param::input(1, 4), Param::input(2, 4)]);
        assert_eq!(o.ready_set(), vec![t0, t1]);
        o.finish(t0);
        assert_eq!(o.ready_set(), vec![t1]);
        o.finish(t1);
        assert_eq!(o.ready_set(), vec![t2]);
    }

    #[test]
    #[should_panic]
    fn finishing_unready_task_panics() {
        let mut o = OracleResolver::new();
        o.submit(&[Param::output(1, 4)]);
        let (t1, _) = o.submit(&[Param::input(1, 4)]);
        o.finish(t1);
    }
}
