//! Nexus++ capacity configuration (Table IV defaults).

/// Capacities of the Nexus++ storage structures.
///
/// Defaults reproduce Table IV of the paper: a 1K-entry Task Pool with 8
/// parameters per 78-byte Task Descriptor, and a 4K-entry Dependence Table
/// with 8-slot Kick-Off Lists. The design-space exploration of Figure 6
/// sweeps `task_pool_entries` and `dep_table_entries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NexusConfig {
    /// Task Pool entries ("Task Pool size 78 KB (1K TDs)").
    pub task_pool_entries: usize,
    /// Parameters per Task Descriptor ("No. Parameters per TD: 8"). Tasks
    /// with more inputs/outputs chain dummy tasks.
    pub params_per_td: usize,
    /// Dependence Table entries ("112 KB (4K entries)").
    pub dep_table_entries: usize,
    /// Kick-Off List slots per entry ("Kick-Off list size 8 task IDs").
    /// Longer waiter lists chain dummy entries.
    pub kickoff_entries: usize,
    /// Growable mode: capacities double on demand instead of stalling, and
    /// per-descriptor/per-list limits are ignored (no dummy tasks/entries
    /// needed). Used by the threaded runtime, where the structures are
    /// software and stalls would deadlock the submitting thread.
    pub growable: bool,
}

impl Default for NexusConfig {
    fn default() -> Self {
        NexusConfig {
            task_pool_entries: 1024,
            params_per_td: 8,
            dep_table_entries: 4096,
            kickoff_entries: 8,
            growable: false,
        }
    }
}

impl NexusConfig {
    /// Configuration for the threaded runtime: modest initial sizes that
    /// grow on demand; dummy-task/entry virtualization disabled.
    pub fn unbounded() -> Self {
        NexusConfig {
            task_pool_entries: 256,
            params_per_td: usize::MAX,
            dep_table_entries: 256,
            kickoff_entries: usize::MAX,
            growable: true,
        }
    }

    /// Validate invariants, panicking with a clear message on nonsense
    /// configurations (called by the structures' constructors).
    pub fn validate(&self) {
        assert!(self.task_pool_entries >= 2, "task pool needs ≥ 2 entries");
        assert!(
            self.dep_table_entries >= 2,
            "dependence table needs ≥ 2 entries"
        );
        assert!(
            self.params_per_td >= 2,
            "descriptors need ≥ 2 parameter slots (one may become a dummy pointer)"
        );
        assert!(self.kickoff_entries >= 1, "kick-off lists need ≥ 1 slot");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = NexusConfig::default();
        assert_eq!(c.task_pool_entries, 1024);
        assert_eq!(c.params_per_td, 8);
        assert_eq!(c.dep_table_entries, 4096);
        assert_eq!(c.kickoff_entries, 8);
        assert!(!c.growable);
        c.validate();
    }

    #[test]
    fn unbounded_is_growable() {
        let c = NexusConfig::unbounded();
        assert!(c.growable);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn tiny_pool_rejected() {
        NexusConfig {
            task_pool_entries: 1,
            ..Default::default()
        }
        .validate();
    }
}
