//! Nexus++ capacity configuration (Table IV defaults).

/// Capacities of the Nexus++ storage structures.
///
/// Defaults reproduce Table IV of the paper: a 1K-entry Task Pool with 8
/// parameters per 78-byte Task Descriptor, and a 4K-entry Dependence Table
/// with 8-slot Kick-Off Lists. The design-space exploration of Figure 6
/// sweeps `task_pool_entries` and `dep_table_entries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NexusConfig {
    /// Task Pool entries ("Task Pool size 78 KB (1K TDs)").
    pub task_pool_entries: usize,
    /// Parameters per Task Descriptor ("No. Parameters per TD: 8"). Tasks
    /// with more inputs/outputs chain dummy tasks.
    pub params_per_td: usize,
    /// Dependence Table entries ("112 KB (4K entries)").
    pub dep_table_entries: usize,
    /// Kick-Off List slots per entry ("Kick-Off list size 8 task IDs").
    /// Longer waiter lists chain dummy entries.
    pub kickoff_entries: usize,
    /// Growable mode: capacities double on demand instead of stalling, and
    /// per-descriptor/per-list limits are ignored (no dummy tasks/entries
    /// needed). Used by the threaded runtime, where the structures are
    /// software and stalls would deadlock the submitting thread.
    pub growable: bool,
}

impl Default for NexusConfig {
    fn default() -> Self {
        NexusConfig {
            task_pool_entries: 1024,
            params_per_td: 8,
            dep_table_entries: 4096,
            kickoff_entries: 8,
            growable: false,
        }
    }
}

/// Per-shard residency bound for the sharded resolvers.
///
/// One Maestro shard owns a *finite* Task Pool slice: when it is full,
/// the master "stalls and stops sending new Task Descriptors" until a
/// completion frees a row (§III-C — already modeled for the single
/// Maestro). `ShardCapacity` carries that bound through the sharded
/// stack: a shard holds at most this many resident sub-descriptors
/// (tasks that touch the shard and have not finished); a submission that
/// would exceed it on *any* involved shard is rejected whole — admission
/// stays atomic across shards, so a stalled submitter holds no partial
/// state and simply retries after that shard's next finish report.
///
/// Because a task occupies exactly one residency slot per involved shard
/// and submissions arrive in program order (producers before consumers),
/// the protocol is deadlock-free down to `Bounded(1)`: the earliest
/// unfinished task is either resident (and therefore runnable once its
/// already-finished producers released it) or is the parked one, in
/// which case nothing is resident and every shard has a free slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShardCapacity {
    /// Growable software tables: submissions never stall (the threaded
    /// runtime's historical behavior).
    #[default]
    Unbounded,
    /// At most this many resident tasks per shard; a submission that
    /// would exceed it stalls and retries after the shard's next finish.
    Bounded(usize),
}

impl ShardCapacity {
    /// The residency limit, if bounded.
    pub fn limit(self) -> Option<usize> {
        match self {
            ShardCapacity::Unbounded => None,
            ShardCapacity::Bounded(n) => Some(n),
        }
    }

    /// True when submissions can stall on a full shard.
    pub fn is_bounded(self) -> bool {
        matches!(self, ShardCapacity::Bounded(_))
    }

    /// True if a shard with `resident` live tasks can accept one more.
    pub fn admits(self, resident: usize) -> bool {
        match self {
            ShardCapacity::Unbounded => true,
            ShardCapacity::Bounded(n) => resident < n,
        }
    }

    /// Validate invariants (a zero-slot shard could never admit anything).
    pub fn validate(self) {
        if let ShardCapacity::Bounded(n) = self {
            assert!(n >= 1, "bounded shards need >= 1 residency slot");
        }
    }
}

impl std::fmt::Display for ShardCapacity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardCapacity::Unbounded => write!(f, "∞"),
            ShardCapacity::Bounded(n) => write!(f, "{n}"),
        }
    }
}

impl NexusConfig {
    /// Configuration for the threaded runtime: modest initial sizes that
    /// grow on demand; dummy-task/entry virtualization disabled.
    pub fn unbounded() -> Self {
        NexusConfig {
            task_pool_entries: 256,
            params_per_td: usize::MAX,
            dep_table_entries: 256,
            kickoff_entries: usize::MAX,
            growable: true,
        }
    }

    /// Validate invariants, panicking with a clear message on nonsense
    /// configurations (called by the structures' constructors).
    pub fn validate(&self) {
        assert!(self.task_pool_entries >= 2, "task pool needs ≥ 2 entries");
        assert!(
            self.dep_table_entries >= 2,
            "dependence table needs ≥ 2 entries"
        );
        assert!(
            self.params_per_td >= 2,
            "descriptors need ≥ 2 parameter slots (one may become a dummy pointer)"
        );
        assert!(self.kickoff_entries >= 1, "kick-off lists need ≥ 1 slot");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = NexusConfig::default();
        assert_eq!(c.task_pool_entries, 1024);
        assert_eq!(c.params_per_td, 8);
        assert_eq!(c.dep_table_entries, 4096);
        assert_eq!(c.kickoff_entries, 8);
        assert!(!c.growable);
        c.validate();
    }

    #[test]
    fn unbounded_is_growable() {
        let c = NexusConfig::unbounded();
        assert!(c.growable);
        c.validate();
    }

    #[test]
    fn shard_capacity_admission_predicate() {
        assert!(ShardCapacity::Unbounded.admits(usize::MAX - 1));
        assert!(!ShardCapacity::Unbounded.is_bounded());
        assert_eq!(ShardCapacity::Unbounded.limit(), None);
        let c = ShardCapacity::Bounded(2);
        assert!(c.is_bounded());
        assert_eq!(c.limit(), Some(2));
        assert!(c.admits(0) && c.admits(1) && !c.admits(2));
        c.validate();
        assert_eq!(format!("{}", ShardCapacity::Unbounded), "∞");
        assert_eq!(format!("{}", c), "2");
        assert_eq!(ShardCapacity::default(), ShardCapacity::Unbounded);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        ShardCapacity::Bounded(0).validate();
    }

    #[test]
    #[should_panic]
    fn tiny_pool_rejected() {
        NexusConfig {
            task_pool_entries: 1,
            ..Default::default()
        }
        .validate();
    }
}
