//! Differential testing: the Nexus++ hardware protocol (Task Pool +
//! Dependence Table + Kick-Off Lists + `Rdrs`/`ww` flags) must impose
//! exactly the same execution constraints as an explicit task DAG.
//!
//! Strategy: generate random task streams over a small address space (lots
//! of RAW/WAW/WAR collisions), push them through both the
//! [`DependencyEngine`] and the [`OracleResolver`], finish tasks in a
//! random (seeded) order chosen among the ready ones, and require the two
//! ready sets to be identical after every step. Run once with a roomy
//! growable configuration and once with a deliberately tiny fixed
//! configuration so that descriptor chaining (dummy tasks), kick-off
//! extensions (dummy entries), pool-full and table-full stalls are all on
//! the hot path.

use nexuspp_core::engine::CheckProgress;
use nexuspp_core::oracle::OracleResolver;
use nexuspp_core::pool::PoolError;
use nexuspp_core::{DependencyEngine, NexusConfig, TdIndex};
use nexuspp_desim::Rng;
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{AccessMode, Param};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// One generated task: parameter list (already normalized).
#[derive(Debug, Clone)]
struct GenTask {
    params: Vec<Param>,
}

fn mode_strategy() -> impl Strategy<Value = AccessMode> {
    prop_oneof![
        Just(AccessMode::In),
        Just(AccessMode::Out),
        Just(AccessMode::InOut),
    ]
}

fn task_strategy(addr_space: u64, max_params: usize) -> impl Strategy<Value = GenTask> {
    prop::collection::vec((0..addr_space, mode_strategy()), 1..=max_params).prop_map(|ps| {
        let params: Vec<Param> = ps
            .into_iter()
            .map(|(a, m)| Param::new(0x1000 + a * 64, 16, m))
            .collect();
        GenTask {
            params: normalize_params(&params),
        }
    })
}

/// Drive both resolvers through the full workload, checking ready-set
/// equality after every submission and every completion.
fn run_differential(tasks: &[GenTask], cfg: &NexusConfig, seed: u64) {
    let mut engine = DependencyEngine::new(cfg);
    let mut oracle = OracleResolver::new();
    let mut rng = Rng::new(seed);

    // tag (= oracle id) ↔ engine descriptor index.
    let mut td_of_tag: HashMap<u64, TdIndex> = HashMap::new();
    let mut engine_ready: BTreeSet<u64> = BTreeSet::new();

    let finish_one = |engine: &mut DependencyEngine,
                      oracle: &mut OracleResolver,
                      engine_ready: &mut BTreeSet<u64>,
                      td_of_tag: &mut HashMap<u64, TdIndex>,
                      rng: &mut Rng| {
        let ready: Vec<u64> = engine_ready.iter().copied().collect();
        assert!(!ready.is_empty(), "no ready task to finish (deadlock)");
        let pick = ready[rng.gen_range(ready.len() as u64) as usize];
        engine_ready.remove(&pick);
        let td = td_of_tag.remove(&pick).unwrap();
        let fin = engine.finish(td);
        let oracle_newly = oracle.finish(pick as usize);
        let engine_newly: BTreeSet<u64> = fin
            .newly_ready
            .iter()
            .map(|&t| {
                let tag = engine.pool().get(t).tag;
                engine_ready.insert(tag);
                tag
            })
            .collect();
        let oracle_newly: BTreeSet<u64> = oracle_newly.into_iter().map(|i| i as u64).collect();
        assert_eq!(
            engine_newly, oracle_newly,
            "wake sets diverge after finishing task {pick}"
        );
    };

    for (tag, task) in tasks.iter().enumerate() {
        let tag = tag as u64;
        // Admit with retry: a full pool or table stall is resolved by
        // finishing ready tasks, like the real machine.
        let td = loop {
            match engine.admit(0xF, tag, task.params.clone()) {
                Ok((td, _)) => break td,
                Err(PoolError::PoolFull { .. }) => {
                    finish_one(
                        &mut engine,
                        &mut oracle,
                        &mut engine_ready,
                        &mut td_of_tag,
                        &mut rng,
                    );
                }
                Err(e @ PoolError::TaskTooLarge { .. }) => {
                    panic!("generator produced an unexecutable task: {e:?}")
                }
            }
        };
        td_of_tag.insert(tag, td);
        let ready = loop {
            match engine.check(td) {
                CheckProgress::Done { ready, .. } => break ready,
                CheckProgress::Stalled { .. } => {
                    finish_one(
                        &mut engine,
                        &mut oracle,
                        &mut engine_ready,
                        &mut td_of_tag,
                        &mut rng,
                    );
                }
            }
        };
        if ready {
            engine_ready.insert(tag);
        }
        let (oid, _oracle_ready) = oracle.submit(&task.params);
        assert_eq!(oid as u64, tag);

        // Ready sets must agree exactly.
        let oracle_ready: BTreeSet<u64> =
            oracle.ready_set().into_iter().map(|i| i as u64).collect();
        assert_eq!(
            engine_ready, oracle_ready,
            "ready sets diverge after submitting task {tag}"
        );
        engine.table().check_invariants();
    }

    // Drain everything.
    while !engine_ready.is_empty() {
        finish_one(
            &mut engine,
            &mut oracle,
            &mut engine_ready,
            &mut td_of_tag,
            &mut rng,
        );
        let oracle_ready: BTreeSet<u64> =
            oracle.ready_set().into_iter().map(|i| i as u64).collect();
        assert_eq!(
            engine_ready, oracle_ready,
            "ready sets diverge during drain"
        );
    }
    assert!(oracle.all_done(), "oracle has unfinished tasks");
    assert_eq!(engine.in_flight(), 0);
    assert_eq!(engine.table().occupied(), 0, "leaked dependence entries");
    assert_eq!(engine.pool().in_use(), 0, "leaked descriptors");
    engine.table().check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Roomy growable configuration: pure protocol semantics.
    #[test]
    fn engine_matches_oracle_unbounded(
        tasks in prop::collection::vec(task_strategy(10, 5), 1..60),
        seed in any::<u64>(),
    ) {
        run_differential(&tasks, &NexusConfig::unbounded(), seed);
    }

    /// Tiny fixed configuration: dummy tasks, dummy entries, relocations,
    /// pool-full and table-full paths all exercised.
    #[test]
    fn engine_matches_oracle_tiny_fixed(
        tasks in prop::collection::vec(task_strategy(8, 5), 1..60),
        seed in any::<u64>(),
    ) {
        let cfg = NexusConfig {
            task_pool_entries: 6,
            params_per_td: 3,
            dep_table_entries: 24,
            kickoff_entries: 2,
            growable: false,
        };
        run_differential(&tasks, &cfg, seed);
    }

    /// Wide address space: low collision, checks the absent/insert path
    /// and chain maintenance under scattered hashing.
    #[test]
    fn engine_matches_oracle_wide(
        tasks in prop::collection::vec(task_strategy(2000, 4), 1..50),
        seed in any::<u64>(),
    ) {
        let cfg = NexusConfig {
            task_pool_entries: 64,
            params_per_td: 4,
            dep_table_entries: 128,
            kickoff_entries: 4,
            growable: false,
        };
        run_differential(&tasks, &cfg, seed);
    }
}

/// A long deterministic soak: heavier than the proptest cases, exercising
/// thousands of tasks through the tiny configuration.
#[test]
fn soak_tiny_config_deterministic() {
    let mut rng = Rng::new(0xDEAD_BEEF);
    let mut tasks = Vec::new();
    for _ in 0..2000 {
        let n = 1 + rng.gen_range(5) as usize;
        let params: Vec<Param> = (0..n)
            .map(|_| {
                let addr = 0x1000 + rng.gen_range(12) * 64;
                let mode = match rng.gen_range(3) {
                    0 => AccessMode::In,
                    1 => AccessMode::Out,
                    _ => AccessMode::InOut,
                };
                Param::new(addr, 16, mode)
            })
            .collect();
        tasks.push(GenTask {
            params: normalize_params(&params),
        });
    }
    let cfg = NexusConfig {
        task_pool_entries: 8,
        params_per_td: 3,
        dep_table_entries: 20,
        kickoff_entries: 2,
        growable: false,
    };
    run_differential(&tasks, &cfg, 42);
}
