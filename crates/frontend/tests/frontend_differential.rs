//! The frontend's differential bar: **frontend-lowered ≡
//! hand-addressed ≡ oracle**.
//!
//! Random resource-declaration programs are run three ways:
//!
//! 1. Lowered by the frontend ([`Lowering::Renamed`]) and driven
//!    through the [`ShardedEngine`] in lockstep with the explicit-DAG
//!    [`OracleResolver`] — the ready sets must agree at every greedy
//!    round (the engine sees exactly the true edges the program
//!    declared, nothing more).
//! 2. Re-encoded **by hand** in this file — an independent
//!    implementation of the versioning semantics that assigns its own
//!    addresses from a different base — and executed on the
//!    [`ShardedRuntime`] at {1, 4} workers under unbounded *and*
//!    bounded shard capacities. Both encodings must execute the same
//!    task sets, and every executed order must respect the true-edge
//!    set the hand encoding derives for itself.
//! 3. The frontend's inferred edge set is compared edge-for-edge
//!    against the hand encoding's last-writer model.

use nexuspp_core::oracle::OracleResolver;
use nexuspp_core::{NexusConfig, ShardCapacity, TaskBuilder};
use nexuspp_frontend::exec::{run_on_engine_bounded, run_on_runtime};
use nexuspp_frontend::{Lowering, Program};
use nexuspp_shard::ShardedEngine;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// One declared access, as raw generator output.
#[derive(Debug, Clone, Copy)]
enum Acc {
    Read(u8),
    Write(u8),
    ReadWrite(u8),
    /// Pin resource `.0` to an already-minted version selected by
    /// seed `.1` (mapped into `0..=latest` at build time).
    Pin(u8, u16),
}

fn acc_strategy(resources: u8) -> impl Strategy<Value = Acc> {
    let r = 0..resources;
    prop_oneof![
        r.clone().prop_map(Acc::Read),
        r.clone().prop_map(Acc::Write),
        r.clone().prop_map(Acc::ReadWrite),
        (r, any::<u16>()).prop_map(|(a, s)| Acc::Pin(a, s)),
    ]
}

fn program_strategy(resources: u8) -> impl Strategy<Value = Vec<Vec<Acc>>> {
    prop::collection::vec(
        prop::collection::vec(acc_strategy(resources), 1..=3),
        1..=24,
    )
}

/// Build the frontend program from the generated declarations.
fn build_program(resources: u8, decls: &[Vec<Acc>]) -> Program {
    let mut p = Program::new();
    let names: Vec<String> = (0..resources).map(|i| format!("r{i}")).collect();
    for n in &names {
        p.resource(n);
    }
    for (i, accs) in decls.iter().enumerate() {
        // Resolve pin targets against pre-declaration state.
        let pins: Vec<Option<u32>> = accs
            .iter()
            .map(|a| match a {
                Acc::Pin(r, s) => {
                    let latest = p.latest_version(&names[*r as usize]).unwrap();
                    Some(u32::from(*s) % (latest + 1))
                }
                _ => None,
            })
            .collect();
        let mut t = p.task(0x7000).tag(i as u64);
        for (a, pin) in accs.iter().zip(&pins) {
            t = match a {
                Acc::Read(r) => t.reads(&names[*r as usize]),
                Acc::Write(r) => t.writes(&names[*r as usize]),
                Acc::ReadWrite(r) => t.read_writes(&names[*r as usize]),
                Acc::Pin(r, _) => t.reads_version(&names[*r as usize], pin.unwrap()),
            };
        }
        t.submit().expect("all names pre-registered");
    }
    p
}

/// An independent hand encoding of the same semantics: its own version
/// bookkeeping, its own renamed address scheme (base 0x2000, disjoint
/// from the frontend's 1 << 40), and its own RAW edge derivation.
/// Declaration order is already topological because pins only reference
/// minted history.
struct HandEncoding {
    tasks: Vec<nexuspp_core::Submission>,
    /// (producer tag, consumer tag) true RAW edges.
    edges: BTreeSet<(u64, u64)>,
}

fn hand_encode(resources: u8, decls: &[Vec<Acc>]) -> HandEncoding {
    let addr = |r: u8, v: u32| 0x2000 + u64::from(r) * 0x10_0000 + u64::from(v) * 64;
    let mut latest = vec![0u32; resources as usize];
    let mut minted_by: HashMap<(u8, u32), u64> = HashMap::new();
    let mut tasks = Vec::new();
    let mut edges = BTreeSet::new();
    for (i, accs) in decls.iter().enumerate() {
        let tag = i as u64;
        let mut reads: Vec<(u8, u32)> = Vec::new();
        let mut writes: Vec<u8> = Vec::new();
        for a in accs {
            match a {
                Acc::Read(r) => reads.push((*r, latest[*r as usize])),
                Acc::Pin(r, s) => reads.push((*r, u32::from(*s) % (latest[*r as usize] + 1))),
                Acc::ReadWrite(r) => {
                    reads.push((*r, latest[*r as usize]));
                    if !writes.contains(r) {
                        writes.push(*r);
                    }
                }
                Acc::Write(r) => {
                    if !writes.contains(r) {
                        writes.push(*r);
                    }
                }
            }
        }
        let mut b = TaskBuilder::new(0x7000).tag(tag);
        for &(r, v) in &reads {
            b = b.reads(addr(r, v), 64);
            if v > 0 {
                let p = minted_by[&(r, v)];
                if p != tag {
                    edges.insert((p, tag));
                }
            }
        }
        for &r in &writes {
            latest[r as usize] += 1;
            minted_by.insert((r, latest[r as usize]), tag);
            b = b.writes(addr(r, latest[r as usize]), 64);
        }
        tasks.push(b.build());
    }
    HandEncoding { tasks, edges }
}

/// Drive the renamed lowering through the sharded engine and the oracle
/// in greedy-round lockstep; the ready sets must agree at every round.
fn assert_engine_matches_oracle(lp: &nexuspp_frontend::LoweredProgram) {
    let mut eng = ShardedEngine::new(4, &NexusConfig::unbounded());
    let mut oracle = OracleResolver::new();
    let mut eng_ready: BTreeSet<u64> = BTreeSet::new();
    let mut oracle_ready: BTreeSet<u64> = BTreeSet::new();
    let mut id_of_tag = HashMap::new();
    let mut oid_of_tag = HashMap::new();
    for sub in lp.tasks.iter().cloned() {
        let tag = sub.tag;
        let params = sub.params.clone();
        let (id, ready) = eng.submit_task(sub).expect("unbounded admits all");
        id_of_tag.insert(tag, id);
        if ready {
            eng_ready.insert(tag);
        }
        let (oid, oready) = oracle.submit(&params);
        oid_of_tag.insert(tag, oid);
        if oready {
            oracle_ready.insert(tag);
        }
    }
    let tag_of_oid: HashMap<_, _> = oid_of_tag.iter().map(|(t, o)| (*o, *t)).collect();
    while !eng_ready.is_empty() || !oracle_ready.is_empty() {
        assert_eq!(eng_ready, oracle_ready, "ready sets diverged");
        let round: Vec<u64> = eng_ready.iter().copied().collect();
        eng_ready.clear();
        oracle_ready.clear();
        for tag in round {
            let fin = eng.finish(id_of_tag[&tag]);
            for woke in fin.newly_ready {
                eng_ready.insert(eng.tag_of(woke));
            }
            for o in oracle.finish(oid_of_tag[&tag]) {
                oracle_ready.insert(tag_of_oid[&o]);
            }
        }
    }
    assert!(oracle.all_done(), "oracle retired every task");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frontend_equals_hand_encoding_equals_oracle(decls in program_strategy(4)) {
        let resources = 4u8;
        let prog = build_program(resources, &decls);
        let lp = prog.lower(Lowering::Renamed).expect("pins reference minted history");
        let hand = hand_encode(resources, &decls);

        // Edge sets agree: the frontend inferred exactly the last-writer
        // RAW edges the independent encoding derives.
        let frontend_edges: BTreeSet<(u64, u64)> = lp.edges.iter().copied().collect();
        prop_assert_eq!(&frontend_edges, &hand.edges);

        // Engine ≡ oracle on the lowered stream, round for round.
        assert_engine_matches_oracle(&lp);

        // Frontend-lowered ≡ hand-addressed on the threaded runtime at
        // {1, 4} workers, unbounded and bounded.
        let hand_lp = nexuspp_frontend::LoweredProgram {
            lowering: Lowering::Renamed,
            tasks: hand.tasks.clone(),
            edges: hand.edges.iter().copied().collect(),
        };
        let all_tags: BTreeSet<u64> = (0..decls.len() as u64).collect();
        for workers in [1usize, 4] {
            for capacity in [ShardCapacity::Unbounded, ShardCapacity::Bounded(2)] {
                let f_order = run_on_runtime(&lp, workers, 2, capacity);
                let h_order = run_on_runtime(&hand_lp, workers, 2, capacity);
                let f_set: BTreeSet<u64> = f_order.iter().copied().collect();
                let h_set: BTreeSet<u64> = h_order.iter().copied().collect();
                prop_assert_eq!(&f_set, &all_tags, "frontend ran every task");
                prop_assert_eq!(&h_set, &all_tags, "hand encoding ran every task");
                prop_assert!(hand_lp.order_respects_edges(&f_order),
                    "frontend order respects independently derived edges");
                prop_assert!(hand_lp.order_respects_edges(&h_order),
                    "hand order respects its own edges");
            }
        }

        // And the bounded batch-engine path retires everything too.
        let b_order = run_on_engine_bounded(&lp, 2, ShardCapacity::Bounded(2));
        prop_assert_eq!(&b_order.iter().copied().collect::<BTreeSet<u64>>(), &all_tags);
        prop_assert!(lp.order_respects_edges(&b_order));
    }
}
