//! Lowering: from logical (resource, version) space to the physical
//! `Param` address stream the Nexus++ engines consume.
//!
//! Two lowerings of the same [`Program`] bracket what renaming buys:
//!
//! * [`Lowering::Renamed`] gives **every logical version its own
//!   physical address**. The only hazards the Dependence Table can see
//!   are the true read-after-write edges the program declared — WAR and
//!   WAW false dependencies vanish, exactly like register renaming in
//!   an out-of-order core.
//! * [`Lowering::Raw`] maps **all versions of a resource to one
//!   address**, the way a hand-addressed encoding that reuses buffers
//!   would. Every version chain serializes through output-dependence
//!   (`ww`) and anti-dependence tracking.
//!
//! Both lowerings emit tasks in the same **stable topological order**
//! of the true-dependency graph (Kahn's algorithm, ties broken by
//! declaration index). Submission order matters: the engines resolve
//! dependencies by submission-order address matching, so producers must
//! be submitted before consumers — and under the raw lowering, the
//! serialization each version chain adds is then a *superset* of the
//! true edges, which keeps the two encodings semantically equivalent
//! (same tasks, every true edge respected) while differing hugely in
//! available parallelism.

use crate::program::{FrontendError, Program, ResourceId, Version};
use nexuspp_core::{Submission, TaskBuilder};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// First physical address the frontend assigns. High above anything the
/// examples/workloads hand-address (and the `Region` id counter, which
/// starts at 0x1000), so lowered streams never collide with them.
pub const ADDRESS_BASE: u64 = 1 << 40;

/// Address block reserved per resource (bounds versions per resource).
pub const RESOURCE_STRIDE: u64 = 1 << 20;

/// Address stride between versions inside a resource block (a cache
/// line, matching the paper's per-parameter granularity).
pub const VERSION_STRIDE: u64 = 64;

/// How logical versions map onto physical addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lowering {
    /// Each (resource, version) pair gets a distinct address: only true
    /// RAW dependencies reach the Dependence Table.
    Renamed,
    /// All versions of a resource share one address: WAR/WAW hazards
    /// serialize each resource's version chain.
    Raw,
}

impl Lowering {
    /// Stable label (used by benchmarks and reports).
    pub fn name(self) -> &'static str {
        match self {
            Lowering::Renamed => "renamed",
            Lowering::Raw => "raw",
        }
    }

    /// The physical address of a (resource, version) pair — the stable
    /// identity contract between the frontend and every consumer that
    /// re-submits *parts* of a program (the incremental re-execution
    /// layer in `nexuspp-incr` builds partial streams against exactly
    /// this mapping, so cached producers and re-run consumers agree on
    /// addresses across edits).
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds the per-resource version budget
    /// ([`RESOURCE_STRIDE`]` / `[`VERSION_STRIDE`] versions).
    pub fn address(self, r: ResourceId, v: Version) -> u64 {
        assert!(
            (v as u64) < RESOURCE_STRIDE / VERSION_STRIDE,
            "resource {} exceeded {} versions",
            r.0,
            RESOURCE_STRIDE / VERSION_STRIDE
        );
        let block = ADDRESS_BASE + u64::from(r.0) * RESOURCE_STRIDE;
        match self {
            Lowering::Renamed => block + u64::from(v) * VERSION_STRIDE,
            Lowering::Raw => block,
        }
    }
}

/// A [`Program`] lowered to submission-ready address streams.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// Which address mapping produced this stream.
    pub lowering: Lowering,
    /// The tasks, in stable topological order of the true-dependency
    /// graph, ready for any `submit`-shaped consumer.
    pub tasks: Vec<Submission>,
    /// The true RAW edges as (producer tag, consumer tag) pairs —
    /// the graph both lowerings must respect.
    pub edges: Vec<(u64, u64)>,
}

impl LoweredProgram {
    /// Does an executed tag order respect every true RAW edge (each
    /// producer appearing before each of its consumers)? Tags absent
    /// from `order` fail the check.
    pub fn order_respects_edges(&self, order: &[u64]) -> bool {
        let pos: HashMap<u64, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        self.edges
            .iter()
            .all(|(p, c)| matches!((pos.get(p), pos.get(c)), (Some(a), Some(b)) if a < b))
    }
}

impl Program {
    /// Lower the program: infer the true-dependency edges from version
    /// production/consumption, order tasks topologically (stable in
    /// declaration order), assign physical addresses per `lowering`,
    /// and emit one [`Submission`] per task.
    ///
    /// Fails with [`FrontendError::UnknownProducer`] if a pinned read
    /// names a version no task mints, or [`FrontendError::Cycle`] if
    /// version pins loop.
    pub fn lower(&self, lowering: Lowering) -> Result<LoweredProgram, FrontendError> {
        let decls = self.tasks();
        let n = decls.len();
        // Who mints each (resource, version)?
        let mut producer: HashMap<(ResourceId, Version), usize> = HashMap::new();
        for (i, t) in decls.iter().enumerate() {
            for &(r, v) in &t.writes {
                producer.insert((r, v), i);
            }
        }
        // True RAW edges: minter of the read version → reader. Version 0
        // is initial contents (no producer); a task's read of a version
        // it mints itself is not an edge.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg: Vec<usize> = vec![0; n];
        let mut edge_set: HashSet<(usize, usize)> = HashSet::new();
        for (i, t) in decls.iter().enumerate() {
            for &(r, v) in &t.reads {
                if v == 0 {
                    continue;
                }
                let &p = producer
                    .get(&(r, v))
                    .ok_or_else(|| FrontendError::UnknownProducer {
                        resource: self.resource_name(r).to_string(),
                        version: v,
                        reader: t.tag,
                    })?;
                if p != i && edge_set.insert((p, i)) {
                    adj[p].push(i);
                    indeg[i] += 1;
                }
            }
        }
        // Kahn's algorithm, always popping the smallest declaration
        // index: the emitted order is deterministic and follows program
        // order wherever dependencies permit.
        let mut ready: BinaryHeap<Reverse<usize>> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| Reverse(i))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(i)) = ready.pop() {
            order.push(i);
            for &j in &adj[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.push(Reverse(j));
                }
            }
        }
        if order.len() < n {
            let on_cycle: Vec<u64> = indeg
                .iter()
                .enumerate()
                .filter(|(_, &d)| d > 0)
                .map(|(i, _)| decls[i].tag)
                .collect();
            return Err(FrontendError::Cycle { tags: on_cycle });
        }
        // Emit. Under Raw, a read and a write of the same resource
        // collapse to one address; TaskBuilder's normalization merges
        // them into a single inout parameter.
        let tasks = order
            .iter()
            .map(|&i| {
                let t = &decls[i];
                let mut b = TaskBuilder::new(t.fptr).tag(t.tag).priority(t.priority);
                for &(r, v) in &t.reads {
                    b = b.reads(lowering.address(r, v), self.resource_size(r));
                }
                for &(r, v) in &t.writes {
                    b = b.writes(lowering.address(r, v), self.resource_size(r));
                }
                b.build()
            })
            .collect();
        let edges = edge_set
            .into_iter()
            .map(|(p, c)| (decls[p].tag, decls[c].tag))
            .collect();
        Ok(LoweredProgram {
            lowering,
            tasks,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_trace::AccessMode;

    #[test]
    fn renamed_assigns_distinct_addresses_per_version() {
        let mut p = Program::new();
        p.task(1).writes("a").submit().unwrap();
        p.task(1).writes("a").submit().unwrap();
        let lp = p.lower(Lowering::Renamed).unwrap();
        let a0 = lp.tasks[0].params[0].addr;
        let a1 = lp.tasks[1].params[0].addr;
        assert_ne!(a0, a1, "renaming separates WAW writers");
        assert_eq!(a1 - a0, VERSION_STRIDE);
        assert!(lp.edges.is_empty(), "no reads, so no true edges");
    }

    #[test]
    fn raw_collapses_versions_onto_one_address() {
        let mut p = Program::new();
        p.task(1).writes("a").submit().unwrap();
        p.task(1).writes("a").submit().unwrap();
        let lp = p.lower(Lowering::Raw).unwrap();
        assert_eq!(lp.tasks[0].params[0].addr, lp.tasks[1].params[0].addr);
    }

    #[test]
    fn raw_read_write_merges_to_inout() {
        let mut p = Program::new();
        p.task(1).writes("a").submit().unwrap();
        p.task(1).read_writes("a").submit().unwrap();
        let raw = p.lower(Lowering::Raw).unwrap();
        let t1 = &raw.tasks[1];
        assert_eq!(t1.params.len(), 1);
        assert_eq!(t1.params[0].mode, AccessMode::InOut);
        // Renamed keeps the read and the mint on distinct addresses.
        let ren = p.lower(Lowering::Renamed).unwrap();
        assert_eq!(ren.tasks[1].params.len(), 2);
        assert_eq!(ren.edges, vec![(0, 1)]);
    }

    #[test]
    fn future_pins_reorder_into_dependency_order() {
        let mut p = Program::new();
        p.resource("x");
        // Declared first, but reads the version the *second* decl mints.
        p.task(1).reads_version("x", 1).tag(10).submit().unwrap();
        p.task(1).writes("x").tag(20).submit().unwrap();
        let lp = p.lower(Lowering::Renamed).unwrap();
        let tags: Vec<u64> = lp.tasks.iter().map(|t| t.tag).collect();
        assert_eq!(tags, vec![20, 10], "producer emitted first");
        assert_eq!(lp.edges, vec![(20, 10)]);
    }

    #[test]
    fn unknown_producer_and_cycle_are_detected() {
        let mut p = Program::new();
        p.resource("x");
        p.task(1).reads_version("x", 7).tag(3).submit().unwrap();
        assert_eq!(
            p.lower(Lowering::Renamed).unwrap_err(),
            FrontendError::UnknownProducer {
                resource: "x".into(),
                version: 7,
                reader: 3
            }
        );

        let mut c = Program::new();
        c.resource("a");
        c.resource("b");
        // t0 reads b v1 and mints a v1; t1 reads a v1 and mints b v1.
        c.task(1)
            .reads_version("b", 1)
            .writes("a")
            .submit()
            .unwrap();
        c.task(1)
            .reads_version("a", 1)
            .writes("b")
            .submit()
            .unwrap();
        assert_eq!(
            c.lower(Lowering::Renamed).unwrap_err(),
            FrontendError::Cycle { tags: vec![0, 1] }
        );
    }

    #[test]
    fn self_read_of_own_mint_is_not_an_edge() {
        let mut p = Program::new();
        p.resource("x");
        // Reads the very version it mints: legal, no self-edge.
        p.task(1)
            .reads_version("x", 1)
            .writes("x")
            .submit()
            .unwrap();
        let lp = p.lower(Lowering::Renamed).unwrap();
        assert_eq!(lp.tasks.len(), 1);
        assert!(lp.edges.is_empty());
    }

    #[test]
    fn stable_topo_order_follows_declaration_order() {
        let mut p = Program::new();
        for i in 0..8 {
            p.task(1).writes(&format!("r{i}")).submit().unwrap();
        }
        let lp = p.lower(Lowering::Renamed).unwrap();
        let tags: Vec<u64> = lp.tasks.iter().map(|t| t.tag).collect();
        assert_eq!(tags, (0..8).collect::<Vec<u64>>());
    }
}
