//! Seeded random resource-declaration programs.
//!
//! The differential tests and benchmarks need arbitrary-but-repeatable
//! programs: same seed, same program, forever. The generator mixes the
//! four declaration forms (latest-version reads, pinned reads, writes,
//! read-writes) over a small resource pool, pinning only versions that
//! already exist so every generated program lowers cleanly.

use crate::program::Program;

/// Parameters for one generated program.
#[derive(Debug, Clone, Copy)]
pub struct RandProgramSpec {
    /// Size of the resource pool (≥ 1).
    pub resources: u32,
    /// Number of task declarations.
    pub tasks: u32,
    /// Seed: same seed, same program.
    pub seed: u64,
}

/// A tiny deterministic xorshift* generator (no external RNG crates —
/// the workspace builds offline).
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One planned access (resolved to a declaration call at build time).
enum Planned {
    Read(usize),
    Write(usize),
    ReadWrite(usize),
    Pin(usize, u32),
}

impl RandProgramSpec {
    /// Generate the program: every resource pre-registered, then
    /// `tasks` declarations of 1–3 accesses each. Roughly 40% reads,
    /// 30% writes, 15% read-writes, 15% pinned reads of an
    /// already-minted version.
    pub fn build(&self) -> Program {
        let mut rng = XorShift::new(self.seed);
        let mut p = Program::new();
        let names: Vec<String> = (0..self.resources.max(1))
            .map(|i| format!("r{i}"))
            .collect();
        for n in &names {
            p.resource(n);
        }
        for i in 0..self.tasks {
            let n_acc = 1 + rng.below(3);
            // Plan accesses before borrowing the program for the
            // builder; pins sample only versions minted so far.
            let planned: Vec<Planned> = (0..n_acc)
                .map(|_| {
                    let r = rng.below(u64::from(self.resources.max(1))) as usize;
                    match rng.below(100) {
                        0..=39 => Planned::Read(r),
                        40..=69 => Planned::Write(r),
                        70..=84 => Planned::ReadWrite(r),
                        _ => {
                            let latest = p.latest_version(&names[r]).unwrap_or(0);
                            Planned::Pin(r, (rng.next() % (u64::from(latest) + 1)) as u32)
                        }
                    }
                })
                .collect();
            let mut t = p.task(0x4000 + u64::from(i % 7));
            for pl in planned {
                t = match pl {
                    Planned::Read(r) => t.reads(&names[r]),
                    Planned::Write(r) => t.writes(&names[r]),
                    Planned::ReadWrite(r) => t.read_writes(&names[r]),
                    Planned::Pin(r, v) => t.reads_version(&names[r], v),
                };
            }
            t.submit().expect("generated names are all registered");
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::Lowering;

    #[test]
    fn same_seed_same_program() {
        let spec = RandProgramSpec {
            resources: 5,
            tasks: 40,
            seed: 0xDEAD_BEEF,
        };
        let a = spec.build().lower(Lowering::Renamed).unwrap();
        let b = spec.build().lower(Lowering::Renamed).unwrap();
        let pa: Vec<_> = a.tasks.iter().map(|t| (t.tag, t.params.clone())).collect();
        let pb: Vec<_> = b.tasks.iter().map(|t| (t.tag, t.params.clone())).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn generated_programs_always_lower() {
        for seed in 0..32u64 {
            let spec = RandProgramSpec {
                resources: 4,
                tasks: 30,
                seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1,
            };
            let p = spec.build();
            assert_eq!(p.tasks().len(), 30);
            p.lower(Lowering::Renamed).expect("pins only mint history");
            p.lower(Lowering::Raw).expect("raw lowers too");
        }
    }
}
