//! # nexuspp-frontend — the resource-versioning submission frontend
//!
//! The layers below this crate all speak **addresses**: a task is a
//! function pointer plus a list of `(addr, size, in/out)` parameters,
//! and the Dependence Table infers hazards by address matching. That is
//! faithful to the paper's hardware interface, but it pushes two jobs
//! onto every program author: inventing non-colliding addresses, and —
//! worse — knowing that *reusing* an address re-introduces WAR/WAW
//! false dependencies the hardware will dutifully serialize.
//!
//! This crate moves both jobs into a frontend:
//!
//! * [`Program`] — tasks declare named resources
//!   ([`reads`](program::TaskDeclBuilder::reads),
//!   [`writes`](program::TaskDeclBuilder::writes),
//!   [`read_writes`](program::TaskDeclBuilder::read_writes)); every
//!   write mints a fresh **logical version**, so the program records
//!   exactly which producer each read consumes. Errors are caught
//!   declaratively: reading an undeclared name fails at
//!   [`submit`](program::TaskDeclBuilder::submit); version pins that
//!   name a producerless version or form a cycle fail at
//!   [`lower`](Program::lower).
//! * [`lower`](Program::lower) — derives the true-dependency edges,
//!   orders tasks topologically (stable in declaration order), and
//!   assigns physical addresses under a chosen [`Lowering`]:
//!   **`Renamed`** gives each version its own address (false
//!   dependencies vanish, like register renaming); **`Raw`** collapses
//!   each resource to one address (the hand-addressed encoding the
//!   version chains would otherwise serialize through).
//! * [`exec`] — runs a [`LoweredProgram`] on all three backends (the
//!   batch [`ShardedEngine`](nexuspp_shard::ShardedEngine), the
//!   concurrent [`ShardDispatcher`](nexuspp_shard::ShardDispatcher),
//!   and the threaded [`ShardedRuntime`](nexuspp_runtime::ShardedRuntime)),
//!   returning executed orders for differential checking.
//! * [`rand_prog`] — seeded random programs for differential tests and
//!   benchmarks.
//!
//! ```
//! use nexuspp_frontend::{Lowering, Program};
//! use nexuspp_frontend::exec::run_on_engine;
//!
//! let mut p = Program::new();
//! p.resource("grid");
//! // A three-deep version chain over one named resource...
//! for _ in 0..3 {
//!     p.task(0x10).read_writes("grid").submit().unwrap();
//! }
//! // ...plus an independent reader of the *initial* contents.
//! p.task(0x11).reads_version("grid", 0).submit().unwrap();
//!
//! let lowered = p.lower(Lowering::Renamed).unwrap();
//! let order = run_on_engine(&lowered, 4);
//! assert_eq!(order.len(), 4);
//! assert!(lowered.order_respects_edges(&order));
//! ```

#![deny(missing_docs)]

pub mod exec;
pub mod lower;
pub mod program;
pub mod rand_prog;

pub use lower::{LoweredProgram, Lowering};
pub use program::{FrontendError, Program, ResourceId, TaskDecl, Version};
pub use rand_prog::RandProgramSpec;
