//! Executing a [`LoweredProgram`] on the three Nexus++ backends.
//!
//! These runners are the frontend's proof obligations made executable:
//! the same lowered stream drives the batch-style [`ShardedEngine`],
//! the concurrent [`ShardDispatcher`], and the threaded
//! [`ShardedRuntime`], each returning the order tasks actually ran so
//! differential tests can check (a) every declared task executed and
//! (b) every true dependency edge was respected — for *both* the
//! renamed and raw lowerings, on every backend.

use crate::lower::LoweredProgram;
use nexuspp_core::{NexusConfig, ShardCapacity};
use nexuspp_runtime::ShardedRuntime;
use nexuspp_shard::{ShardDispatcher, ShardedEngine, TaskId, TaskTicket};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Run the lowered stream through an unbounded [`ShardedEngine`]
/// single-threadedly (submit everything, then retire FIFO), returning
/// the tags in retire order.
pub fn run_on_engine(lp: &LoweredProgram, n_shards: usize) -> Vec<u64> {
    let mut eng = ShardedEngine::new(n_shards, &NexusConfig::unbounded());
    let mut ready: VecDeque<TaskId> = VecDeque::new();
    for sub in lp.tasks.iter().cloned() {
        let (id, is_ready) = eng.submit_task(sub).expect("unbounded engine admits all");
        if is_ready {
            ready.push_back(id);
        }
    }
    drain_engine(&mut eng, ready, lp.tasks.len())
}

/// Run the lowered stream through a **bounded** [`ShardedEngine`]: when
/// a shard's residency is full the feeder retires a ready task to free
/// a slot, then retries — the software form of the paper's master-core
/// stall. Returns the tags in retire order.
///
/// # Panics
///
/// Panics if admission wedges with nothing ready to retire. Cannot
/// happen for a topologically ordered stream (the oldest resident
/// always has all producers retired), which is exactly what
/// [`Program::lower`](crate::Program::lower) emits.
pub fn run_on_engine_bounded(
    lp: &LoweredProgram,
    n_shards: usize,
    capacity: ShardCapacity,
) -> Vec<u64> {
    let mut eng = ShardedEngine::with_capacity(n_shards, &NexusConfig::unbounded(), capacity);
    let mut ready: VecDeque<TaskId> = VecDeque::new();
    let mut order = Vec::with_capacity(lp.tasks.len());
    for sub in lp.tasks.iter() {
        loop {
            match eng.submit_task(sub.clone()) {
                Ok((id, is_ready)) => {
                    if is_ready {
                        ready.push_back(id);
                    }
                    break;
                }
                Err(e) if e.is_retryable() => {
                    let id = ready
                        .pop_front()
                        .expect("bounded feed wedged with no ready task");
                    retire(&mut eng, id, &mut ready, &mut order);
                }
                Err(e) => panic!("lowered submission rejected: {e}"),
            }
        }
    }
    order.extend(drain_engine(&mut eng, ready, lp.tasks.len() - order.len()));
    order
}

fn drain_engine(eng: &mut ShardedEngine, mut ready: VecDeque<TaskId>, expect: usize) -> Vec<u64> {
    let mut order = Vec::with_capacity(expect);
    while let Some(id) = ready.pop_front() {
        retire(eng, id, &mut ready, &mut order);
    }
    assert_eq!(order.len(), expect, "every submitted task retired");
    order
}

fn retire(eng: &mut ShardedEngine, id: TaskId, ready: &mut VecDeque<TaskId>, order: &mut Vec<u64>) {
    order.push(eng.tag_of(id));
    let fin = eng.finish(id);
    ready.extend(fin.newly_ready);
}

/// Run the lowered stream through a [`ShardDispatcher`] with `workers`
/// finisher threads churning concurrently, returning the tags in the
/// order workers *started* them (one submitting thread feeds in lowered
/// order; ready tasks fan out to whichever worker grabs them first).
pub fn run_on_dispatcher(lp: &LoweredProgram, n_shards: usize, workers: usize) -> Vec<u64> {
    let d = Arc::new(ShardDispatcher::<u64>::new(
        n_shards,
        &NexusConfig::unbounded(),
    ));
    let queue = Arc::new(crossbeam::queue::SegQueue::<(TaskTicket<u64>, u64)>::new());
    let done = Arc::new(AtomicUsize::new(0));
    let order = Arc::new(Mutex::new(Vec::with_capacity(lp.tasks.len())));
    let total = lp.tasks.len();
    let handles: Vec<_> = (0..workers.max(1))
        .map(|_| {
            let (d, queue, done, order) = (
                Arc::clone(&d),
                Arc::clone(&queue),
                Arc::clone(&done),
                Arc::clone(&order),
            );
            std::thread::spawn(move || {
                while done.load(Ordering::Acquire) < total {
                    match queue.pop() {
                        Some((ticket, tag)) => {
                            order.lock().push(tag);
                            let rep = d.finish(ticket);
                            for woken in rep.woken {
                                queue.push(woken);
                            }
                            done.fetch_add(rep.completed as usize, Ordering::AcqRel);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            })
        })
        .collect();
    for sub in lp.tasks.iter().cloned() {
        let tag = sub.tag;
        let (fptr, tag_u, params) = sub.into_parts();
        debug_assert_eq!(tag, tag_u);
        let res = d.submit(fptr, tag_u, &params, tag);
        if let Some(p) = res.ready {
            queue.push((res.ticket, p));
        }
        // A waiting task's ticket resurfaces in some FinishReport::woken.
    }
    for h in handles {
        h.join().expect("dispatcher worker panicked");
    }
    let order = Arc::try_unwrap(order).expect("workers joined").into_inner();
    assert_eq!(order.len(), total, "every submitted task executed");
    order
}

/// Run the lowered stream on the full threaded [`ShardedRuntime`]:
/// every task body logs its tag, the runtime schedules as dependencies
/// allow, and the logged order (the order bodies actually ran) comes
/// back after the barrier.
pub fn run_on_runtime(
    lp: &LoweredProgram,
    workers: usize,
    shards: usize,
    capacity: ShardCapacity,
) -> Vec<u64> {
    let rt = ShardedRuntime::with_capacity(workers, shards, capacity);
    let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(lp.tasks.len())));
    for sub in lp.tasks.iter().cloned() {
        let tag = sub.tag;
        let log = Arc::clone(&log);
        rt.spawn_lowered(sub, move || {
            log.lock().push(tag);
        });
    }
    rt.barrier();
    let order = log.lock().clone();
    assert_eq!(order.len(), lp.tasks.len(), "every spawned task ran");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::Lowering;
    use crate::program::Program;

    fn pipeline() -> Program {
        let mut p = Program::new();
        p.resource("in");
        for stage in 0..4 {
            // Each stage reads the previous stage's output.
            let src = if stage == 0 {
                "in".to_string()
            } else {
                format!("s{}", stage - 1)
            };
            for lane in 0..3 {
                p.task(0x100 + stage)
                    .tag(stage * 10 + lane)
                    .reads(&src)
                    .writes(&format!("s{stage}_l{lane}"))
                    .submit()
                    .unwrap();
            }
            // Merge the lanes into the stage output.
            let mut t = p.task(0x200 + stage).tag(stage * 10 + 9);
            for lane in 0..3 {
                t = t.reads(&format!("s{stage}_l{lane}"));
            }
            t.writes(&format!("s{stage}")).submit().unwrap();
        }
        p
    }

    #[test]
    fn all_backends_run_every_task_and_respect_edges() {
        let p = pipeline();
        for lowering in [Lowering::Renamed, Lowering::Raw] {
            let lp = p.lower(lowering).unwrap();
            let mut expected: Vec<u64> = lp.tasks.iter().map(|t| t.tag).collect();
            expected.sort_unstable();
            for order in [
                run_on_engine(&lp, 4),
                run_on_engine_bounded(&lp, 2, ShardCapacity::Bounded(3)),
                run_on_dispatcher(&lp, 4, 3),
                run_on_runtime(&lp, 4, 4, ShardCapacity::Unbounded),
            ] {
                let mut got = order.clone();
                got.sort_unstable();
                assert_eq!(got, expected, "{}: all tasks ran", lp.lowering.name());
                assert!(
                    lp.order_respects_edges(&order),
                    "{}: true edges respected in {order:?}",
                    lp.lowering.name()
                );
            }
        }
    }
}
