//! Declarative task programs over named, versioned resources.
//!
//! A [`Program`] is built the way a StarSs master thread issues work:
//! one task at a time, in program order, each declaring *what it
//! touches* by name — `reads("grid")`, `writes("grid")` — instead of by
//! raw address. Every write to a resource mints a fresh **logical
//! version** of it (SSA-style), so the program records exactly which
//! producer each read consumes. That version history is what the
//! lowering (see [`crate::lower`]) exploits: distinct versions can be
//! *renamed* onto distinct physical addresses, dissolving the WAR/WAW
//! false dependencies that a raw single-address encoding would force
//! the Dependence Table to serialize.

use nexuspp_core::Priority;
use std::collections::HashMap;
use std::fmt;

/// Identifies a resource registered in one [`Program`] (an index into
/// the program's resource table — not meaningful across programs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

/// A logical version of a resource. Version 0 is the resource's initial
/// contents — always readable, produced by no task. Each task write
/// mints the next version.
pub type Version = u32;

/// Errors surfaced by the frontend, either when a declaration is
/// submitted ([`UnknownResource`](FrontendError::UnknownResource)) or
/// when the program is lowered (the rest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// A task read a resource name never registered or written.
    UnknownResource {
        /// The undeclared name.
        name: String,
    },
    /// A pinned read references a version no task produces.
    UnknownProducer {
        /// The resource read.
        resource: String,
        /// The version nobody writes.
        version: Version,
        /// Tag of the reading task.
        reader: u64,
    },
    /// Version pins form a dependency cycle; no valid schedule exists.
    Cycle {
        /// Tags of the tasks on the cycle (in declaration order).
        tags: Vec<u64>,
    },
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::UnknownResource { name } => {
                write!(f, "unknown resource {name:?}: declare it or write it first")
            }
            FrontendError::UnknownProducer {
                resource,
                version,
                reader,
            } => write!(
                f,
                "task {reader} reads {resource:?} version {version}, which no task produces"
            ),
            FrontendError::Cycle { tags } => {
                write!(
                    f,
                    "version pins form a dependency cycle through tasks {tags:?}"
                )
            }
        }
    }
}

impl std::error::Error for FrontendError {}

/// One access as declared, before names resolve to ids.
#[derive(Debug, Clone)]
enum DeclAccess {
    Read(String),
    ReadVersion(String, Version),
    Write(String),
    ReadWrite(String),
}

/// A task declaration after name/version resolution: the edges of the
/// task graph in logical (resource, version) space.
#[derive(Debug, Clone)]
pub struct TaskDecl {
    /// Caller tag carried through to the lowered submission (defaults to
    /// the declaration index).
    pub tag: u64,
    /// Simulated function pointer.
    pub fptr: u64,
    /// Scheduling priority (the StarSs `highpriority` clause).
    pub priority: Priority,
    /// Versions this task consumes, in declaration order (deduplicated).
    pub reads: Vec<(ResourceId, Version)>,
    /// Versions this task produces — one freshly minted version per
    /// written resource.
    pub writes: Vec<(ResourceId, Version)>,
}

#[derive(Debug, Clone)]
struct ResourceInfo {
    name: String,
    size: u32,
    latest: Version,
}

/// An append-only program of resource-declaring tasks.
///
/// ```
/// use nexuspp_frontend::{Lowering, Program};
///
/// let mut p = Program::new();
/// p.resource("grid");
/// p.task(0x10).writes("grid").submit().unwrap(); // mints grid v1
/// p.task(0x11).reads("grid").writes("out").submit().unwrap();
/// let lowered = p.lower(Lowering::Renamed).unwrap();
/// assert_eq!(lowered.tasks.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    resources: Vec<ResourceInfo>,
    by_name: HashMap<String, ResourceId>,
    tasks: Vec<TaskDecl>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Register a resource (64-byte payload) whose version 0 is its
    /// initial contents. Registering an existing name returns its id.
    pub fn resource(&mut self, name: &str) -> ResourceId {
        self.resource_sized(name, 64)
    }

    /// Register a resource with an explicit payload size in bytes (the
    /// size carried on every lowered parameter naming it).
    pub fn resource_sized(&mut self, name: &str, size: u32) -> ResourceId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(ResourceInfo {
            name: name.to_string(),
            size,
            latest: 0,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Begin declaring a task that simulates function `fptr`.
    pub fn task(&mut self, fptr: u64) -> TaskDeclBuilder<'_> {
        TaskDeclBuilder {
            prog: self,
            fptr,
            tag: None,
            priority: Priority::Normal,
            accesses: Vec::new(),
        }
    }

    /// The resolved task declarations, in declaration order.
    pub fn tasks(&self) -> &[TaskDecl] {
        &self.tasks
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// A registered resource's name.
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.0 as usize].name
    }

    /// A registered resource's payload size in bytes.
    pub fn resource_size(&self, id: ResourceId) -> u32 {
        self.resources[id.0 as usize].size
    }

    /// The latest minted version of a resource, if registered
    /// (0 until first written).
    pub fn latest_version(&self, name: &str) -> Option<Version> {
        self.by_name
            .get(name)
            .map(|id| self.resources[id.0 as usize].latest)
    }

    fn lookup(&self, name: &str) -> Result<ResourceId, FrontendError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| FrontendError::UnknownResource {
                name: name.to_string(),
            })
    }
}

/// Builder for one task declaration; created by [`Program::task`].
///
/// Accesses resolve when [`submit`](Self::submit) is called: reads bind
/// to the resource's **latest version at that point in program order**,
/// then the task's writes mint fresh versions. Writing a name that was
/// never registered registers it on the spot.
#[derive(Debug)]
pub struct TaskDeclBuilder<'p> {
    prog: &'p mut Program,
    fptr: u64,
    tag: Option<u64>,
    priority: Priority,
    accesses: Vec<DeclAccess>,
}

impl TaskDeclBuilder<'_> {
    /// Set the caller tag (defaults to the declaration index).
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Set the task's scheduling priority.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Mark the task high priority.
    pub fn high_priority(self) -> Self {
        self.priority(Priority::High)
    }

    /// Read the resource's latest version (as of this declaration).
    pub fn reads(mut self, name: &str) -> Self {
        self.accesses.push(DeclAccess::Read(name.to_string()));
        self
    }

    /// Read a *pinned* version of the resource. The pin may name a
    /// version minted by a task declared **later** — the lowering
    /// reorders into dependency order — but a version nobody ever mints
    /// is an [`UnknownProducer`](FrontendError::UnknownProducer) error,
    /// and pins that loop are a [`Cycle`](FrontendError::Cycle).
    pub fn reads_version(mut self, name: &str, version: Version) -> Self {
        self.accesses
            .push(DeclAccess::ReadVersion(name.to_string(), version));
        self
    }

    /// Write the resource, minting a fresh version. Auto-registers the
    /// name if this is its first mention.
    pub fn writes(mut self, name: &str) -> Self {
        self.accesses.push(DeclAccess::Write(name.to_string()));
        self
    }

    /// Read the latest version, then mint a fresh one (the StarSs
    /// `inout` clause in versioned form).
    pub fn read_writes(mut self, name: &str) -> Self {
        self.accesses.push(DeclAccess::ReadWrite(name.to_string()));
        self
    }

    /// Resolve the declaration against the program state and append it,
    /// returning the task's tag. Reading a name that was never
    /// registered (and is not written here or earlier) fails with
    /// [`FrontendError::UnknownResource`].
    pub fn submit(self) -> Result<u64, FrontendError> {
        let TaskDeclBuilder {
            prog,
            fptr,
            tag,
            priority,
            accesses,
        } = self;
        let tag = tag.unwrap_or(prog.tasks.len() as u64);
        let mut reads: Vec<(ResourceId, Version)> = Vec::new();
        let mut writes: Vec<(ResourceId, Version)> = Vec::new();
        // Pass 1: resolve every read against pre-task latest versions
        // (a read_writes consumes the version preceding its own mint).
        for a in &accesses {
            let rv = match a {
                DeclAccess::Read(n) => {
                    let r = prog.lookup(n)?;
                    Some((r, prog.resources[r.0 as usize].latest))
                }
                DeclAccess::ReadVersion(n, v) => Some((prog.lookup(n)?, *v)),
                DeclAccess::ReadWrite(n) => {
                    let r = prog.resource(n);
                    Some((r, prog.resources[r.0 as usize].latest))
                }
                DeclAccess::Write(_) => None,
            };
            if let Some(rv) = rv {
                if !reads.contains(&rv) {
                    reads.push(rv);
                }
            }
        }
        // Pass 2: mint one fresh version per written resource.
        for a in &accesses {
            if let DeclAccess::Write(n) | DeclAccess::ReadWrite(n) = a {
                let r = prog.resource(n);
                if !writes.iter().any(|(w, _)| *w == r) {
                    let info = &mut prog.resources[r.0 as usize];
                    info.latest += 1;
                    writes.push((r, info.latest));
                }
            }
        }
        prog.tasks.push(TaskDecl {
            tag,
            fptr,
            priority,
            reads,
            writes,
        });
        Ok(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_mint_monotone_versions() {
        let mut p = Program::new();
        for _ in 0..3 {
            p.task(1).writes("grid").submit().unwrap();
        }
        assert_eq!(p.latest_version("grid"), Some(3));
        let decls = p.tasks();
        assert_eq!(decls[0].writes, vec![(ResourceId(0), 1)]);
        assert_eq!(decls[2].writes, vec![(ResourceId(0), 3)]);
        assert!(decls.iter().all(|t| t.reads.is_empty()));
    }

    #[test]
    fn reads_bind_to_the_latest_version_at_declaration() {
        let mut p = Program::new();
        p.resource("a");
        p.task(1).reads("a").submit().unwrap(); // v0: initial contents
        p.task(1).writes("a").submit().unwrap(); // mints v1
        p.task(1).reads("a").submit().unwrap(); // v1
        assert_eq!(p.tasks()[0].reads, vec![(ResourceId(0), 0)]);
        assert_eq!(p.tasks()[2].reads, vec![(ResourceId(0), 1)]);
    }

    #[test]
    fn read_writes_consumes_the_pre_mint_version() {
        let mut p = Program::new();
        p.task(1).writes("x").submit().unwrap(); // v1
        p.task(1).read_writes("x").submit().unwrap(); // reads v1, mints v2
        let t = &p.tasks()[1];
        assert_eq!(t.reads, vec![(ResourceId(0), 1)]);
        assert_eq!(t.writes, vec![(ResourceId(0), 2)]);
    }

    #[test]
    fn unknown_read_is_an_error_but_writes_auto_register() {
        let mut p = Program::new();
        let err = p.task(1).reads("nope").submit().unwrap_err();
        assert_eq!(
            err,
            FrontendError::UnknownResource {
                name: "nope".into()
            }
        );
        assert!(err.to_string().contains("nope"));
        p.task(1).writes("fresh").submit().unwrap();
        assert_eq!(p.latest_version("fresh"), Some(1));
        // The failed declaration appended nothing.
        assert_eq!(p.tasks().len(), 1);
    }

    #[test]
    fn duplicate_accesses_dedupe_and_mint_once() {
        let mut p = Program::new();
        p.resource("a");
        p.task(1)
            .reads("a")
            .reads("a")
            .writes("a")
            .writes("a")
            .submit()
            .unwrap();
        let t = &p.tasks()[0];
        assert_eq!(t.reads, vec![(ResourceId(0), 0)]);
        assert_eq!(t.writes, vec![(ResourceId(0), 1)]);
        assert_eq!(p.latest_version("a"), Some(1));
    }
}
