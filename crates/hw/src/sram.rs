//! On-chip SRAM access timing.
//!
//! "The access time for the ∼100 KB on-chip memory structures (those are
//! mainly the Task Pool and the Dependence Table) was determined using
//! Cacti 5.3, and was found to be 2 ns for each of them." And: "The hash
//! table access time equals the on-chip access time multiplied by the
//! number of lookups required per access."
//!
//! Every table operation in `nexuspp-core` reports how many entry touches it
//! performed (its `OpCost`); the simulator converts that
//! count to time via [`SramTiming::access_time`].

use nexuspp_desim::SimTime;

/// SRAM timing constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramTiming {
    /// Time per table access (one entry read or write). 2 ns in the paper
    /// (= 1 Nexus++ cycle).
    pub access: SimTime,
}

impl Default for SramTiming {
    fn default() -> Self {
        SramTiming {
            access: SimTime::from_ns(2),
        }
    }
}

impl SramTiming {
    /// Total time for `accesses` table touches.
    #[inline]
    pub fn access_time(&self, accesses: u64) -> SimTime {
        self.access * accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_access_time() {
        let s = SramTiming::default();
        assert_eq!(s.access_time(1), SimTime::from_ns(2));
        // "multiplied by the number of lookups required per access"
        assert_eq!(s.access_time(3), SimTime::from_ns(6));
        assert_eq!(s.access_time(0), SimTime::ZERO);
    }
}
