//! Storage-budget calculator (Table IV and the ≤210 KB claim).
//!
//! §IV-B sizes every Task Maestro structure: 78-byte Task Descriptors ×
//! 1K = 78 KB Task Pool; 28-byte Dependence Table entries × 4K = 112 KB;
//! 2-byte task IDs (1K tasks → 10 bits, rounded to 2 bytes) filling the
//! `New Tasks`, `TP Free Indices` and `Global Ready Tasks` lists (2 KB
//! each); 1-byte sizes in the `TDs Sizes` list (1 KB); 2-byte core IDs in
//! the `Worker Cores IDs` list (2 KB for up to 512 double-buffered cores);
//! and per-core `CxRdyTasks`/`CxFinTasks` lists of `buffering_depth` IDs
//! (4 bytes each at depth 2).
//!
//! §V then claims: "All tables and FIFO lists in the Nexus++ task manager do
//! not exceed 210 KB of memory", contrasted with Task Superscalar's 6.5 MB.
//! [`StorageBudget`] recomputes all of this from a configuration so the
//! claim is a checked property, not a constant.

/// Byte sizes of every Nexus++ storage structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageBudget {
    /// Task Pool: `task_pool_entries × td_bytes`.
    pub task_pool: u64,
    /// Dependence Table: `dep_table_entries × dt_entry_bytes`.
    pub dep_table: u64,
    /// `TDs Sizes` list (1 byte per pending descriptor size).
    pub tds_sizes: u64,
    /// `New Tasks` list (one task ID per entry).
    pub new_tasks: u64,
    /// `TP Free Indices` list (one pool index per entry).
    pub tp_free: u64,
    /// `Global Ready Tasks` list (one task ID per entry).
    pub global_ready: u64,
    /// `Worker Cores IDs` list (one core ID per entry).
    pub worker_ids: u64,
    /// All `CxRdyTasks` lists combined.
    pub rdy_lists: u64,
    /// All `CxFinTasks` lists combined.
    pub fin_lists: u64,
}

/// Parameters needed to size the structures (a subset of the Task Machine
/// configuration, kept dependency-free here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageParams {
    /// Task Pool entries (1024 in Table IV).
    pub task_pool_entries: u64,
    /// Bytes per Task Descriptor (78 in Table IV).
    pub td_bytes: u64,
    /// Dependence Table entries (4096 in Table IV).
    pub dep_table_entries: u64,
    /// Bytes per Dependence Table entry (28 in Table IV).
    pub dt_entry_bytes: u64,
    /// Worker cores provisioned for (512 in the paper's sizing).
    pub worker_cores: u64,
    /// Task-buffering depth per core (2 = double buffering).
    pub buffering_depth: u64,
}

impl Default for StorageParams {
    fn default() -> Self {
        StorageParams {
            task_pool_entries: 1024,
            td_bytes: 78,
            dep_table_entries: 4096,
            dt_entry_bytes: 28,
            worker_cores: 512,
            buffering_depth: 2,
        }
    }
}

/// Round a bit count up to whole bytes ("rounded up to multiples of a
/// byte", as the paper sizes its IDs).
fn id_bytes(distinct: u64) -> u64 {
    let bits = 64 - (distinct.max(2) - 1).leading_zeros() as u64;
    bits.div_ceil(8)
}

impl StorageBudget {
    /// Compute the budget for `p`.
    pub fn compute(p: &StorageParams) -> Self {
        let task_id_bytes = id_bytes(p.task_pool_entries);
        let core_id_bytes = id_bytes(p.worker_cores);
        StorageBudget {
            task_pool: p.task_pool_entries * p.td_bytes,
            dep_table: p.dep_table_entries * p.dt_entry_bytes,
            tds_sizes: p.task_pool_entries, // 1 byte per size
            new_tasks: p.task_pool_entries * task_id_bytes,
            tp_free: p.task_pool_entries * task_id_bytes,
            global_ready: p.task_pool_entries * task_id_bytes,
            worker_ids: p.worker_cores * p.buffering_depth * core_id_bytes,
            rdy_lists: p.worker_cores * p.buffering_depth * task_id_bytes,
            fin_lists: p.worker_cores * p.buffering_depth * task_id_bytes,
        }
    }

    /// Total bytes across all structures.
    pub fn total(&self) -> u64 {
        self.task_pool
            + self.dep_table
            + self.tds_sizes
            + self.new_tasks
            + self.tp_free
            + self.global_ready
            + self.worker_ids
            + self.rdy_lists
            + self.fin_lists
    }

    /// Named rows for reporting (label, bytes).
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("Task Pool", self.task_pool),
            ("Dependence Table", self.dep_table),
            ("TDs Sizes list", self.tds_sizes),
            ("New Tasks list", self.new_tasks),
            ("TP Free Indices list", self.tp_free),
            ("Global Ready Tasks list", self.global_ready),
            ("Worker Cores IDs list", self.worker_ids),
            ("CxRdyTasks lists", self.rdy_lists),
            ("CxFinTasks lists", self.fin_lists),
        ]
    }
}

/// Task Superscalar's reported on-chip storage, for the §V comparison.
pub const TASK_SUPERSCALAR_BYTES: u64 = 6_500 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_structure_sizes() {
        let b = StorageBudget::compute(&StorageParams::default());
        assert_eq!(b.task_pool, 78 * 1024); // "Task Pool size 78 KB (1K TDs)"
        assert_eq!(b.dep_table, 112 * 1024); // "112 KB (4K entries)"
        assert_eq!(b.tds_sizes, 1024); // "TDs Sizes list size 1KB"
        assert_eq!(b.new_tasks, 2 * 1024); // "New Tasks list size 2KB"
        assert_eq!(b.tp_free, 2 * 1024);
        assert_eq!(b.global_ready, 2 * 1024);
        assert_eq!(b.worker_ids, 2 * 1024); // 512 cores × 2 × 2B
    }

    #[test]
    fn per_core_lists_match_table_iv() {
        let b = StorageBudget::compute(&StorageParams::default());
        // "CxRdyTasks list size 4 Bytes" per core: depth 2 × 2-byte IDs.
        assert_eq!(b.rdy_lists / 512, 4);
        assert_eq!(b.fin_lists / 512, 4);
    }

    #[test]
    fn total_under_210_kb() {
        let b = StorageBudget::compute(&StorageParams::default());
        assert!(
            b.total() <= 210 * 1024,
            "total {} B exceeds 210 KB",
            b.total()
        );
        // And far below Task Superscalar's 6.5 MB.
        assert!(b.total() * 10 < TASK_SUPERSCALAR_BYTES);
    }

    #[test]
    fn id_width_rounding() {
        assert_eq!(id_bytes(1024), 2); // 10 bits → 2 bytes
        assert_eq!(id_bytes(256), 1); // 8 bits → 1 byte
        assert_eq!(id_bytes(257), 2); // 9 bits → 2 bytes
        assert_eq!(id_bytes(512), 2); // 9 bits → 2 bytes (paper: 512 cores)
        assert_eq!(id_bytes(2), 1);
    }

    #[test]
    fn rows_sum_to_total() {
        let b = StorageBudget::compute(&StorageParams::default());
        let sum: u64 = b.rows().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, b.total());
    }
}
