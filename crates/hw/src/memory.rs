//! Off-chip memory timing and contention model.
//!
//! From the paper (§IV-B, *Access Latencies*): off-chip RAM access time is
//! "12 ns per 128 bytes RAM chunk, assuming 32-bank 1 GB of RAM, which is
//! equivalent to a maximum memory bandwidth of 10.67 GB/s. The off-chip
//! memory is assumed to have 32 banks, each having one read/write port.
//! Therefore, no more than 32 tasks can access the memory at a given time,
//! and this is how contention accessing off-chip memory is modeled."
//!
//! The model therefore has two ingredients:
//!
//! 1. a *duration*: `ceil(bytes / 128) × 12 ns` for size-derived transfers
//!    (Gaussian elimination), or a trace-recorded duration (H.264), and
//! 2. an *admission limit*: at most 32 transfers in flight; further
//!    requesters queue FIFO. The headline result (54× with contention vs
//!    143× without at high core counts) comes entirely from this limiter.
//!
//! The admission queue itself lives in the simulator (it needs the event
//! loop); this module owns the configuration and the pure timing math.

use nexuspp_desim::SimTime;

/// Contention regime for off-chip memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryMode {
    /// At most `slots` concurrent accessors; excess requesters queue FIFO.
    /// The paper's default (32 banks × 1 port).
    Contended { slots: usize },
    /// Idealized memory: transfers never queue ("assuming contention-free
    /// memory" in the 143×/221× experiments).
    ContentionFree,
}

/// Off-chip memory configuration (Table IV values as defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Transfer granularity in bytes (128 in the paper).
    pub chunk_bytes: u32,
    /// Time per chunk (12 ns in the paper).
    pub chunk_time: SimTime,
    /// Contention regime.
    pub mode: MemoryMode,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            chunk_bytes: 128,
            chunk_time: SimTime::from_ns(12),
            mode: MemoryMode::Contended { slots: 32 },
        }
    }
}

impl MemoryConfig {
    /// The paper's contention-free variant of the default configuration.
    pub fn contention_free() -> Self {
        MemoryConfig {
            mode: MemoryMode::ContentionFree,
            ..Self::default()
        }
    }

    /// Number of admission slots (`usize::MAX` when contention-free).
    pub fn slots(&self) -> usize {
        match self.mode {
            MemoryMode::Contended { slots } => slots,
            MemoryMode::ContentionFree => usize::MAX,
        }
    }

    /// Uncontended transfer time for `bytes` bytes: whole chunks, ceiling.
    /// Zero bytes take zero time.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let chunks = bytes.div_ceil(self.chunk_bytes as u64);
        self.chunk_time * chunks
    }

    /// Peak bandwidth implied by the chunk parameters, in GB/s. With the
    /// defaults: 128 B / 12 ns = 10.67 GB/s, matching Table IV.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.chunk_bytes as f64 / self.chunk_time.as_ns_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth() {
        let m = MemoryConfig::default();
        assert!((m.peak_bandwidth_gbps() - 10.6666).abs() < 1e-3);
        assert_eq!(m.slots(), 32);
    }

    #[test]
    fn transfer_time_rounds_up_to_chunks() {
        let m = MemoryConfig::default();
        assert_eq!(m.transfer_time(0), SimTime::ZERO);
        assert_eq!(m.transfer_time(1), SimTime::from_ns(12));
        assert_eq!(m.transfer_time(128), SimTime::from_ns(12));
        assert_eq!(m.transfer_time(129), SimTime::from_ns(24));
        assert_eq!(m.transfer_time(1024), SimTime::from_ns(96));
    }

    #[test]
    fn gaussian_task_times_match_paper_scale() {
        // A 3523-FLOP average task (n = 5000) moves 3523 doubles each way.
        let m = MemoryConfig::default();
        let bytes = 3523u64 * 8;
        let t = m.transfer_time(bytes);
        // 28184 B → 221 chunks → 2652 ns.
        assert_eq!(t, SimTime::from_ns(2652));
    }

    #[test]
    fn contention_free_mode() {
        let m = MemoryConfig::contention_free();
        assert_eq!(m.mode, MemoryMode::ContentionFree);
        assert_eq!(m.slots(), usize::MAX);
        // Timing identical; only admission differs.
        assert_eq!(m.transfer_time(256), SimTime::from_ns(24));
    }
}
