//! On-chip bus and task-submission cost model.
//!
//! From the paper (§IV-B): "The modeled on-chip bus is a very basic one. It
//! is an 8-byte width bus, and its bandwidth is assumed to be 2 GB/s […]
//! Every time the Master Core wishes to submit a task to the Task Maestro,
//! it arranges the task's information into 8-byte words. The first word
//! specifies the task's ID and function pointer, and every other word
//! specifies a single parameter […] we assume that for each task submission,
//! an initial (handshaking) bus delay of 5 cycles is needed, and each word
//! takes 2 cycles (2 GB/s bus bandwidth) to reach the Task Maestro. For
//! example, a task with 4 parameters takes 10 cycles (20 ns), whereas an
//! 8-parameters task takes 14 cycles (28 ns) submission delay."
//!
//! **Calibration note.** The prose formula (5 + 2·(1 + n_params) cycles)
//! gives 15/23 cycles for 4/8 parameters — it contradicts the worked example
//! (10/14 cycles), which instead fits `6 + n_params`. Since the published
//! figures were produced with whatever the code did, we calibrate the
//! default to the worked example and keep the prose model available as
//! [`BusConfig::prose_model`]. Both are expressed through the same three
//! constants so design-space sweeps can explore either.

use nexuspp_desim::{Clock, SimTime};

/// On-chip bus cost model, in Nexus++ clock cycles (500 MHz, 2 ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Handshake cycles before any payload word moves.
    pub handshake_cycles: u64,
    /// Cycles consumed by the header word (task ID + function pointer).
    pub header_cycles: u64,
    /// Cycles per parameter word.
    pub cycles_per_param: u64,
    /// Bus word width in bytes (8 in the paper; used for descriptor-transfer
    /// sizing toward the Task Controllers).
    pub word_bytes: u32,
}

impl Default for BusConfig {
    /// Calibrated to the paper's worked example: total = 6 + n_params
    /// cycles (4 params → 10 cycles = 20 ns, 8 params → 14 cycles = 28 ns).
    fn default() -> Self {
        BusConfig {
            handshake_cycles: 5,
            header_cycles: 1,
            cycles_per_param: 1,
            word_bytes: 8,
        }
    }
}

impl BusConfig {
    /// The literal prose model: 5-cycle handshake plus 2 cycles per word
    /// (header word + one word per parameter).
    pub fn prose_model() -> Self {
        BusConfig {
            handshake_cycles: 5,
            header_cycles: 2,
            cycles_per_param: 2,
            word_bytes: 8,
        }
    }

    /// Submission delay, in bus cycles, for a task with `n_params`
    /// parameters.
    pub fn submission_cycles(&self, n_params: usize) -> u64 {
        self.handshake_cycles + self.header_cycles + self.cycles_per_param * n_params as u64
    }

    /// Submission delay as simulated time under `clk` (the Nexus++ clock in
    /// the paper).
    pub fn submission_time(&self, n_params: usize, clk: Clock) -> SimTime {
        clk.cycles(self.submission_cycles(n_params))
    }

    /// Transfer delay for sending a Task Descriptor from the Maestro to a
    /// Task Controller (`Send TDs` block): the function pointer word plus
    /// one word per parameter, at the same per-word rate (no handshake — the
    /// request/grant protocol is the TC's one-bit request line, which the
    /// paper treats as free).
    pub fn td_transfer_cycles(&self, n_params: usize) -> u64 {
        self.header_cycles + self.cycles_per_param * n_params as u64
    }

    /// [`td_transfer_cycles`](Self::td_transfer_cycles) as simulated time.
    pub fn td_transfer_time(&self, n_params: usize, clk: Clock) -> SimTime {
        clk.cycles(self.td_transfer_cycles(n_params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexuspp_desim::clock::NEXUS_CLOCK_MHZ;

    #[test]
    fn worked_example_from_paper() {
        let bus = BusConfig::default();
        let clk = Clock::from_mhz(NEXUS_CLOCK_MHZ);
        // "a task with 4 parameters takes 10 cycles (20 ns)"
        assert_eq!(bus.submission_cycles(4), 10);
        assert_eq!(bus.submission_time(4, clk), SimTime::from_ns(20));
        // "an 8-parameters task takes 14 cycles (28 ns)"
        assert_eq!(bus.submission_cycles(8), 14);
        assert_eq!(bus.submission_time(8, clk), SimTime::from_ns(28));
    }

    #[test]
    fn prose_model_matches_prose() {
        let bus = BusConfig::prose_model();
        // 5 handshake + 2·(1 header + 4 params) = 15 cycles.
        assert_eq!(bus.submission_cycles(4), 15);
        assert_eq!(bus.submission_cycles(8), 23);
    }

    #[test]
    fn zero_param_task_still_pays_handshake_and_header() {
        let bus = BusConfig::default();
        assert_eq!(bus.submission_cycles(0), 6);
    }

    #[test]
    fn td_transfer_scales_with_params() {
        let bus = BusConfig::default();
        let clk = Clock::from_mhz(NEXUS_CLOCK_MHZ);
        assert_eq!(bus.td_transfer_cycles(0), 1);
        assert_eq!(bus.td_transfer_cycles(8), 9);
        assert_eq!(bus.td_transfer_time(8, clk), SimTime::from_ns(18));
    }
}
