//! # nexuspp-hw — hardware timing substrates
//!
//! Timing models for the platform pieces the Nexus++ paper's "Task Machine"
//! simulates around the task manager:
//!
//! * [`memory`] — the banked off-chip memory: 12 ns per 128-byte chunk,
//!   32 banks with one port each, so at most 32 concurrent accessors (the
//!   paper's contention model), or an idealized contention-free mode,
//! * [`bus`] — the 8-byte-wide, 2 GB/s on-chip bus between the master core
//!   and the Task Maestro, including the task-submission cost model
//!   (5-cycle handshake + per-word transfer) and the Maestro→Task Controller
//!   descriptor transfer,
//! * [`sram`] — on-chip SRAM access timing (2 ns per lookup, from CACTI in
//!   the paper); hash-table operations cost `accesses × 2 ns`,
//! * [`storage`] — the storage-budget calculator behind Table IV and the
//!   "all tables and FIFO lists do not exceed 210 KB" claim.

pub mod bus;
pub mod memory;
pub mod sram;
pub mod storage;

pub use bus::BusConfig;
pub use memory::{MemoryConfig, MemoryMode};
pub use sram::SramTiming;
pub use storage::StorageBudget;
