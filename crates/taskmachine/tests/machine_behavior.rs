//! Behavioral tests of the Task Machine: timing composition, pipelining,
//! buffering, contention, backpressure, determinism and error reporting.

use nexuspp_core::NexusConfig;
use nexuspp_desim::SimTime;
use nexuspp_hw::{MemoryConfig, MemoryMode};
use nexuspp_taskmachine::{simulate_trace, MachineConfig, SimError};
use nexuspp_trace::{MemCost, Param, TaskRecord, Trace};

fn task(id: u64, params: Vec<Param>, exec_us: u64) -> TaskRecord {
    TaskRecord {
        id,
        fptr: 0xF,
        params,
        exec: SimTime::from_us(exec_us),
        read: MemCost::None,
        write: MemCost::None,
    }
}

fn independent(n: u64, exec_us: u64) -> Trace {
    Trace::from_tasks(
        "ind",
        (0..n)
            .map(|i| task(i, vec![Param::inout(0x10_0000 + i * 64, 16)], exec_us))
            .collect(),
    )
}

fn chain(n: u64, exec_us: u64) -> Trace {
    Trace::from_tasks(
        "chain",
        (0..n)
            .map(|i| {
                let mut p = vec![Param::output(0x20_0000 + i * 64, 16)];
                if i > 0 {
                    p.push(Param::input(0x20_0000 + (i - 1) * 64, 16));
                }
                task(i, p, exec_us)
            })
            .collect(),
    )
}

#[test]
fn empty_trace_completes_instantly() {
    let r = simulate_trace(MachineConfig::with_workers(4), &Trace::new("empty")).unwrap();
    assert_eq!(r.tasks, 0);
    assert_eq!(r.makespan, SimTime::ZERO);
}

#[test]
fn single_task_timing_composition() {
    // One task, one worker: makespan = prep + submission + maestro
    // pipeline + exec (+ no memory). All components are deterministic.
    let tr = Trace::from_tasks("one", vec![task(0, vec![Param::inout(0x1000, 16)], 10)]);
    let r = simulate_trace(MachineConfig::with_workers(1), &tr).unwrap();
    assert_eq!(r.tasks, 1);
    // Lower bound: prep 30 ns + submission (6+1 cycles = 14 ns) + exec 10 µs.
    assert!(r.makespan > SimTime::from_us(10));
    assert!(
        r.makespan < SimTime::from_us(11),
        "pipeline overhead should be well under 1 µs: {}",
        r.makespan
    );
    assert_eq!(r.worker_exec, SimTime::from_us(10));
}

#[test]
fn independent_tasks_scale_almost_linearly() {
    let tr = independent(400, 10);
    let m1 = simulate_trace(MachineConfig::with_workers(1), &tr).unwrap();
    let m8 = simulate_trace(MachineConfig::with_workers(8), &tr).unwrap();
    let m32 = simulate_trace(MachineConfig::with_workers(32), &tr).unwrap();
    let s8 = m1.makespan / m8.makespan;
    let s32 = m1.makespan / m32.makespan;
    assert!(s8 > 7.2, "8-worker speedup {s8}");
    assert!(s32 > 24.0, "32-worker speedup {s32}");
}

#[test]
fn chains_do_not_scale() {
    let tr = chain(100, 10);
    let m1 = simulate_trace(MachineConfig::with_workers(1), &tr).unwrap();
    let m8 = simulate_trace(MachineConfig::with_workers(8), &tr).unwrap();
    let s = m1.makespan / m8.makespan;
    assert!(s < 1.1, "a serial chain cannot speed up: {s}");
}

#[test]
fn deterministic_across_runs() {
    let tr = independent(300, 7);
    let a = simulate_trace(MachineConfig::with_workers(16), &tr).unwrap();
    let b = simulate_trace(MachineConfig::with_workers(16), &tr).unwrap();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
}

#[test]
fn double_buffering_hides_memory_latency() {
    // Tasks with substantial input-fetch time: with depth 1 the core waits
    // for each fetch; with depth 2 fetches overlap execution.
    let tasks: Vec<TaskRecord> = (0..200)
        .map(|i| TaskRecord {
            id: i,
            fptr: 1,
            params: vec![Param::inout(0x1000 + i * 64, 16)],
            exec: SimTime::from_us(10),
            read: MemCost::Time(SimTime::from_us(8)),
            write: MemCost::None,
        })
        .collect();
    let tr = Trace::from_tasks("mem-heavy", tasks);
    let mut single = MachineConfig::with_workers(4);
    single.buffering_depth = 1;
    let mut double = MachineConfig::with_workers(4);
    double.buffering_depth = 2;
    let r1 = simulate_trace(single, &tr).unwrap();
    let r2 = simulate_trace(double, &tr).unwrap();
    let gain = r1.makespan / r2.makespan;
    assert!(
        gain > 1.5,
        "double buffering should overlap 8 µs fetches with 10 µs exec: {gain}"
    );
}

#[test]
fn memory_contention_throttles_many_cores() {
    // 64 workers × long memory phases vs 4 bank slots.
    let tasks: Vec<TaskRecord> = (0..600)
        .map(|i| TaskRecord {
            id: i,
            fptr: 1,
            params: vec![Param::inout(0x1000 + i * 64, 16)],
            exec: SimTime::from_us(2),
            read: MemCost::Time(SimTime::from_us(6)),
            write: MemCost::Time(SimTime::from_us(2)),
        })
        .collect();
    let tr = Trace::from_tasks("contended", tasks);
    let mut tight = MachineConfig::with_workers(64);
    tight.memory = MemoryConfig {
        mode: MemoryMode::Contended { slots: 4 },
        ..MemoryConfig::default()
    };
    let free = MachineConfig::with_workers(64).contention_free();
    let r_tight = simulate_trace(tight, &tr).unwrap();
    let r_free = simulate_trace(free, &tr).unwrap();
    assert!(
        r_tight.makespan > r_free.makespan * 2,
        "4 slots must throttle: {} vs {}",
        r_tight.makespan,
        r_free.makespan
    );
    assert!(r_tight.mem_queued > 0);
    assert_eq!(r_free.mem_queued, 0);
}

#[test]
fn task_too_large_is_reported() {
    let params: Vec<Param> = (0..100)
        .map(|i| Param::output(0x9000 + i * 64, 8))
        .collect();
    let tr = Trace::from_tasks("huge", vec![task(0, params, 1)]);
    let mut cfg = MachineConfig::with_workers(1);
    cfg.nexus = NexusConfig {
        task_pool_entries: 4,
        ..NexusConfig::default()
    };
    match simulate_trace(cfg, &tr) {
        Err(SimError::TaskTooLarge {
            task,
            needed,
            capacity,
        }) => {
            assert_eq!(task, 0);
            assert!(needed > capacity);
        }
        other => panic!("expected TaskTooLarge, got {other:?}"),
    }
}

#[test]
fn tiny_task_pool_backpressures_but_completes() {
    let tr = independent(200, 3);
    let mut cfg = MachineConfig::with_workers(4);
    cfg.nexus = NexusConfig {
        task_pool_entries: 8,
        ..NexusConfig::default()
    };
    let r = simulate_trace(cfg, &tr).unwrap();
    assert_eq!(r.tasks, 200);
    assert!(r.pool.peak_occupancy <= 8);
}

#[test]
fn tiny_dependence_table_stalls_but_completes() {
    // 3 live addresses at a time (chain of inout on rotating addresses):
    // a 4-entry table forces Check Deps stalls yet must not deadlock.
    let tasks: Vec<TaskRecord> = (0..100)
        .map(|i| {
            task(
                i,
                vec![
                    Param::inout(0x1000 + (i % 3) * 64, 16),
                    Param::input(0x5000 + (i % 2) * 64, 16),
                ],
                1,
            )
        })
        .collect();
    let tr = Trace::from_tasks("rotate", tasks);
    let mut cfg = MachineConfig::with_workers(2);
    cfg.nexus = NexusConfig {
        dep_table_entries: 4,
        ..NexusConfig::default()
    };
    let r = simulate_trace(cfg, &tr).unwrap();
    assert_eq!(r.tasks, 100);
}

#[test]
fn wavefront_order_respected_with_memory() {
    // A 2-wide dependency ladder with byte-volume memory costs exercises
    // the Bytes→time path end to end.
    let mut tasks = Vec::new();
    for i in 0..50u64 {
        let mut p = vec![Param::inout(0x1000 + i * 64, 64)];
        if i >= 2 {
            p.push(Param::input(0x1000 + (i - 2) * 64, 64));
        }
        tasks.push(TaskRecord {
            id: i,
            fptr: 1,
            params: p,
            exec: SimTime::from_ns(500),
            read: MemCost::Bytes(1024),
            write: MemCost::Bytes(512),
        });
    }
    let tr = Trace::from_tasks("ladder", tasks);
    let r = simulate_trace(MachineConfig::with_workers(4), &tr).unwrap();
    assert_eq!(r.tasks, 50);
    // Two independent chains → speedup bounded by 2. It lands below that
    // because every chain step exposes the Maestro wake-up latency
    // (HandleFinished → Schedule → SendTDs → input fetch), which the
    // single-worker baseline hides behind double buffering.
    let r1 = simulate_trace(MachineConfig::with_workers(1), &tr).unwrap();
    let s = r1.makespan / r.makespan;
    assert!(s <= 2.05, "ladder parallelism is 2, got {s}");
    assert!(s > 1.25, "ladder should approach 2×, got {s}");
}

#[test]
fn master_stalls_counted_with_tiny_sizes_list() {
    let tr = independent(300, 0); // zero-exec tasks: master outruns nothing
    let mut cfg = MachineConfig::with_workers(1);
    cfg.lists.tds_sizes = 2;
    cfg.lists.tds_buffer = 2;
    let r = simulate_trace(cfg, &tr).unwrap();
    assert_eq!(r.tasks, 300);
    // Backpressure chain: a tiny Task Pool wedges Write TP behind slow
    // 10 µs tasks, the TDs lists fill, and the master must stall ("If this
    // list is full, the Master Core stalls").
    let tr2 = independent(300, 10);
    let mut cfg2 = MachineConfig::with_workers(1);
    cfg2.lists.tds_sizes = 2;
    cfg2.lists.tds_buffer = 2;
    cfg2.nexus = NexusConfig {
        task_pool_entries: 4,
        ..NexusConfig::default()
    };
    let r2 = simulate_trace(cfg2, &tr2).unwrap();
    assert!(r2.master_stalls > 0);
    assert!(
        r2.write_tp.stalls > 0,
        "Write TP must have hit the full pool"
    );
    assert_eq!(r2.tasks, 300);
}

#[test]
fn no_prep_reduces_makespan_for_fine_tasks() {
    let tr = independent(2000, 0);
    let with_prep = simulate_trace(MachineConfig::with_workers(16), &tr).unwrap();
    let without = simulate_trace(MachineConfig::with_workers(16).no_prep(), &tr).unwrap();
    assert!(
        without.makespan < with_prep.makespan,
        "removing 30 ns/task prep must help fine-grained submission"
    );
}

#[test]
fn shared_bus_slows_submission_pipeline() {
    let tr = independent(2000, 0);
    let separate = simulate_trace(MachineConfig::with_workers(16), &tr).unwrap();
    let mut shared_cfg = MachineConfig::with_workers(16);
    shared_cfg.shared_bus = true;
    let shared = simulate_trace(shared_cfg, &tr).unwrap();
    assert!(
        shared.makespan >= separate.makespan,
        "bus serialization cannot speed things up"
    );
}

#[test]
fn report_accounting_consistent() {
    let tr = independent(100, 5);
    let r = simulate_trace(MachineConfig::with_workers(8), &tr).unwrap();
    assert_eq!(r.tasks, 100);
    assert_eq!(r.write_tp.ops, 100);
    assert_eq!(r.check_deps.ops, 100);
    assert_eq!(r.schedule.ops, 100);
    assert_eq!(r.send_tds.ops, 100);
    assert_eq!(r.handle_fin.ops, 100);
    assert_eq!(r.worker_exec, SimTime::from_us(500));
    assert!(r.worker_utilization() > 0.0 && r.worker_utilization() <= 1.0);
    assert!(r.tasks_per_us() > 0.0);
    // The pool never exceeds the in-flight window.
    assert!(r.pool.peak_occupancy <= 1024);
}

#[test]
fn fast_independent_queue_speeds_up_paramless_tasks() {
    // Parameterless tasks: the future-work bypass skips Check Deps.
    let tasks: Vec<TaskRecord> = (0..3000)
        .map(|i| TaskRecord {
            id: i,
            fptr: 1,
            params: Vec::new(),
            exec: SimTime::from_ns(200),
            read: MemCost::None,
            write: MemCost::None,
        })
        .collect();
    let tr = Trace::from_tasks("paramless", tasks);
    let normal = simulate_trace(MachineConfig::with_workers(32).no_prep(), &tr).unwrap();
    let mut fast_cfg = MachineConfig::with_workers(32).no_prep();
    fast_cfg.fast_independent_queue = true;
    let fast = simulate_trace(fast_cfg, &tr).unwrap();
    assert_eq!(fast.tasks, 3000);
    assert_eq!(
        fast.check_deps.ops, 0,
        "bypass must skip Check Deps entirely"
    );
    assert!(
        fast.makespan < normal.makespan,
        "bypass should shorten the pipeline: {} vs {}",
        fast.makespan,
        normal.makespan
    );
}

#[test]
fn fast_queue_does_not_affect_dependent_tasks() {
    // Tasks WITH parameters must take the normal path even when the fast
    // queue is enabled — and results must be identical.
    let tr = chain(60, 5);
    let mut fast_cfg = MachineConfig::with_workers(4);
    fast_cfg.fast_independent_queue = true;
    let normal = simulate_trace(MachineConfig::with_workers(4), &tr).unwrap();
    let fast = simulate_trace(fast_cfg, &tr).unwrap();
    assert_eq!(fast.makespan, normal.makespan);
    assert_eq!(fast.check_deps.ops, 60);
}

#[test]
fn progress_curve_shows_wavefront_ramp() {
    use nexuspp_workloads::{GridPattern, GridSpec};
    let tr = GridSpec::default().generate(GridPattern::Wavefront);
    let r = simulate_trace(MachineConfig::with_workers(64), &tr).unwrap();
    let rates = r.completion_rates();
    assert!(rates.len() > 20, "need enough samples: {}", rates.len());
    // The completion rate mid-run must clearly exceed the rate in the
    // first and last stretches (the ramp in the time domain).
    let mid = rates[rates.len() / 2].1;
    let head = rates[1].1;
    let tail = rates[rates.len() - 1].1;
    assert!(
        mid > head * 1.5 && mid > tail * 1.5,
        "ramp not visible: head {head:.3}, mid {mid:.3}, tail {tail:.3} tasks/us"
    );
    // Samples are monotone in both time and count.
    for w in r.progress.windows(2) {
        assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
    }
}
