//! The discrete-event simulator and the closed-form bottleneck model are
//! two independent implementations of the same system; on steady-state
//! workloads they must agree. This pins down the simulator's throughput
//! behaviour far more tightly than shape assertions can.

use nexuspp_desim::SimTime;
use nexuspp_taskmachine::analytic::predict_speedup;
use nexuspp_taskmachine::{simulate_trace, MachineConfig};
use nexuspp_trace::{MemCost, Param, TaskRecord, Trace};
use nexuspp_workloads::{GridPattern, GridSpec};

fn independent(n: u64, exec_us: u64, read_us: u64, write_us: u64) -> Trace {
    let mk_time = |us: u64| {
        if us == 0 {
            MemCost::None
        } else {
            MemCost::Time(SimTime::from_us(us))
        }
    };
    let tasks = (0..n)
        .map(|i| TaskRecord {
            id: i,
            fptr: 1,
            params: vec![
                Param::input(0x20_0000 + i * 192, 16),
                Param::input(0x20_0040 + i * 192, 16),
                Param::inout(0x20_0080 + i * 192, 16),
            ],
            exec: SimTime::from_us(exec_us),
            read: mk_time(read_us),
            write: mk_time(write_us),
        })
        .collect();
    Trace::from_tasks("ind", tasks)
}

/// Measure simulated speedup (vs 1 worker) and compare with the analytic
/// prediction within `tol` relative error.
fn check(trace: &Trace, cfg: MachineConfig, tol: f64) {
    let base = simulate_trace(MachineConfig::with_workers(1), trace).unwrap();
    let r = simulate_trace(cfg.clone(), trace).unwrap();
    let measured = base.makespan / r.makespan;
    let predicted = predict_speedup(trace, &cfg).speedup();
    let rel = (measured - predicted).abs() / predicted;
    assert!(
        rel < tol,
        "{} workers ({}): measured {measured:.2} vs predicted {predicted:.2} ({rel:.3} > {tol})",
        cfg.workers,
        predict_speedup(trace, &cfg).bottleneck(),
    );
}

#[test]
fn worker_bound_region_agrees() {
    // Long tasks, few cores: speedup ≈ workers.
    let trace = independent(600, 10, 0, 0);
    for w in [2usize, 4, 8, 16] {
        check(&trace, MachineConfig::with_workers(w), 0.08);
    }
}

#[test]
fn master_bound_plateau_agrees() {
    // Tiny tasks, many cores: the master's per-task cycle sets throughput.
    let trace = independent(4000, 1, 0, 0);
    for w in [64usize, 128] {
        check(
            &trace,
            MachineConfig::with_workers(w).contention_free(),
            0.15,
        );
    }
}

#[test]
fn memory_bound_region_agrees() {
    // Memory-heavy tasks against 32 bank slots.
    let trace = independent(1500, 2, 4, 2);
    for w in [64usize, 128] {
        check(&trace, MachineConfig::with_workers(w), 0.15);
    }
}

#[test]
fn paper_workload_contended_agrees() {
    // The paper's independent benchmark: H.264 timing distribution, 64
    // cores under contention (≈54× in the paper). The analytic model sees
    // only means, so allow a wider band.
    let trace = GridSpec::default().generate(GridPattern::Independent);
    check(&trace, MachineConfig::with_workers(64), 0.2);
}

#[test]
fn bottleneck_transitions_match_simulation() {
    // Sweep worker counts across the worker→master transition and require
    // the measured knee to sit where the model predicts.
    let trace = independent(3000, 2, 0, 0);
    let base = simulate_trace(MachineConfig::with_workers(1), &trace).unwrap();
    let mut last_measured = 1.0f64;
    let mut knee_measured = None;
    let mut knee_predicted = None;
    for w in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let cfg = MachineConfig::with_workers(w).contention_free();
        let r = simulate_trace(cfg.clone(), &trace).unwrap();
        let s = base.makespan / r.makespan;
        if knee_measured.is_none() && s < last_measured * 1.5 && w > 2 {
            knee_measured = Some(w);
        }
        last_measured = s;
        let p = predict_speedup(&trace, &cfg);
        if knee_predicted.is_none() && p.bottleneck() == "master" {
            knee_predicted = Some(w);
        }
    }
    let (m, p) = (knee_measured.unwrap_or(512), knee_predicted.unwrap_or(512));
    assert!(
        m == p || m == p * 2 || p == m * 2,
        "measured knee at {m} workers, predicted at {p}"
    );
}
