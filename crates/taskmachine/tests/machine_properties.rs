//! Property tests of the Task Machine: every generated workload must
//! complete, conserve tasks, respect structural bounds, and simulate
//! deterministically — under randomized dependency structures, task
//! timings and machine configurations.

use nexuspp_core::NexusConfig;
use nexuspp_desim::SimTime;
use nexuspp_taskmachine::{simulate_trace, MachineConfig};
use nexuspp_trace::normalize::normalize_params;
use nexuspp_trace::{AccessMode, MemCost, Param, TaskRecord, Trace};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = AccessMode> {
    prop_oneof![
        Just(AccessMode::In),
        Just(AccessMode::Out),
        Just(AccessMode::InOut),
    ]
}

fn mem_cost_strategy() -> impl Strategy<Value = MemCost> {
    prop_oneof![
        Just(MemCost::None),
        (1u64..20_000).prop_map(|ns| MemCost::Time(SimTime::from_ns(ns))),
        (1u64..65_536).prop_map(MemCost::Bytes),
    ]
}

prop_compose! {
    fn task_strategy()(
        addrs in prop::collection::vec((0u64..24, mode_strategy()), 1..5),
        exec_ns in 0u64..50_000,
        read in mem_cost_strategy(),
        write in mem_cost_strategy(),
    ) -> (Vec<Param>, SimTime, MemCost, MemCost) {
        let params: Vec<Param> = addrs
            .into_iter()
            .map(|(a, m)| Param::new(0x1_0000 + a * 256, 64, m))
            .collect();
        (normalize_params(&params), SimTime::from_ns(exec_ns), read, write)
    }
}

fn build_trace(specs: Vec<(Vec<Param>, SimTime, MemCost, MemCost)>) -> Trace {
    let tasks = specs
        .into_iter()
        .enumerate()
        .map(|(i, (params, exec, read, write))| TaskRecord {
            id: i as u64,
            fptr: 0xF00D,
            params,
            exec,
            read,
            write,
        })
        .collect();
    Trace::from_tasks("prop", tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any workload completes on any sane machine, conserving task counts
    /// and never exceeding structural capacities.
    #[test]
    fn machine_completes_and_conserves(
        specs in prop::collection::vec(task_strategy(), 1..120),
        workers in 1usize..24,
        depth in 1usize..4,
    ) {
        let trace = build_trace(specs);
        let mut cfg = MachineConfig::with_workers(workers);
        cfg.buffering_depth = depth;
        let n = trace.len() as u64;
        let r = simulate_trace(cfg, &trace).expect("must complete");
        prop_assert_eq!(r.tasks, n);
        prop_assert_eq!(r.write_tp.ops, n);
        prop_assert_eq!(r.handle_fin.ops, n);
        prop_assert!(r.pool.peak_occupancy <= 1024);
        prop_assert!(r.table.peak_occupancy <= 4096);
        // All work is accounted inside the makespan.
        let exec_total: SimTime = trace.tasks.iter().map(|t| t.exec).sum();
        prop_assert!(r.worker_exec == exec_total);
        prop_assert!(r.makespan * (workers as u64) >= exec_total);
    }

    /// Simulation is a pure function of (trace, config).
    #[test]
    fn machine_is_deterministic(
        specs in prop::collection::vec(task_strategy(), 1..60),
        workers in 1usize..16,
    ) {
        let trace = build_trace(specs);
        let a = simulate_trace(MachineConfig::with_workers(workers), &trace).unwrap();
        let b = simulate_trace(MachineConfig::with_workers(workers), &trace).unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.table.inserts, b.table.inserts);
    }

    /// Tight capacities stall but never wedge: the same workload completes
    /// on a minimal configuration with identical task counts.
    #[test]
    fn tiny_capacities_never_deadlock(
        specs in prop::collection::vec(task_strategy(), 1..80),
    ) {
        let trace = build_trace(specs);
        let mut cfg = MachineConfig::with_workers(3);
        cfg.nexus = NexusConfig {
            task_pool_entries: 8,
            params_per_td: 3,
            dep_table_entries: 32,
            kickoff_entries: 2,
            growable: false,
        };
        cfg.lists.tds_buffer = 2;
        cfg.lists.tds_sizes = 4;
        let r = simulate_trace(cfg, &trace).expect("tiny machine must still complete");
        prop_assert_eq!(r.tasks, trace.len() as u64);
        prop_assert!(r.pool.peak_occupancy <= 8);
    }

    /// More workers never increase the makespan (monotonicity of the
    /// round-robin machine under identical traces).
    #[test]
    fn more_workers_never_hurt_independent(
        n_tasks in 1u64..150,
        exec_ns in 100u64..20_000,
    ) {
        let tasks: Vec<TaskRecord> = (0..n_tasks)
            .map(|i| TaskRecord {
                id: i,
                fptr: 1,
                params: vec![Param::inout(0x100_000 + i * 64, 16)],
                exec: SimTime::from_ns(exec_ns),
                read: MemCost::None,
                write: MemCost::None,
            })
            .collect();
        let trace = Trace::from_tasks("ind", tasks);
        let m2 = simulate_trace(MachineConfig::with_workers(2), &trace).unwrap();
        let m8 = simulate_trace(MachineConfig::with_workers(8), &trace).unwrap();
        prop_assert!(m8.makespan <= m2.makespan);
    }
}
