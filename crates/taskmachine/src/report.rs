//! Simulation results and errors.

use nexuspp_core::pool::PoolStats;
use nexuspp_core::table::TableStats;
use nexuspp_desim::SimTime;

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A task needs more descriptors than the whole Task Pool — it can
    /// never be admitted ("the maximum number of inputs/outputs is still
    /// bounded by the size of the Task Pool"). Carries the task's trace id
    /// and descriptor need.
    TaskTooLarge {
        /// Trace id of the offending task.
        task: u64,
        /// Descriptors it would need.
        needed: usize,
        /// The pool's capacity.
        capacity: usize,
    },
    /// No event can make progress while work remains — a capacity deadlock
    /// (e.g. a Dependence Table too small for the in-flight working set).
    Deadlock {
        /// Simulated time at which progress stopped.
        at: SimTime,
        /// Tasks admitted but unfinished.
        in_flight: usize,
        /// Tasks completed before the wedge.
        completed: u64,
    },
    /// The baseline hardware rejected the workload (used by the
    /// Nexus-classic model, which cannot execute e.g. Gaussian
    /// elimination).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TaskTooLarge {
                task,
                needed,
                capacity,
            } => write!(
                f,
                "task {task} needs {needed} descriptors but the pool holds {capacity}"
            ),
            SimError::Deadlock {
                at,
                in_flight,
                completed,
            } => write!(
                f,
                "deadlock at {at}: {in_flight} tasks in flight, {completed} completed"
            ),
            SimError::Unsupported { reason } => write!(f, "unsupported workload: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-block activity summary.
#[derive(Debug, Clone, Default)]
pub struct BlockReport {
    /// Operations completed.
    pub ops: u64,
    /// Total busy time.
    pub busy: SimTime,
    /// Stall events (work available but blocked on capacity).
    pub stalls: u64,
}

impl BlockReport {
    /// Busy fraction of the makespan.
    pub fn utilization(&self, makespan: SimTime) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            self.busy / makespan
        }
    }
}

/// Everything a simulation run reports.
#[derive(Debug, Clone)]
pub struct Report {
    /// Workload label.
    pub name: String,
    /// Worker-core count.
    pub workers: usize,
    /// End-to-end simulated time (submission of the first task to
    /// write-back of the last output).
    pub makespan: SimTime,
    /// Tasks executed.
    pub tasks: u64,
    /// Simulation events processed (diagnostic).
    pub events: u64,
    /// Master-core busy time (prep + submission).
    pub master_busy: SimTime,
    /// Master-core submission stalls (TDs Sizes list full).
    pub master_stalls: u64,
    /// `Write TP` block activity.
    pub write_tp: BlockReport,
    /// `Check Deps` block activity.
    pub check_deps: BlockReport,
    /// `Schedule` block activity.
    pub schedule: BlockReport,
    /// `Send TDs` block activity.
    pub send_tds: BlockReport,
    /// `Handle Finished` block activity.
    pub handle_fin: BlockReport,
    /// Total worker-core execution time (Σ task exec).
    pub worker_exec: SimTime,
    /// Memory transfers that had to queue for a bank slot.
    pub mem_queued: u64,
    /// Peak concurrent memory transfers.
    pub mem_peak_waiters: usize,
    /// Task Pool statistics snapshot.
    pub pool: PoolStats,
    /// Dependence Table statistics snapshot.
    pub table: TableStats,
    /// High-water marks of the maestro FIFOs (name, peak, capacity).
    pub fifo_peaks: Vec<(&'static str, usize, usize)>,
    /// Sampled (time, completed-count) progress curve (every 64
    /// completions) — shows the wavefront ramp as achieved throughput.
    pub progress: Vec<(SimTime, u64)>,
}

impl Report {
    /// Mean worker utilization: Σ exec / (makespan × workers).
    pub fn worker_utilization(&self) -> f64 {
        if self.makespan.is_zero() || self.workers == 0 {
            0.0
        } else {
            self.worker_exec / (self.makespan * self.workers as u64)
        }
    }

    /// Task throughput in tasks per microsecond.
    pub fn tasks_per_us(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.tasks as f64 / self.makespan.as_us_f64()
        }
    }

    /// Instantaneous completion rates (tasks/µs) between progress samples
    /// — the time-domain view of the ramp effect.
    pub fn completion_rates(&self) -> Vec<(SimTime, f64)> {
        let mut out = Vec::with_capacity(self.progress.len());
        let mut prev = (SimTime::ZERO, 0u64);
        for &(t, n) in &self.progress {
            let dt = t.saturating_sub(prev.0);
            if !dt.is_zero() {
                out.push((t, (n - prev.1) as f64 / dt.as_us_f64()));
            }
            prev = (t, n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::TaskTooLarge {
            task: 5,
            needed: 9,
            capacity: 4,
        };
        assert!(e.to_string().contains("task 5"));
        let e = SimError::Deadlock {
            at: SimTime::from_us(3),
            in_flight: 2,
            completed: 10,
        };
        assert!(e.to_string().contains("deadlock"));
    }

    #[test]
    fn utilization_math() {
        let b = BlockReport {
            ops: 10,
            busy: SimTime::from_ns(250),
            stalls: 0,
        };
        assert!((b.utilization(SimTime::from_ns(1000)) - 0.25).abs() < 1e-12);
        assert_eq!(b.utilization(SimTime::ZERO), 0.0);
    }
}
