//! Closed-form bottleneck analysis of the Task Machine.
//!
//! The paper explains its curves qualitatively: "the speedup gain starts
//! to decrease because the master core … cannot generate tasks fast enough
//! to keep all worker cores busy, and due to limited memory bandwidth."
//! This module turns that reasoning into checked arithmetic: a pipeline of
//! servers (master, Maestro stages, worker pool, memory banks), each with
//! a per-task service time computed from the same configuration constants
//! the simulator uses. The steady-state task rate is the minimum stage
//! rate, and predicted speedup is that rate normalized by the single-core
//! rate.
//!
//! The integration tests require the discrete-event simulator to agree
//! with this model within a small tolerance on steady-state workloads —
//! a strong internal-consistency check: two independent implementations of
//! the same system model must tell the same story.

use crate::config::MachineConfig;
use nexuspp_desim::SimTime;
use nexuspp_hw::MemoryMode;
use nexuspp_trace::{MemCost, Trace};

/// Mean per-task demands extracted from a workload.
#[derive(Debug, Clone, Copy)]
pub struct TaskDemand {
    /// Mean execution time.
    pub exec: SimTime,
    /// Mean input-fetch time (trace times and byte volumes combined).
    pub read: SimTime,
    /// Mean write-back time.
    pub write: SimTime,
    /// Mean parameters per task.
    pub params: f64,
}

impl TaskDemand {
    /// Extract mean demands from a trace under a machine's memory model.
    pub fn from_trace(trace: &Trace, cfg: &MachineConfig) -> TaskDemand {
        let n = trace.len().max(1) as u64;
        let mem_time = |c: MemCost| match c {
            MemCost::None => SimTime::ZERO,
            MemCost::Time(t) => t,
            MemCost::Bytes(b) => cfg.memory.transfer_time(b),
        };
        let mut exec = SimTime::ZERO;
        let mut read = SimTime::ZERO;
        let mut write = SimTime::ZERO;
        let mut params = 0u64;
        for t in &trace.tasks {
            exec += t.exec;
            read += mem_time(t.read);
            write += mem_time(t.write);
            params += t.params.len() as u64;
        }
        TaskDemand {
            exec: exec / n,
            read: read / n,
            write: write / n,
            params: params as f64 / n as f64,
        }
    }
}

/// Per-stage service times and the resulting throughput prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Master-core serial time per task (prep + submission + staging).
    pub master: SimTime,
    /// Estimated busiest Maestro block time per task.
    pub maestro: SimTime,
    /// Per-worker pipeline period (buffered: stages overlap).
    pub core_period: SimTime,
    /// Memory-bank service demand per task (read + write slot holding).
    pub mem_per_task: SimTime,
    /// Memory slots available (usize::MAX when contention-free).
    pub mem_slots: usize,
    /// Worker count.
    pub workers: usize,
}

impl Prediction {
    /// Build a prediction for `demand` on `cfg`.
    pub fn new(demand: &TaskDemand, cfg: &MachineConfig) -> Prediction {
        let params = demand.params.ceil() as usize;
        let clk = cfg.nexus_clock;
        let words = 1 + params as u64;
        let master = cfg.master.prep_time
            + cfg.bus.submission_time(params, clk)
            + clk.cycles(cfg.blocks.getds_cycles_per_word * words);
        // Rough per-block service estimates: base cycles + one SRAM access
        // per parameter (insert or release) — the same constants the
        // simulator charges, minus chain effects.
        let per_param = cfg.sram.access_time(params as u64);
        let write_tp = clk.cycles(cfg.blocks.write_tp_base) + cfg.sram.access_time(1);
        let check = clk.cycles(cfg.blocks.check_deps_base) + per_param * 2;
        let schedule = clk.cycles(cfg.blocks.schedule_cycles);
        let send = clk.cycles(cfg.blocks.send_tds_base)
            + cfg.sram.access_time(1)
            + cfg.bus.td_transfer_time(params, clk);
        let fin = clk.cycles(cfg.blocks.handle_fin_base) + per_param * 3;
        let maestro = [write_tp, check, schedule, send, fin]
            .into_iter()
            .max()
            .expect("nonempty");
        // With buffering ≥ 2 the TC pipeline overlaps its stages, so a
        // worker's steady-state period is its slowest stage.
        let core_period = if cfg.buffering_depth >= 2 {
            demand.exec.max(demand.read).max(demand.write)
        } else {
            demand.exec + demand.read + demand.write
        };
        Prediction {
            master,
            maestro,
            core_period,
            mem_per_task: demand.read + demand.write,
            mem_slots: match cfg.memory.mode {
                MemoryMode::Contended { slots } => slots,
                MemoryMode::ContentionFree => usize::MAX,
            },
            workers: cfg.workers,
        }
    }

    /// Steady-state task rate of each stage, in tasks per second.
    fn stage_rates(&self) -> [f64; 4] {
        let rate = |t: SimTime, servers: f64| {
            if t.is_zero() {
                f64::INFINITY
            } else {
                servers / (t.ps() as f64 * 1e-12)
            }
        };
        [
            rate(self.master, 1.0),
            rate(self.maestro, 1.0),
            rate(self.core_period, self.workers as f64),
            if self.mem_slots == usize::MAX {
                f64::INFINITY
            } else {
                rate(self.mem_per_task, self.mem_slots as f64)
            },
        ]
    }

    /// Predicted sustained throughput in tasks/second.
    pub fn throughput(&self) -> f64 {
        self.stage_rates().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Which stage limits throughput.
    pub fn bottleneck(&self) -> &'static str {
        let rates = self.stage_rates();
        let min = self.throughput();
        const NAMES: [&str; 4] = ["master", "maestro", "workers", "memory"];
        for (name, r) in NAMES.iter().zip(rates) {
            if r == min {
                return name;
            }
        }
        unreachable!("minimum must match one stage")
    }

    /// Predicted speedup vs a single worker of the same family (whose rate
    /// is one task per `core_period`, matching the double-buffered
    /// single-core baseline).
    pub fn speedup(&self) -> f64 {
        let single = 1.0 / (self.core_period.ps() as f64 * 1e-12);
        self.throughput() / single.min(self.single_core_cap())
    }

    fn single_core_cap(&self) -> f64 {
        // A single worker is also bounded by master + maestro rates.
        let rates = self.stage_rates();
        rates[0]
            .min(rates[1])
            .min(1.0 / (self.core_period.ps() as f64 * 1e-12))
    }
}

/// Convenience: predict throughput-limited speedup for `trace` on `cfg`.
pub fn predict_speedup(trace: &Trace, cfg: &MachineConfig) -> Prediction {
    let demand = TaskDemand::from_trace(trace, cfg);
    Prediction::new(&demand, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    use nexuspp_trace::{Param, TaskRecord};

    fn independent(n: u64, exec_us: u64, read_us: u64) -> Trace {
        let tasks = (0..n)
            .map(|i| TaskRecord {
                id: i,
                fptr: 1,
                params: vec![
                    Param::input(0x10_0000 + i * 128, 16),
                    Param::input(0x10_0040 + i * 128, 16),
                    Param::inout(0x10_0080 + i * 128, 16),
                ],
                exec: SimTime::from_us(exec_us),
                read: if read_us == 0 {
                    MemCost::None
                } else {
                    MemCost::Time(SimTime::from_us(read_us))
                },
                write: MemCost::None,
            })
            .collect();
        Trace::from_tasks("ind", tasks)
    }

    #[test]
    fn demand_extraction() {
        let cfg = MachineConfig::with_workers(4);
        let d = TaskDemand::from_trace(&independent(10, 10, 5), &cfg);
        assert_eq!(d.exec, SimTime::from_us(10));
        assert_eq!(d.read, SimTime::from_us(5));
        assert!((d.params - 3.0).abs() < 1e-9);
    }

    #[test]
    fn few_workers_are_worker_bound() {
        let trace = independent(100, 10, 0);
        let p = predict_speedup(&trace, &MachineConfig::with_workers(4));
        assert_eq!(p.bottleneck(), "workers");
        assert!((p.speedup() - 4.0).abs() < 0.2, "speedup {}", p.speedup());
    }

    #[test]
    fn many_workers_hit_master() {
        let trace = independent(100, 10, 0);
        let p = predict_speedup(&trace, &MachineConfig::with_workers(512).contention_free());
        assert_eq!(p.bottleneck(), "master");
        assert!(p.speedup() < 512.0);
    }

    #[test]
    fn memory_ceiling_detected() {
        // 64 workers × 6 µs memory per task vs 32 slots and 2 µs exec: the
        // memory pool is the constraint.
        let trace = independent(100, 2, 6);
        let p = predict_speedup(&trace, &MachineConfig::with_workers(64));
        assert_eq!(p.bottleneck(), "memory");
    }

    #[test]
    fn contention_free_removes_memory_ceiling() {
        let trace = independent(100, 2, 6);
        let p = predict_speedup(&trace, &MachineConfig::with_workers(64).contention_free());
        assert_ne!(p.bottleneck(), "memory");
    }
}
