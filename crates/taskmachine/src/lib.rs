//! # nexuspp-taskmachine — the Task Machine full-system simulator
//!
//! "Nexus++ was simulated using the Task Machine, a SystemC simulator of a
//! task-based, trace-driven multicore system." This crate is that
//! simulator, rebuilt on the [`nexuspp_desim`] event kernel:
//!
//! * [`config`] — every Table IV parameter, plus the variants used in §V
//!   (contention-free memory, zero task-prep delay, buffering-depth and
//!   structure-size sweeps),
//! * [`machine`] — the model itself: master core, bus, Maestro pipeline
//!   blocks around the [`nexuspp_core`] dependency engine, per-core Task
//!   Controllers, banked memory,
//! * [`report`] — makespans, per-block utilization, contention and
//!   occupancy statistics,
//! * [`sweep`] — helpers for the paper's experiments: speedup curves over
//!   worker counts and design-space sweeps over structure sizes,
//! * [`analytic`] — closed-form bottleneck analysis (master rate, Maestro
//!   stage rates, worker pool, memory banks) that the simulator must agree
//!   with — the paper's §V/§VI reasoning as checked arithmetic,
//! * [`multimaestro`] — the scaled-out variant: S Maestro shards over an
//!   address-partitioned [`nexuspp_shard`] engine, fed through a crossbar
//!   of round-robin arbiters with batched submissions, for shard-scaling
//!   studies the single-Maestro model cannot express.

pub mod analytic;
pub mod config;
pub mod machine;
pub mod multimaestro;
pub mod report;
pub mod sweep;

pub use config::{BlockTimings, ListConfig, MachineConfig, MasterConfig};
pub use machine::{simulate, simulate_trace, TaskMachine};
pub use multimaestro::{simulate_sharded, MultiMaestroConfig, MultiMaestroReport};
pub use report::{BlockReport, Report, SimError};
