//! The Task Machine: a discrete-event model of a multicore with Nexus++.
//!
//! Reproduces the paper's SystemC simulator at the same level of detail: a
//! Master Core prepares and submits variable-length Task Descriptors over
//! the on-chip bus; the Task Maestro's pipelined blocks (`Write TP`,
//! `Check Deps`, `Schedule`, `Send TDs`, `Handle Finished`) communicate
//! through bounded FIFO lists and operate on the Task Pool / Dependence
//! Table with per-access 2 ns costs; each worker core's Task Controller
//! runs the 4-stage GetTD → GetInputs → RunTask → PutOutputs pipeline with
//! configurable buffering depth; and off-chip memory admits at most 32
//! concurrent transfers ("task execution is simply modeled by waiting for
//! a certain time; memory accesses delays are modeled in the same way and
//! memory contention is also modeled").
//!
//! The model is a single-threaded deterministic event simulation: all
//! state mutation happens at operation *start*, commits to downstream
//! FIFOs happen at operation *end* (the block's service time), matching
//! the one-operation-at-a-time behaviour of the hardware blocks.

use crate::config::MachineConfig;
use crate::report::{BlockReport, Report, SimError};
use nexuspp_core::engine::{CheckProgress, DependencyEngine};
use nexuspp_core::pool::{PoolError, TdIndex};
use nexuspp_desim::stats::BusyTracker;
use nexuspp_desim::{Fifo, RoundRobinArbiter, Scheduler, SimTime, SlotGrant, SlotPool};
use nexuspp_hw::MemoryMode;
use nexuspp_trace::{MemCost, TaskRecord, TraceSource};
use std::collections::VecDeque;

/// Completion events. All inter-block "1-bit signals" are modeled as free
/// direct polls; only time-consuming operations appear here.
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // the variants name the paper's blocks
enum Ev {
    MasterPrepDone,
    MasterSubmitDone,
    WriteTpDone,
    CheckDepsDone,
    ScheduleDone,
    SendTdsDone,
    HandleFinDone,
    TcReadDone(u32),
    TcExecDone(u32),
    TcWriteDone(u32),
}

#[derive(Debug)]
enum MasterState {
    Idle,
    Prepping(TaskRecord),
    /// Prep done but the `TDs Sizes` list is full — "the Master Core
    /// stalls and stops sending new Task Descriptors".
    WaitSubmit(TaskRecord),
    Submitting(TaskRecord),
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckOutcome {
    Ready,
    NotReady,
    Stalled,
}

/// One task occupying a memory-touching TC stage.
#[derive(Debug)]
struct StageTask {
    td: TdIndex,
    rec: TaskRecord,
    /// Transfer duration once granted.
    dur: SimTime,
    /// Waiting for a memory bank slot (queued in the [`SlotPool`]).
    waiting: bool,
}

/// Per-worker Task Controller state (the 4-stage pipeline).
#[derive(Debug, Default)]
struct Tc {
    /// Descriptors received from `Send TDs`, awaiting input fetch.
    fetched: VecDeque<(TdIndex, TaskRecord)>,
    /// `Get Inputs` stage.
    read_stage: Option<StageTask>,
    /// Inputs fetched, awaiting the core.
    run_queue: VecDeque<(TdIndex, TaskRecord)>,
    /// `Run Task` stage (the worker core itself).
    running: Option<(TdIndex, TaskRecord)>,
    /// Executed, awaiting write-back.
    out_queue: VecDeque<(TdIndex, TaskRecord)>,
    /// `Put Outputs` stage.
    write_stage: Option<StageTask>,
    /// Completed tasks whose 1-bit task-finished signal is raised.
    fin_signal: u32,
}

/// The simulator.
pub struct TaskMachine<'s> {
    cfg: MachineConfig,
    source: &'s mut dyn TraceSource,
    sched: Scheduler<Ev>,
    engine: DependencyEngine,
    /// In-flight trace records, indexed by Task Pool slot.
    records: Vec<Option<TaskRecord>>,

    // Master core.
    master: MasterState,
    master_busy: SimTime,
    master_stalls: u64,
    /// Shared-bus serialization point (used when `cfg.shared_bus`).
    bus_free_at: SimTime,

    // Maestro FIFOs.
    tds_buffer: Fifo<TaskRecord>,
    tds_sizes: Fifo<u8>,
    new_tasks: Fifo<TdIndex>,
    global_ready: Fifo<TdIndex>,
    worker_ids: Fifo<u32>,

    // Maestro blocks.
    write_tp_busy: Option<TdIndex>,
    write_tp: BusyTracker,
    check_busy: Option<(TdIndex, CheckOutcome)>,
    check_parked: Option<TdIndex>,
    check_pulse_at_start: u64,
    check_deps: BusyTracker,
    sched_busy: Option<(TdIndex, u32)>,
    schedule: BusyTracker,
    send_busy: Option<(u32, TdIndex)>,
    send_tds: BusyTracker,
    send_arb: RoundRobinArbiter,
    fin_busy: Option<(u32, Vec<TdIndex>)>,
    handle_fin: BusyTracker,
    fin_arb: RoundRobinArbiter,
    /// Incremented whenever `Handle Finished` frees table/pool space
    /// (wake-up edge for parked `Check Deps` / `Write TP`).
    free_pulse: u64,

    // Per-core structures.
    rdy_lists: Vec<Fifo<TdIndex>>,
    fin_lists: Vec<Fifo<TdIndex>>,
    tcs: Vec<Tc>,

    // Memory.
    mem_slots: SlotPool,

    // Progress accounting.
    submitted: u64,
    completed: u64,
    worker_exec: SimTime,
    last_completion: SimTime,
    /// (time, completed-count) samples, every `PROGRESS_STRIDE` finishes.
    progress: Vec<(SimTime, u64)>,
    error: Option<SimError>,
}

/// Completion-count sampling stride for the progress curve.
const PROGRESS_STRIDE: u64 = 64;

impl<'s> TaskMachine<'s> {
    /// Build a machine over a task source.
    pub fn new(cfg: MachineConfig, source: &'s mut dyn TraceSource) -> Self {
        cfg.validate();
        let workers = cfg.workers;
        let depth = cfg.buffering_depth;
        // Lists that hold task IDs can never exceed the pool's entry count;
        // cap them accordingly when the pool is swept larger than Table IV.
        let id_list_cap = |c: usize| c.max(cfg.nexus.task_pool_entries);
        let mut worker_ids = Fifo::new("WorkerCoresIDs", workers * depth);
        for c in 0..workers as u32 {
            for _ in 0..depth {
                worker_ids.push_expect(c);
            }
        }
        let mem_slots = match cfg.memory.mode {
            MemoryMode::Contended { slots } => SlotPool::new("mem-banks", slots),
            // Effectively unlimited: every transfer gets a slot.
            MemoryMode::ContentionFree => SlotPool::new("mem-banks", usize::MAX >> 1),
        };
        TaskMachine {
            source,
            sched: Scheduler::new(),
            engine: DependencyEngine::new(&cfg.nexus),
            records: (0..cfg.nexus.task_pool_entries).map(|_| None).collect(),
            master: MasterState::Idle,
            master_busy: SimTime::ZERO,
            master_stalls: 0,
            bus_free_at: SimTime::ZERO,
            tds_buffer: Fifo::new("TDsBuffer", cfg.lists.tds_buffer),
            tds_sizes: Fifo::new("TDsSizes", cfg.lists.tds_sizes),
            new_tasks: Fifo::new("NewTasks", id_list_cap(cfg.lists.new_tasks)),
            global_ready: Fifo::new("GlobalReadyTasks", id_list_cap(cfg.lists.global_ready)),
            worker_ids,
            write_tp_busy: None,
            write_tp: BusyTracker::new(),
            check_busy: None,
            check_parked: None,
            check_pulse_at_start: 0,
            check_deps: BusyTracker::new(),
            sched_busy: None,
            schedule: BusyTracker::new(),
            send_busy: None,
            send_tds: BusyTracker::new(),
            send_arb: RoundRobinArbiter::new(workers),
            fin_busy: None,
            handle_fin: BusyTracker::new(),
            fin_arb: RoundRobinArbiter::new(workers),
            free_pulse: 0,
            rdy_lists: (0..workers)
                .map(|_| Fifo::new("CxRdyTasks", depth))
                .collect(),
            fin_lists: (0..workers)
                .map(|_| Fifo::new("CxFinTasks", depth))
                .collect(),
            tcs: (0..workers).map(|_| Tc::default()).collect(),
            mem_slots,
            submitted: 0,
            completed: 0,
            worker_exec: SimTime::ZERO,
            last_completion: SimTime::ZERO,
            progress: Vec::new(),
            error: None,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Master core
    // ------------------------------------------------------------------

    fn poll_master(&mut self) {
        if !matches!(self.master, MasterState::Idle) {
            return;
        }
        match self.source.next_task() {
            Some(rec) => {
                let prep = self.cfg.master.prep_time;
                self.master_busy += prep;
                self.master = MasterState::Prepping(rec);
                self.sched.schedule(prep, Ev::MasterPrepDone);
            }
            None => self.master = MasterState::Done,
        }
    }

    fn on_master_prep_done(&mut self) {
        let rec = match std::mem::replace(&mut self.master, MasterState::Idle) {
            MasterState::Prepping(r) => r,
            other => panic!("master prep done in state {other:?}"),
        };
        if self.tds_sizes.is_full() || self.tds_buffer.is_full() {
            self.master_stalls += 1;
            self.master = MasterState::WaitSubmit(rec);
        } else {
            self.start_submission(rec);
        }
    }

    /// Charge the (possibly shared) bus and return the submission delay
    /// from *now* until the transfer completes.
    fn bus_occupy(&mut self, duration: SimTime) -> SimTime {
        if self.cfg.shared_bus {
            let now = self.sched.now();
            let start = now.max(self.bus_free_at);
            self.bus_free_at = start + duration;
            (start - now) + duration
        } else {
            duration
        }
    }

    fn start_submission(&mut self, rec: TaskRecord) {
        // Bus transfer plus the Get TDs block staging the descriptor into
        // the TDs Buffer; the master's transaction spans both.
        let words = 1 + rec.params.len() as u64;
        let dur = self
            .cfg
            .bus
            .submission_time(rec.params.len(), self.cfg.nexus_clock)
            + self
                .cfg
                .nexus_clock
                .cycles(self.cfg.blocks.getds_cycles_per_word * words);
        self.master_busy += dur;
        let delay = self.bus_occupy(dur);
        self.master = MasterState::Submitting(rec);
        self.sched.schedule(delay, Ev::MasterSubmitDone);
    }

    fn on_master_submit_done(&mut self) {
        let rec = match std::mem::replace(&mut self.master, MasterState::Idle) {
            MasterState::Submitting(r) => r,
            other => panic!("master submit done in state {other:?}"),
        };
        self.submitted += 1;
        let n_params = rec.params.len().min(255) as u8;
        self.tds_buffer.push_expect(rec);
        self.tds_sizes.push_expect(n_params);
        self.poll_write_tp();
        self.poll_master();
    }

    /// Re-poll a master stalled on a full `TDs Sizes` list (called when
    /// `Write TP` drains it).
    fn wake_master(&mut self) {
        if matches!(self.master, MasterState::WaitSubmit(_))
            && !self.tds_sizes.is_full()
            && !self.tds_buffer.is_full()
        {
            let rec = match std::mem::replace(&mut self.master, MasterState::Idle) {
                MasterState::WaitSubmit(r) => r,
                _ => unreachable!(),
            };
            self.start_submission(rec);
        }
    }

    // ------------------------------------------------------------------
    // Write TP
    // ------------------------------------------------------------------

    fn poll_write_tp(&mut self) {
        if self.write_tp_busy.is_some() || self.error.is_some() {
            return;
        }
        let Some(rec) = self.tds_buffer.peek() else {
            return;
        };
        let needed = self.engine.pool().tds_needed(rec.params.len());
        if needed > self.cfg.nexus.task_pool_entries {
            self.error = Some(SimError::TaskTooLarge {
                task: rec.id,
                needed,
                capacity: self.cfg.nexus.task_pool_entries,
            });
            return;
        }
        if self.engine.pool().free_count() < needed {
            self.write_tp.record_stall();
            return; // re-polled on HandleFinDone
        }
        self.tds_sizes.pop();
        let rec = self.tds_buffer.pop().expect("peeked above");
        let (td, cost) = match self.engine.admit(rec.fptr, rec.id, rec.params.clone()) {
            Ok(v) => v,
            Err(PoolError::PoolFull { .. } | PoolError::TaskTooLarge { .. }) => {
                unreachable!("capacity checked above")
            }
        };
        self.records[td.0 as usize] = Some(rec);
        let dur = self.cfg.nexus_clock.cycles(self.cfg.blocks.write_tp_base)
            + self.cfg.sram.access_time(cost.total());
        self.write_tp.record_busy(dur);
        self.write_tp_busy = Some(td);
        self.sched.schedule(dur, Ev::WriteTpDone);
        self.wake_master();
    }

    fn on_write_tp_done(&mut self) {
        let td = self.write_tp_busy.take().expect("WriteTpDone while idle");
        if self.cfg.fast_independent_queue && self.engine.pool().get(td).params.is_empty() {
            // Future-work fast path: a parameterless task cannot conflict;
            // enqueue it ready without a Check Deps pass.
            self.engine.mark_trivially_ready(td);
            self.global_ready.push_expect(td);
            self.poll_schedule();
        } else {
            self.new_tasks.push_expect(td);
            self.poll_check_deps();
        }
        self.poll_write_tp();
    }

    // ------------------------------------------------------------------
    // Check Deps
    // ------------------------------------------------------------------

    fn poll_check_deps(&mut self) {
        if self.check_busy.is_some() || self.check_parked.is_some() {
            return;
        }
        let Some(td) = self.new_tasks.pop() else {
            return;
        };
        self.start_check(td);
    }

    fn start_check(&mut self, td: TdIndex) {
        self.check_pulse_at_start = self.free_pulse;
        let (outcome, cost) = match self.engine.check(td) {
            CheckProgress::Done { ready, cost } => (
                if ready {
                    CheckOutcome::Ready
                } else {
                    CheckOutcome::NotReady
                },
                cost,
            ),
            CheckProgress::Stalled { cost } => {
                self.check_deps.record_stall();
                (CheckOutcome::Stalled, cost)
            }
        };
        let dur = self.cfg.nexus_clock.cycles(self.cfg.blocks.check_deps_base)
            + self.cfg.sram.access_time(cost.total());
        self.check_deps.record_busy(dur);
        self.check_busy = Some((td, outcome));
        self.sched.schedule(dur, Ev::CheckDepsDone);
    }

    fn on_check_deps_done(&mut self) {
        let (td, outcome) = self.check_busy.take().expect("CheckDepsDone while idle");
        match outcome {
            CheckOutcome::Ready => {
                self.global_ready.push_expect(td);
                self.poll_schedule();
                self.poll_check_deps();
            }
            CheckOutcome::NotReady => self.poll_check_deps(),
            CheckOutcome::Stalled => {
                if self.free_pulse != self.check_pulse_at_start {
                    // Space was freed while we were busy: retry now.
                    self.start_check(td);
                } else {
                    self.check_parked = Some(td);
                }
            }
        }
    }

    /// Wake a parked `Check Deps` after `Handle Finished` freed space.
    fn wake_check_deps(&mut self) {
        if self.check_busy.is_none() {
            if let Some(td) = self.check_parked.take() {
                self.start_check(td);
            }
        }
    }

    // ------------------------------------------------------------------
    // Schedule
    // ------------------------------------------------------------------

    fn poll_schedule(&mut self) {
        if self.sched_busy.is_some() {
            return;
        }
        if self.global_ready.is_empty() || self.worker_ids.is_empty() {
            return;
        }
        let td = self.global_ready.pop().expect("checked");
        let core = self.worker_ids.pop().expect("checked");
        let dur = self.cfg.nexus_clock.cycles(self.cfg.blocks.schedule_cycles);
        self.schedule.record_busy(dur);
        self.sched_busy = Some((td, core));
        self.sched.schedule(dur, Ev::ScheduleDone);
    }

    fn on_schedule_done(&mut self) {
        let (td, core) = self.sched_busy.take().expect("ScheduleDone while idle");
        self.rdy_lists[core as usize].push_expect(td);
        self.poll_send_tds();
        self.poll_schedule();
    }

    // ------------------------------------------------------------------
    // Send TDs
    // ------------------------------------------------------------------

    fn poll_send_tds(&mut self) {
        if self.send_busy.is_some() {
            return;
        }
        let rdy = &self.rdy_lists;
        let Some(core) = self.send_arb.grant(|c| !rdy[c].is_empty()) else {
            return;
        };
        let td = self.rdy_lists[core].pop().expect("granted on non-empty");
        let read_cost = self.engine.pool().read_params_cost(td);
        let n_params = self.engine.pool().get(td).params.len();
        let transfer = self
            .cfg
            .bus
            .td_transfer_time(n_params, self.cfg.nexus_clock);
        let dur = self.cfg.nexus_clock.cycles(self.cfg.blocks.send_tds_base)
            + self.cfg.sram.access_time(read_cost.total())
            + self.bus_occupy(transfer);
        self.send_tds.record_busy(dur);
        self.send_busy = Some((core as u32, td));
        self.fin_lists[core].push_expect(td);
        self.sched.schedule(dur, Ev::SendTdsDone);
    }

    fn on_send_tds_done(&mut self) {
        let (core, td) = self.send_busy.take().expect("SendTdsDone while idle");
        let core = core as usize;
        let rec = self.records[td.0 as usize]
            .take()
            .expect("record must be in flight");
        self.tcs[core].fetched.push_back((td, rec));
        self.poll_tc(core);
        self.poll_send_tds();
    }

    // ------------------------------------------------------------------
    // Handle Finished
    // ------------------------------------------------------------------

    fn poll_handle_fin(&mut self) {
        if self.fin_busy.is_some() {
            return;
        }
        let tcs = &self.tcs;
        let Some(core) = self.fin_arb.grant(|c| tcs[c].fin_signal > 0) else {
            return;
        };
        self.tcs[core].fin_signal -= 1;
        let td = self.fin_lists[core]
            .pop()
            .expect("finished signal without FinTasks entry");
        let fin = self.engine.finish(td);
        self.free_pulse += 1;
        let dur = self.cfg.nexus_clock.cycles(self.cfg.blocks.handle_fin_base)
            + self.cfg.sram.access_time(fin.cost.total());
        self.handle_fin.record_busy(dur);
        self.fin_busy = Some((core as u32, fin.newly_ready));
        self.sched.schedule(dur, Ev::HandleFinDone);
    }

    fn on_handle_fin_done(&mut self) {
        let (core, newly_ready) = self.fin_busy.take().expect("HandleFinDone while idle");
        self.completed += 1;
        self.last_completion = self.sched.now();
        if self.completed.is_multiple_of(PROGRESS_STRIDE) {
            self.progress.push((self.last_completion, self.completed));
        }
        for td in newly_ready {
            self.global_ready.push_expect(td);
        }
        self.worker_ids.push_expect(core);
        self.wake_check_deps();
        self.poll_write_tp();
        self.poll_schedule();
        self.poll_handle_fin();
    }

    // ------------------------------------------------------------------
    // Task Controllers + memory
    // ------------------------------------------------------------------

    fn mem_duration(&self, cost: MemCost) -> SimTime {
        match cost {
            MemCost::None => SimTime::ZERO,
            MemCost::Time(t) => t,
            MemCost::Bytes(b) => self.cfg.memory.transfer_time(b),
        }
    }

    /// Begin a memory transfer for a TC stage, acquiring a bank slot.
    /// Returns the stage task to store (waiting or in flight).
    fn start_mem(&mut self, core: usize, phase: u32, st: StageTask) -> StageTask {
        let token = (core as u64) * 2 + phase as u64;
        match self.mem_slots.acquire(token) {
            SlotGrant::Granted => {
                let ev = if phase == 0 {
                    Ev::TcReadDone(core as u32)
                } else {
                    Ev::TcWriteDone(core as u32)
                };
                self.sched.schedule(st.dur, ev);
                StageTask {
                    waiting: false,
                    ..st
                }
            }
            SlotGrant::Queued => StageTask {
                waiting: true,
                ..st
            },
        }
    }

    /// Release a memory slot and, if a queued waiter inherits it, start
    /// that waiter's transfer.
    fn release_mem(&mut self) {
        if let Some(token) = self.mem_slots.release() {
            let core = (token / 2) as usize;
            let phase = (token % 2) as u32;
            let (dur, ev) = if phase == 0 {
                let st = self.tcs[core]
                    .read_stage
                    .as_mut()
                    .expect("queued reader vanished");
                debug_assert!(st.waiting);
                st.waiting = false;
                (st.dur, Ev::TcReadDone(core as u32))
            } else {
                let st = self.tcs[core]
                    .write_stage
                    .as_mut()
                    .expect("queued writer vanished");
                debug_assert!(st.waiting);
                st.waiting = false;
                (st.dur, Ev::TcWriteDone(core as u32))
            };
            self.sched.schedule(dur, ev);
        }
    }

    fn poll_tc(&mut self, core: usize) {
        // Get Inputs: start fetching the next buffered task.
        loop {
            if self.tcs[core].read_stage.is_some() {
                break;
            }
            let Some((td, rec)) = self.tcs[core].fetched.pop_front() else {
                break;
            };
            let dur = self.mem_duration(rec.read);
            if dur.is_zero() {
                self.tcs[core].run_queue.push_back((td, rec));
                continue;
            }
            let st = StageTask {
                td,
                rec,
                dur,
                waiting: false,
            };
            let st = self.start_mem(core, 0, st);
            self.tcs[core].read_stage = Some(st);
            break;
        }
        // Run Task: the worker core executes.
        if self.tcs[core].running.is_none() {
            if let Some((td, rec)) = self.tcs[core].run_queue.pop_front() {
                let exec = rec.exec;
                self.tcs[core].running = Some((td, rec));
                self.sched.schedule(exec, Ev::TcExecDone(core as u32));
            }
        }
        // Put Outputs: write results back.
        loop {
            if self.tcs[core].write_stage.is_some() {
                break;
            }
            let Some((td, rec)) = self.tcs[core].out_queue.pop_front() else {
                break;
            };
            let dur = self.mem_duration(rec.write);
            if dur.is_zero() {
                self.tcs[core].fin_signal += 1;
                self.poll_handle_fin();
                continue;
            }
            let st = StageTask {
                td,
                rec,
                dur,
                waiting: false,
            };
            let st = self.start_mem(core, 1, st);
            self.tcs[core].write_stage = Some(st);
            break;
        }
    }

    fn on_tc_read_done(&mut self, core: usize) {
        let st = self.tcs[core]
            .read_stage
            .take()
            .expect("read done on empty stage");
        debug_assert!(!st.waiting);
        self.release_mem();
        self.tcs[core].run_queue.push_back((st.td, st.rec));
        self.poll_tc(core);
    }

    fn on_tc_exec_done(&mut self, core: usize) {
        let (td, rec) = self.tcs[core].running.take().expect("exec done while idle");
        self.worker_exec += rec.exec;
        self.tcs[core].out_queue.push_back((td, rec));
        self.poll_tc(core);
    }

    fn on_tc_write_done(&mut self, core: usize) {
        let st = self.tcs[core]
            .write_stage
            .take()
            .expect("write done on empty stage");
        debug_assert!(!st.waiting);
        self.release_mem();
        self.tcs[core].fin_signal += 1;
        self.poll_handle_fin();
        self.poll_tc(core);
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Run the simulation to completion.
    pub fn run(mut self) -> Result<Report, SimError> {
        let name = "trace".to_string();
        self.poll_master();
        while let Some((_, ev)) = self.sched.pop() {
            if self.error.is_some() {
                break;
            }
            match ev {
                Ev::MasterPrepDone => self.on_master_prep_done(),
                Ev::MasterSubmitDone => self.on_master_submit_done(),
                Ev::WriteTpDone => self.on_write_tp_done(),
                Ev::CheckDepsDone => self.on_check_deps_done(),
                Ev::ScheduleDone => self.on_schedule_done(),
                Ev::SendTdsDone => self.on_send_tds_done(),
                Ev::HandleFinDone => self.on_handle_fin_done(),
                Ev::TcReadDone(c) => self.on_tc_read_done(c as usize),
                Ev::TcExecDone(c) => self.on_tc_exec_done(c as usize),
                Ev::TcWriteDone(c) => self.on_tc_write_done(c as usize),
            }
        }
        if let Some(e) = self.error {
            return Err(e);
        }
        let all_drained = matches!(self.master, MasterState::Done)
            && self.completed == self.submitted
            && self.engine.in_flight() == 0
            && self.tds_buffer.is_empty();
        if !all_drained {
            return Err(SimError::Deadlock {
                at: self.sched.now(),
                in_flight: self.engine.in_flight() + self.tds_buffer.len(),
                completed: self.completed,
            });
        }
        let fifo_peaks = vec![
            (
                self.tds_sizes.name(),
                self.tds_sizes.high_water(),
                self.tds_sizes.capacity(),
            ),
            (
                self.new_tasks.name(),
                self.new_tasks.high_water(),
                self.new_tasks.capacity(),
            ),
            (
                self.global_ready.name(),
                self.global_ready.high_water(),
                self.global_ready.capacity(),
            ),
            (
                self.worker_ids.name(),
                self.worker_ids.high_water(),
                self.worker_ids.capacity(),
            ),
        ];
        let block = |b: &BusyTracker| BlockReport {
            ops: b.ops(),
            busy: b.busy_time(),
            stalls: b.stalls(),
        };
        Ok(Report {
            name,
            workers: self.cfg.workers,
            makespan: self.last_completion,
            tasks: self.completed,
            events: self.sched.events_processed(),
            master_busy: self.master_busy,
            master_stalls: self.master_stalls,
            write_tp: block(&self.write_tp),
            check_deps: block(&self.check_deps),
            schedule: block(&self.schedule),
            send_tds: block(&self.send_tds),
            handle_fin: block(&self.handle_fin),
            worker_exec: self.worker_exec,
            mem_queued: self.mem_slots.queued_total(),
            mem_peak_waiters: self.mem_slots.high_water_waiters(),
            pool: self.engine.pool().stats().clone(),
            table: self.engine.table().stats().clone(),
            fifo_peaks,
            progress: self.progress,
        })
    }
}

/// Convenience: simulate `source` under `cfg`.
pub fn simulate(cfg: MachineConfig, source: &mut dyn TraceSource) -> Result<Report, SimError> {
    TaskMachine::new(cfg, source).run()
}

/// Convenience: simulate an in-memory trace under `cfg`.
pub fn simulate_trace(
    cfg: MachineConfig,
    trace: &nexuspp_trace::Trace,
) -> Result<Report, SimError> {
    let mut src = trace.clone().into_source();
    let mut report = simulate(cfg, &mut src)?;
    report.name = trace.name.clone();
    Ok(report)
}
