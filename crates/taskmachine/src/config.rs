//! Task Machine configuration (Table IV).
//!
//! Every parameter of the paper's simulation environment is configurable,
//! mirroring its claim that "the Task Machine is a fully configurable
//! system". Defaults reproduce Table IV: 2 GHz cores, 500 MHz Nexus++,
//! 2 ns on-chip access, 12 ns/128 B off-chip with 32 banks, 1K-entry Task
//! Pool, 4K-entry Dependence Table, double buffering, 30 ns task
//! preparation on the master core.

use nexuspp_core::NexusConfig;
use nexuspp_desim::clock::NEXUS_CLOCK_MHZ;
use nexuspp_desim::{Clock, SimTime};
use nexuspp_hw::{BusConfig, MemoryConfig, SramTiming};

/// Master-core modeling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterConfig {
    /// Task-preparation latency before each submission ("the task
    /// preparation was set to 30 ns"). The 221× headline experiment sets
    /// this to zero ("when disabling task preparation delay").
    pub prep_time: SimTime,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            prep_time: SimTime::from_ns(30),
        }
    }
}

/// FIFO list capacities in entries (Table IV gives them in bytes; divided
/// by the 1- or 2-byte element sizes they hold 1K entries each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListConfig {
    /// `TDs Buffer` capacity in descriptors (the staging area between the
    /// `Get TDs` block and `Write TP`; not sized in the paper — 16 is our
    /// documented choice, small enough not to extend the task window).
    pub tds_buffer: usize,
    /// `TDs Sizes` list (1 KB of 1-byte sizes → 1024).
    pub tds_sizes: usize,
    /// `New Tasks` list (2 KB of 2-byte IDs → 1024).
    pub new_tasks: usize,
    /// `Global Ready Tasks` list (2 KB of 2-byte IDs → 1024).
    pub global_ready: usize,
}

impl Default for ListConfig {
    fn default() -> Self {
        ListConfig {
            tds_buffer: 16,
            tds_sizes: 1024,
            new_tasks: 1024,
            global_ready: 1024,
        }
    }
}

/// Per-block service-time constants, in Nexus++ cycles (2 ns each). Table
/// accesses are charged on top at [`SramTiming::access`] per touch,
/// reproducing "the on-chip access time multiplied by the number of
/// lookups". The bases model each block's fixed pipeline overhead
/// (reading its trigger FIFO, writing its output FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTimings {
    /// `Write TP` fixed cycles per task.
    pub write_tp_base: u64,
    /// `Check Deps` fixed cycles per task.
    pub check_deps_base: u64,
    /// `Schedule` cycles per task (pop two FIFOs, write one).
    pub schedule_cycles: u64,
    /// `Send TDs` fixed cycles per task (request scan + FinTasks write),
    /// on top of the Task-Pool read and the descriptor transfer.
    pub send_tds_base: u64,
    /// `Handle Finished` fixed cycles per task (signal scan, FinTasks pop,
    /// free-index write-back), on top of table accesses.
    pub handle_fin_base: u64,
    /// `Get TDs` staging cost in cycles per received 8-byte word: the
    /// block "receives variable-length Task Descriptors … and writes them
    /// to the TDs Buffer"; the master's submission transaction completes
    /// only once the descriptor is staged.
    pub getds_cycles_per_word: u64,
}

impl Default for BlockTimings {
    fn default() -> Self {
        BlockTimings {
            write_tp_base: 2,
            check_deps_base: 2,
            schedule_cycles: 3,
            send_tds_base: 3,
            handle_fin_base: 6,
            getds_cycles_per_word: 2,
        }
    }
}

/// Full Task Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Worker cores (the master core is additional).
    pub workers: usize,
    /// Nexus++ structure capacities.
    pub nexus: NexusConfig,
    /// Task-buffering depth per worker ("double buffering" = 2; the
    /// `Worker Cores IDs` list initially holds each core ID repeated
    /// `buffering_depth` times).
    pub buffering_depth: usize,
    /// On-chip bus / submission model.
    pub bus: BusConfig,
    /// Off-chip memory model.
    pub memory: MemoryConfig,
    /// On-chip SRAM timing.
    pub sram: SramTiming,
    /// Nexus++ clock (500 MHz).
    pub nexus_clock: Clock,
    /// Master-core model.
    pub master: MasterConfig,
    /// FIFO capacities.
    pub lists: ListConfig,
    /// Per-block fixed costs.
    pub blocks: BlockTimings,
    /// Serialize master→Maestro submissions and Maestro→TC descriptor
    /// transfers on one shared bus (ablation knob; the default models
    /// separate point-to-point links as Figure 1 draws them).
    pub shared_bus: bool,
    /// Fast independent-task queue (the paper's future-work note, after
    /// Carbon): descriptors with no parameters bypass `Check Deps` and go
    /// straight to the Global Ready Tasks list. Off by default — the paper
    /// evaluates without it.
    pub fast_independent_queue: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            workers: 8,
            nexus: NexusConfig::default(),
            buffering_depth: 2,
            // The evaluation model uses the bandwidth-accurate submission
            // cost (2 cycles per 8-byte word at 2 GB/s) rather than the
            // paper's cheaper worked example — see DESIGN.md §3 item 5;
            // together with the Get TDs staging cost this reproduces the
            // published master-limited plateau at high core counts.
            bus: BusConfig::prose_model(),
            memory: MemoryConfig::default(),
            sram: SramTiming::default(),
            nexus_clock: Clock::from_mhz(NEXUS_CLOCK_MHZ),
            master: MasterConfig::default(),
            lists: ListConfig::default(),
            blocks: BlockTimings::default(),
            shared_bus: false,
            fast_independent_queue: false,
        }
    }
}

impl MachineConfig {
    /// The paper's configuration at a given worker-core count.
    pub fn with_workers(workers: usize) -> Self {
        MachineConfig {
            workers,
            ..Default::default()
        }
    }

    /// Contention-free-memory variant (the 143×/221× experiments).
    pub fn contention_free(mut self) -> Self {
        self.memory = MemoryConfig {
            mode: nexuspp_hw::MemoryMode::ContentionFree,
            ..self.memory
        };
        self
    }

    /// Disable the master's task-preparation delay (the 221× experiment).
    pub fn no_prep(mut self) -> Self {
        self.master.prep_time = SimTime::ZERO;
        self
    }

    /// Validate structural requirements.
    pub fn validate(&self) {
        assert!(self.workers >= 1, "need at least one worker core");
        assert!(self.buffering_depth >= 1, "buffering depth must be ≥ 1");
        assert!(
            !self.nexus.growable,
            "the Task Machine models fixed-capacity hardware; use a fixed NexusConfig"
        );
        self.nexus.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = MachineConfig::default();
        assert_eq!(c.nexus.task_pool_entries, 1024);
        assert_eq!(c.nexus.dep_table_entries, 4096);
        assert_eq!(c.buffering_depth, 2);
        assert_eq!(c.master.prep_time, SimTime::from_ns(30));
        assert_eq!(c.nexus_clock.period(), SimTime::from_ns(2));
        assert_eq!(c.sram.access, SimTime::from_ns(2));
        assert_eq!(c.memory.chunk_time, SimTime::from_ns(12));
        c.validate();
    }

    #[test]
    fn variants() {
        let c = MachineConfig::with_workers(64).contention_free().no_prep();
        assert_eq!(c.workers, 64);
        assert_eq!(c.master.prep_time, SimTime::ZERO);
        assert_eq!(c.memory.slots(), usize::MAX);
    }

    #[test]
    #[should_panic]
    fn growable_rejected() {
        let c = MachineConfig {
            nexus: NexusConfig::unbounded(),
            ..Default::default()
        };
        c.validate();
    }
}
